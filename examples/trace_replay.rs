//! Capture a workload to a trace file, replay it bit-for-bit, and print
//! both reports plus a trace summary — the end-to-end smoke test for the
//! `refrint-trace` subsystem (run by CI).
//!
//! ```sh
//! cargo run --example trace_replay
//! ```

use refrint::prelude::*;

fn main() {
    let path =
        std::env::temp_dir().join(format!("refrint-example-{}-trace.rft", std::process::id()));
    let build = || {
        Simulation::builder()
            .edram_recommended()
            .cores(4)
            .refs_per_thread(4_000)
            .seed(0xBEEF)
            .build()
            .expect("the recommended configuration is valid")
    };

    // 1. Record the streams the simulation would run.
    let meta = build()
        .capture(AppPreset::Barnes, &path)
        .expect("capture succeeds");
    println!(
        "captured `{}` ({} threads) to {}",
        meta.workload,
        meta.threads,
        path.display()
    );

    // 2. Summarize the file, as `refrint-cli trace info` would.
    let trace = TraceFile::open(&path).expect("the captured trace opens");
    let summary = TraceSummary::collect(&trace).expect("the captured trace decodes");
    println!("\n== trace info ==\n{summary}\n");

    // 3. Run live and replay the trace through an identical configuration.
    let live = build().run(AppPreset::Barnes);
    let mut replayer = Simulation::builder()
        .edram_recommended()
        .refs_per_thread(4_000)
        .seed(0xBEEF)
        .trace(&path)
        .build()
        .expect("the trace-driven configuration is valid");
    let replayed = replayer.replay().expect("replay succeeds");

    println!("== live run ==\n{}\n", live.report);
    println!("== replayed run ==\n{}\n", replayed.report);

    // 4. The subsystem's core guarantee: replay is bit-identical.
    assert_eq!(
        format!("{:?}", live.report),
        format!("{:?}", replayed.report),
        "replay must reproduce the live report exactly"
    );
    println!("replay is bit-identical to the live run ✓");

    std::fs::remove_file(&path).ok();
}
