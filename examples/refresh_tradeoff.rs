//! Refresh trade-off: sweep the WB(n,m) budget and the retention time for a
//! single application, showing the tension the paper's Figure 3.1 describes —
//! keep lines alive longer (more refresh energy, fewer DRAM refills) or let
//! them decay sooner (less refresh energy, more off-chip traffic).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example refresh_tradeoff [app]
//! ```

use refrint::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app: AppPreset = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(AppPreset::Cholesky);
    let scale = 20_000;

    let mut sram = CmpSystem::new(SystemConfig::sram_baseline().with_scale(scale))?;
    let baseline = sram.run_app(app);

    println!(
        "refresh trade-off for `{app}` ({}), relative to full SRAM",
        app.paper_class()
    );
    println!();
    println!(
        "{:<10} {:<12} {:>10} {:>10} {:>12} {:>10}",
        "retention", "policy", "memory", "time", "refreshes", "dram"
    );

    let retentions = [
        (50u64, RetentionConfig::microseconds_50()),
        (100, RetentionConfig::microseconds_100()),
        (200, RetentionConfig::microseconds_200()),
    ];
    let budgets = [0u32, 4, 16, 32];

    for (us, retention) in retentions {
        for &budget in &budgets {
            let policy =
                RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(budget, budget));
            let config = SystemConfig::edram_recommended()
                .with_policy(policy)
                .with_retention(retention)
                .with_scale(scale);
            let mut system = CmpSystem::new(config)?;
            let report = system.run_app(app);
            println!(
                "{:<10} {:<12} {:>9.2}x {:>9.2}x {:>12} {:>10}",
                format!("{us} us"),
                policy.label(),
                report.memory_energy_vs(&baseline),
                report.slowdown_vs(&baseline),
                report.counts.total_refreshes(),
                report.counts.dram_accesses()
            );
        }
        // The Valid policy is the "never discard" end of the spectrum.
        let policy = RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid);
        let config = SystemConfig::edram_recommended()
            .with_policy(policy)
            .with_retention(retention)
            .with_scale(scale);
        let mut system = CmpSystem::new(config)?;
        let report = system.run_app(app);
        println!(
            "{:<10} {:<12} {:>9.2}x {:>9.2}x {:>12} {:>10}",
            format!("{us} us"),
            "R.valid",
            report.memory_energy_vs(&baseline),
            report.slowdown_vs(&baseline),
            report.counts.total_refreshes(),
            report.counts.dram_accesses()
        );
        println!();
    }

    println!(
        "Longer retention shrinks the refresh component for every policy (fewer\n\
         opportunities per second); smaller WB budgets trade refresh energy for\n\
         DRAM accesses and execution time."
    );
    Ok(())
}
