//! Refresh trade-off: sweep the WB(n,m) budget and the retention time for a
//! single application, showing the tension the paper's Figure 3.1 describes —
//! keep lines alive longer (more refresh energy, fewer DRAM refills) or let
//! them decay sooner (less refresh energy, more off-chip traffic).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example refresh_tradeoff [app]
//! ```

use refrint::prelude::*;

fn run_point(
    app: AppPreset,
    policy: RefreshPolicy,
    retention_us: u64,
    scale: u64,
) -> Result<RunOutcome, BuildError> {
    let mut simulation = Simulation::builder()
        .edram_recommended()
        .policy(policy)
        .retention_us(retention_us)
        .refs_per_thread(scale)
        .build()?;
    Ok(simulation.run(app))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app: AppPreset = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(AppPreset::Cholesky);
    let scale = 20_000;

    let mut sram = Simulation::builder()
        .sram_baseline()
        .refs_per_thread(scale)
        .build()?;
    let baseline = sram.run(app);

    println!(
        "refresh trade-off for `{app}` ({}), relative to full SRAM",
        app.paper_class()
    );
    println!();
    println!(
        "{:<10} {:<12} {:>10} {:>10} {:>12} {:>10}",
        "retention", "policy", "memory", "time", "refreshes", "dram"
    );

    let budgets = [0u32, 4, 16, 32];
    for us in [50u64, 100, 200] {
        for &budget in &budgets {
            let policy =
                RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(budget, budget));
            let outcome = run_point(app, policy, us, scale)?;
            let rel = outcome.vs(&baseline);
            println!(
                "{:<10} {:<12} {:>9.2}x {:>9.2}x {:>12} {:>10}",
                format!("{us} us"),
                policy.label(),
                rel.memory_energy,
                rel.slowdown,
                outcome.total_refreshes(),
                outcome.dram_accesses()
            );
        }
        // The Valid policy is the "never discard" end of the spectrum.
        let policy = RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid);
        let outcome = run_point(app, policy, us, scale)?;
        let rel = outcome.vs(&baseline);
        println!(
            "{:<10} {:<12} {:>9.2}x {:>9.2}x {:>12} {:>10}",
            format!("{us} us"),
            "R.valid",
            rel.memory_energy,
            rel.slowdown,
            outcome.total_refreshes(),
            outcome.dram_accesses()
        );
        println!();
    }

    println!(
        "Longer retention shrinks the refresh component for every policy (fewer\n\
         opportunities per second); smaller WB budgets trade refresh energy for\n\
         DRAM accesses and execution time."
    );
    Ok(())
}
