//! Policy sweep: run one application through every (time policy × data
//! policy) combination of the paper's Table 5.4 at one retention time and
//! print a compact comparison — a single-application slice of Figures
//! 6.1–6.4.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_sweep [app] [refs_per_thread]
//! ```

use refrint::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app: AppPreset = args
        .first()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(AppPreset::Fft);
    let scale: u64 = args
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20_000);

    println!("policy sweep for `{app}` ({} per paper Table 6.1), {scale} refs/thread, 50 us retention",
        app.paper_class());
    println!();

    // Baseline: full SRAM.
    let mut sram = CmpSystem::new(SystemConfig::sram_baseline().with_scale(scale))?;
    let baseline = sram.run_app(app);

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "policy", "memory", "system", "time", "refreshes", "dram accesses"
    );
    println!(
        "{:<14} {:>9.2}x {:>9.2}x {:>9.2}x {:>10} {:>12}",
        "SRAM",
        1.0,
        1.0,
        1.0,
        baseline.counts.total_refreshes(),
        baseline.counts.dram_accesses()
    );

    for policy in RefreshPolicy::paper_sweep() {
        let config = SystemConfig::edram_recommended()
            .with_policy(policy)
            .with_retention(RetentionConfig::microseconds_50())
            .with_scale(scale);
        let mut system = CmpSystem::new(config)?;
        let report = system.run_app(app);
        println!(
            "{:<14} {:>9.2}x {:>9.2}x {:>9.2}x {:>10} {:>12}",
            policy.label(),
            report.memory_energy_vs(&baseline),
            report.system_energy_vs(&baseline),
            report.slowdown_vs(&baseline),
            report.counts.total_refreshes(),
            report.counts.dram_accesses()
        );
    }

    println!();
    println!("(memory/system/time are relative to the full-SRAM baseline; lower is better)");
    Ok(())
}
