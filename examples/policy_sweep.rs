//! Policy sweep: run one application through every (time policy × data
//! policy) combination of the paper's Table 5.4 at one retention time and
//! print a compact comparison — a single-application slice of Figures
//! 6.1–6.4.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_sweep [app] [refs_per_thread]
//! ```

use refrint::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app: AppPreset = args
        .first()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(AppPreset::Fft);
    let scale: u64 = args
        .get(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20_000);

    println!(
        "policy sweep for `{app}` ({} per paper Table 6.1), {scale} refs/thread, 50 us retention",
        app.paper_class()
    );
    println!();

    // Baseline: full SRAM.
    let mut sram = Simulation::builder()
        .sram_baseline()
        .refs_per_thread(scale)
        .build()?;
    let baseline = sram.run(app);

    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "policy", "memory", "system", "time", "refreshes", "dram accesses"
    );
    println!(
        "{:<14} {:>9.2}x {:>9.2}x {:>9.2}x {:>10} {:>12}",
        "SRAM",
        1.0,
        1.0,
        1.0,
        baseline.total_refreshes(),
        baseline.dram_accesses()
    );

    for policy in RefreshPolicy::paper_sweep() {
        let mut simulation = Simulation::builder()
            .edram_recommended()
            .policy(policy)
            .retention_us(50)
            .refs_per_thread(scale)
            .build()?;
        let outcome = simulation.run(app);
        let rel = outcome.vs(&baseline);
        println!(
            "{:<14} {:>9.2}x {:>9.2}x {:>9.2}x {:>10} {:>12}",
            policy.label(),
            rel.memory_energy,
            rel.system_energy,
            rel.slowdown,
            outcome.total_refreshes(),
            outcome.dram_accesses()
        );
    }

    println!();
    println!("(memory/system/time are relative to the full-SRAM baseline; lower is better)");
    Ok(())
}
