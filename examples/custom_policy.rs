//! Custom refresh policy, end to end: define a `RefreshPolicyModel` the
//! descriptor grammar cannot express, run it through `Simulation::builder()`,
//! then sweep it against the paper's built-in policies on the parallel
//! `SweepRunner` — and verify the parallel results are identical to the
//! sequential path.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use std::sync::Arc;

use refrint::experiment::{run_sweep, ExperimentConfig};
use refrint::prelude::*;
use refrint::sweep::SweepProgress;
use refrint_engine::time::Cycle;

/// An "aging lease" policy: every valid line gets a flat budget of refresh
/// opportunities, but dirty lines age twice as slowly (each second
/// opportunity is free). This is not expressible as `WB(n,m)` because the
/// budget is consumed at different rates per kind, yet it plugs into the
/// simulator without touching any `refrint-edram` source.
#[derive(Debug)]
struct AgingLease {
    period: Cycle,
    budget: u64,
}

impl RefreshPolicyModel for AgingLease {
    fn label(&self) -> String {
        format!("aging-lease({})", self.budget)
    }

    fn opportunity(&self, touch: Cycle, k: u64) -> Cycle {
        touch + self.period * k
    }

    fn opportunity_period(&self) -> Cycle {
        self.period
    }

    fn action(&self, kind: LineKind, refreshes_so_far: u64) -> RefreshAction {
        match kind {
            LineKind::Invalid => RefreshAction::Skip,
            // Dirty lines age at half rate: budget lasts twice as long.
            LineKind::Dirty if refreshes_so_far < 2 * self.budget => RefreshAction::Refresh,
            LineKind::Dirty => RefreshAction::WriteBack,
            LineKind::Clean if refreshes_so_far < self.budget => RefreshAction::Refresh,
            LineKind::Clean => RefreshAction::Invalidate,
        }
    }
}

/// The factory that binds the lease to each cache's sentry period.
#[derive(Debug)]
struct AgingLeaseFactory {
    budget: u64,
}

impl PolicyFactory for AgingLeaseFactory {
    fn label(&self) -> String {
        format!("aging-lease({})", self.budget)
    }

    fn build(&self, binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel> {
        Arc::new(AgingLease {
            period: binding.sentry_period(),
            budget: self.budget,
        })
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let factory: Arc<dyn PolicyFactory> = Arc::new(AgingLeaseFactory { budget: 8 });

    // ---- 1. One run through the builder. ---------------------------------
    let mut baseline = Simulation::builder()
        .sram_baseline()
        .refs_per_thread(8_000)
        .build()?;
    let sram = baseline.run(AppPreset::Lu);

    let mut custom = Simulation::builder()
        .edram_recommended()
        .policy_model(Arc::clone(&factory))
        .refs_per_thread(8_000)
        .build()?;
    let outcome = custom.run(AppPreset::Lu);
    let rel = outcome.vs(&sram);
    println!("single run: lu on {}", outcome.config_label());
    println!(
        "  memory {:.2}x  system {:.2}x  time {:.2}x  refreshes {}",
        rel.memory_energy,
        rel.system_energy,
        rel.slowdown,
        outcome.total_refreshes()
    );
    println!();

    // ---- 2. Sweep it against the built-ins, in parallel. -----------------
    let config = ExperimentConfig {
        apps: vec![AppPreset::Fft, AppPreset::Lu, AppPreset::Blackscholes],
        retentions_us: vec![50],
        policies: vec![
            RefreshPolicy::edram_baseline(),
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
            RefreshPolicy::recommended(),
        ],
        refs_per_thread: 4_000,
        seed: 0xBEEF,
        cores: 16,
        models: vec![Arc::clone(&factory)],
        traces: Vec::new(),
        protocols: vec![CoherenceProtocol::Mesi],
        retention_profiles: vec![RetentionProfile::Uniform],
    };

    let workers = std::thread::available_parallelism()?.get().max(2);
    println!(
        "sweeping {} simulations on {} workers...",
        config.total_runs(),
        workers
    );
    let parallel = SweepRunner::new(config.clone())
        .workers(workers)
        .observer(|p: &SweepProgress| {
            eprintln!(
                "  [{}/{}] {} on {}",
                p.completed, p.total, p.app, p.config_label
            );
        })
        .run()?;

    // ---- 3. Determinism: the parallel merge equals the sequential path. ---
    let sequential = run_sweep(&config)?;
    assert_eq!(
        format!("{sequential:?}"),
        format!("{parallel:?}"),
        "parallel sweep must be identical to the sequential sweep"
    );
    println!("parallel results verified identical to the sequential path");
    println!();

    // ---- 4. Compare the custom policy against the built-ins. -------------
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>10}",
        "policy", "memory", "time", "refreshes", "dram"
    );
    let labels: Vec<String> = config
        .policies
        .iter()
        .map(RefreshPolicy::label)
        .chain(config.models.iter().map(|m| m.label()))
        .collect();
    for app in &config.apps {
        println!("-- {app}");
        let sram_report = parallel.sram_report(*app).expect("baseline present");
        for label in &labels {
            let report = parallel
                .edram_report_by_label(*app, 50, label)
                .expect("swept point present");
            println!(
                "{:<18} {:>9.2}x {:>9.2}x {:>12} {:>10}",
                label,
                report.memory_energy_vs(sram_report),
                report.slowdown_vs(sram_report),
                report.counts.total_refreshes(),
                report.counts.dram_accesses()
            );
        }
    }
    println!();
    println!(
        "The aging lease sits between R.valid (never discards) and the WB\n\
         budgets (flat ageing): dirty lines survive longer than clean ones,\n\
         so write-heavy working sets keep their L3 residency at roughly half\n\
         the refresh cost of R.valid."
    );
    Ok(())
}
