//! Application classes: reproduce Table 6.1 (the binning of the eleven
//! applications into the three classes of Figure 3.1) and show, for one
//! representative application per class, which data policy the paper's model
//! predicts should win.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example app_classes
//! ```

use refrint::prelude::*;
use refrint_workloads::classify::{classify, ClassifierConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Table 6.1: classification of every application. -----------------
    println!("== Table 6.1: application binning ==");
    let classifier = ClassifierConfig::default();
    for app in AppPreset::ALL {
        let report = classify(&app.model(), &classifier);
        let agrees = report.class == app.paper_class();
        println!(
            "{report}{}",
            if agrees { "" } else { "  (differs from paper)" }
        );
    }
    println!();

    // ---- Per-class policy preference. -------------------------------------
    // One representative per class, small runs so the example stays quick.
    let representatives = [
        (AppPreset::Fft, "Class 1: large footprint, high visibility"),
        (AppPreset::Lu, "Class 2: small footprint, high visibility"),
        (
            AppPreset::Blackscholes,
            "Class 3: small footprint, low visibility",
        ),
    ];
    let scale = 15_000;
    let policies = [
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(4, 4)),
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(32, 32)),
    ];

    for (app, description) in representatives {
        println!("== {app} — {description} ==");
        let mut sram = Simulation::builder()
            .sram_baseline()
            .refs_per_thread(scale)
            .build()?;
        let baseline = sram.run(app);
        for policy in policies {
            let mut simulation = Simulation::builder()
                .edram_recommended()
                .policy(policy)
                .refs_per_thread(scale)
                .build()?;
            let outcome = simulation.run(app);
            let rel = outcome.vs(&baseline);
            println!(
                "  {:<12} memory {:>5.2}x  time {:>5.2}x  refreshes {:>9}  dram {:>8}",
                policy.label(),
                rel.memory_energy,
                rel.slowdown,
                outcome.total_refreshes(),
                outcome.dram_accesses()
            );
        }
        println!();
    }

    println!(
        "Expected shape (paper Section 3.3 / 6.3): WB(n,m) with small budgets is\n\
         most attractive for Class 1, large budgets or Valid for Class 2, and\n\
         Valid for Class 3 (aggressive policies there pay in DRAM traffic and time)."
    );
    Ok(())
}
