//! Custom workload: define your own synthetic application by placing it on
//! the paper's two axes (footprint vs. LLC size, LLC visibility) and see how
//! the refresh policies respond.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use refrint::prelude::*;
use refrint_workloads::classify::{classify, ClassifierConfig};
use refrint_workloads::model::WorkloadModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "database-scan-like" workload: a 48 MB shared table streamed by all
    // threads, with a small per-thread index kept hot. The footprint is three
    // times the 16 MB L3, so this should behave like a Class 1 application:
    // aggressive WB(n,m) policies should save energy without hurting it much.
    let scan = WorkloadModel {
        name: "table-scan".to_owned(),
        threads: 16,
        refs_per_thread: 20_000,
        private_bytes_per_thread: 512 * 1024,
        shared_bytes: 48 * 1024 * 1024,
        hot_bytes_per_thread: 32 * 1024,
        hot_fraction: 0.35,
        shared_fraction: 0.7,
        write_fraction: 0.1,
        mean_gap_cycles: 4,
        stride_run: 32,
    };
    scan.validate()?;

    // Where does it land on the paper's classification axes?
    let classification = classify(&scan, &ClassifierConfig::default());
    println!("{classification}");
    println!();

    // Compare the refresh policies the paper recommends for each class.
    let mut sram = Simulation::builder().sram_baseline().build()?;
    let baseline = sram.run_model(&scan);

    let candidates = [
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(4, 4)),
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(32, 32)),
        RefreshPolicy::edram_baseline(),
    ];
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}",
        "policy", "memory", "time", "refreshes", "dram"
    );
    for policy in candidates {
        let mut simulation = Simulation::builder()
            .edram_recommended()
            .policy(policy)
            .build()?;
        let outcome = simulation.run_model(&scan);
        let rel = outcome.vs(&baseline);
        println!(
            "{:<14} {:>9.2}x {:>9.2}x {:>12} {:>12}",
            policy.label(),
            rel.memory_energy,
            rel.slowdown,
            outcome.total_refreshes(),
            outcome.dram_accesses()
        );
    }
    println!();
    println!(
        "A large-footprint, streaming workload keeps little live data in the L3,\n\
         so discarding idle lines early (small WB budgets) saves refresh energy\n\
         without adding many extra DRAM accesses."
    );
    Ok(())
}
