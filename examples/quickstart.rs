//! Quickstart: build the paper's 16-core chip with `Simulation::builder()`,
//! run one application on the full-SRAM baseline and on the recommended
//! Refrint configuration, and compare energy and execution time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use refrint::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Keep the example fast: a few thousand references per thread still
    // covers several 50 us retention periods at 1 GHz.
    let scale = 20_000;

    // Print the simulated architecture (paper Table 5.1).
    println!("{}", SystemConfig::edram_recommended());
    println!();

    // 1. Full-SRAM baseline: no refresh, full leakage.
    let mut sram = Simulation::builder()
        .sram_baseline()
        .refs_per_thread(scale)
        .build()?;
    let sram_outcome = sram.run(AppPreset::Lu);

    // 2. Naive full-eDRAM: Periodic All refresh at 50 us.
    let mut naive = Simulation::builder()
        .edram_baseline()
        .refs_per_thread(scale)
        .build()?;
    let naive_outcome = naive.run(AppPreset::Lu);

    // 3. Refrint WB(32,32): the paper's recommended policy.
    let mut refrint = Simulation::builder()
        .edram_recommended()
        .refs_per_thread(scale)
        .build()?;
    let refrint_outcome = refrint.run(AppPreset::Lu);

    println!("workload: lu (Class 2), {scale} references per thread, 16 threads");
    println!();
    println!(
        "{:<24} {:>16} {:>16} {:>12}",
        "configuration", "memory energy", "system energy", "exec time"
    );
    for (name, outcome) in [
        ("full-SRAM (baseline)", &sram_outcome),
        ("eDRAM Periodic All", &naive_outcome),
        ("eDRAM Refrint WB(32,32)", &refrint_outcome),
    ] {
        let rel = outcome.vs(&sram_outcome);
        println!(
            "{:<24} {:>15.2}x {:>15.2}x {:>11.2}x",
            name, rel.memory_energy, rel.system_energy, rel.slowdown,
        );
    }
    println!();
    println!(
        "refreshes: naive eDRAM {} vs Refrint {}",
        naive_outcome.total_refreshes(),
        refrint_outcome.total_refreshes()
    );
    Ok(())
}
