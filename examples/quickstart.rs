//! Quickstart: build the paper's 16-core chip, run one application on the
//! full-SRAM baseline and on the recommended Refrint configuration, and
//! compare energy and execution time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use refrint::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Keep the example fast: a few thousand references per thread still
    // covers several 50 us retention periods at 1 GHz.
    let scale = 20_000;

    // Print the simulated architecture (paper Table 5.1).
    println!("{}", SystemConfig::edram_recommended());
    println!();

    // 1. Full-SRAM baseline: no refresh, full leakage.
    let mut sram = CmpSystem::new(SystemConfig::sram_baseline().with_scale(scale))?;
    let sram_report = sram.run_app(AppPreset::Lu);

    // 2. Naive full-eDRAM: Periodic All refresh at 50 us.
    let mut naive = CmpSystem::new(SystemConfig::edram_baseline().with_scale(scale))?;
    let naive_report = naive.run_app(AppPreset::Lu);

    // 3. Refrint WB(32,32): the paper's recommended policy.
    let mut refrint = CmpSystem::new(SystemConfig::edram_recommended().with_scale(scale))?;
    let refrint_report = refrint.run_app(AppPreset::Lu);

    println!("workload: lu (Class 2), {scale} references per thread, 16 threads");
    println!();
    println!(
        "{:<24} {:>16} {:>16} {:>12}",
        "configuration", "memory energy", "system energy", "exec time"
    );
    for (name, report) in [
        ("full-SRAM (baseline)", &sram_report),
        ("eDRAM Periodic All", &naive_report),
        ("eDRAM Refrint WB(32,32)", &refrint_report),
    ] {
        println!(
            "{:<24} {:>15.2}x {:>15.2}x {:>11.2}x",
            name,
            report.memory_energy_vs(&sram_report),
            report.system_energy_vs(&sram_report),
            report.slowdown_vs(&sram_report),
        );
    }
    println!();
    println!(
        "refreshes: naive eDRAM {} vs Refrint {}",
        naive_report.counts.total_refreshes(),
        refrint_report.counts.total_refreshes()
    );
    Ok(())
}
