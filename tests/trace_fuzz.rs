//! Trace-decoder robustness: seeded single-byte mutations and truncations
//! at every offset of a valid trace must always yield either a successful
//! decode (some byte flips are semantically benign) or a typed
//! [`TraceError`] carrying a plausible byte offset — never a panic and
//! never an unbounded loop.
//!
//! Both on-disk formats are fuzzed: the binary `.rft` (varint-delta
//! records behind a block index) and its human-readable text mirror
//! (line-oriented, `Parse` errors).

use std::panic::{catch_unwind, AssertUnwindSafe};

use refrint::config::SystemConfig;
use refrint::replay::capture_to_path;
use refrint_engine::rng::DeterministicRng;
use refrint_trace::{TraceError, TraceFile, TraceFormat};
use refrint_workloads::apps::AppPreset;

/// The byte offset a decoder error names, if its variant carries one.
fn error_offset(err: &TraceError) -> Option<u64> {
    match err {
        TraceError::Io { offset, .. }
        | TraceError::BadMagic { offset, .. }
        | TraceError::UnsupportedVersion { offset, .. }
        | TraceError::Truncated { offset, .. }
        | TraceError::Corrupt { offset, .. }
        | TraceError::Parse { offset, .. } => Some(*offset),
        _ => None,
    }
}

/// Fully decodes `bytes`: index, then stream every record of every
/// thread. Returns the total record count.
fn decode(bytes: &[u8]) -> Result<u64, TraceError> {
    let trace = TraceFile::from_bytes(bytes.to_vec())?;
    Ok(trace.validate()?.iter().sum())
}

/// Runs `decode` under `catch_unwind` and asserts the no-panic /
/// typed-error-with-offset contract. Returns the record count on success.
fn assert_decodes_or_errors(bytes: &[u8], what: &str) -> Option<u64> {
    let result = catch_unwind(AssertUnwindSafe(|| decode(bytes)))
        .unwrap_or_else(|_| panic!("decoder panicked on {what}"));
    match result {
        Ok(records) => Some(records),
        Err(err) => {
            // The offset may legitimately point beyond the input: a
            // corrupted block index can claim records live past EOF, and
            // the error names where data was *expected*.
            let _offset = error_offset(&err)
                .unwrap_or_else(|| panic!("{what}: error without a byte offset: {err}"));
            // Every error renders its offset for xxd-level debugging.
            let text = err.to_string();
            assert!(
                text.contains("byte") || text.contains("line"),
                "{what}: display lacks an offset: {text}"
            );
            None
        }
    }
}

/// Captures a small but multi-thread, multi-block trace.
fn valid_trace(format: TraceFormat, name: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!("refrint-fuzz-{}-{name}.rft", std::process::id()));
    let cfg = SystemConfig::edram_recommended()
        .with_cores(2)
        .with_scale(60)
        .with_seed(33);
    capture_to_path(&cfg, &AppPreset::Lu.model(), &path, format).expect("capture a valid trace");
    let bytes = std::fs::read(&path).expect("read the trace back");
    std::fs::remove_file(&path).ok();
    bytes
}

fn fuzz_format(format: TraceFormat, name: &str) {
    let original = valid_trace(format, name);
    let baseline = decode(&original).expect("the untouched trace decodes");
    assert!(baseline > 0, "the {name} trace has records");

    // Truncation at every length. A strict prefix must never decode to
    // *more* records than the original, and most lengths must error.
    let mut truncation_errors = 0u64;
    for len in 0..original.len() {
        let what = format!("{name} truncated to {len} bytes");
        match assert_decodes_or_errors(&original[..len], &what) {
            Some(records) => assert!(records <= baseline, "{what}: grew to {records} records"),
            None => truncation_errors += 1,
        }
    }
    assert!(
        truncation_errors as usize >= original.len() / 2,
        "{name}: only {truncation_errors} of {} truncations errored — \
         the decoder is not actually checking lengths",
        original.len()
    );

    // Seeded single-byte mutations at every offset: the seeded value, its
    // complement, and the all-ones byte cover flag bits, varint
    // continuation bits and ASCII classes alike.
    let mut rng = DeterministicRng::from_seed(0xF022);
    for offset in 0..original.len() {
        let seeded = (rng.below(255) + 1) as u8; // non-zero: guarantees a change XOR-wise
        for value in [original[offset] ^ seeded, 0x00, 0xFF] {
            if value == original[offset] {
                continue;
            }
            let mut mutated = original.clone();
            mutated[offset] = value;
            let what = format!("{name} byte {offset} set to {value:#04x}");
            let _ = assert_decodes_or_errors(&mutated, &what);
        }
    }
}

#[test]
fn binary_traces_survive_mutation_and_truncation() {
    fuzz_format(TraceFormat::Binary, "binary");
}

#[test]
fn text_traces_survive_mutation_and_truncation() {
    fuzz_format(TraceFormat::Text, "text");
}

/// The offset classes the format defines — magic, version, header fields,
/// block headers, record payload — each get a targeted corruption with an
/// exact expected error class.
#[test]
fn offset_classes_report_typed_errors() {
    let original = valid_trace(TraceFormat::Binary, "classes");

    // Magic (bytes 0..4).
    let mut bad_magic = original.clone();
    bad_magic[0..4].copy_from_slice(b"ELF\x7f");
    match decode(&bad_magic) {
        Err(TraceError::BadMagic { offset: 0, .. }) => {}
        other => panic!("magic corruption: {other:?}"),
    }

    // Version field (immediately after the magic).
    let mut bad_version = original.clone();
    bad_version[4] = 0xEE;
    match decode(&bad_version) {
        Err(TraceError::UnsupportedVersion { .. }) => {}
        // A multi-byte version encoding may classify as corrupt instead;
        // either way the error is typed with an offset.
        Err(TraceError::Corrupt { .. } | TraceError::Truncated { .. }) => {}
        other => panic!("version corruption: {other:?}"),
    }

    // Mid-file truncation (inside some thread's record block).
    let cut = original.len() / 2;
    match decode(&original[..cut]) {
        Err(e) => {
            assert!(error_offset(&e).is_some(), "{e}");
        }
        Ok(_) => panic!("a mid-record truncation must not decode cleanly"),
    }

    // Empty input.
    match decode(&[]) {
        Err(TraceError::Truncated { offset: 0, .. } | TraceError::Io { offset: 0, .. }) => {}
        other => panic!("empty input: {other:?}"),
    }
}
