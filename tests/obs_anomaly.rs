//! End-to-end self-test of the sweep anomaly report.
//!
//! The analytics pass (`refrint::anomaly` over the robust scoring in
//! `refrint_obs::anomaly`) is wired into the shared sweep emitter, so the
//! CLI's `sweep --format json` and the `refrint-serve` sweep response both
//! carry an `anomalies` array. These tests plant one deliberately corrupted
//! point in an otherwise legitimate sweep and assert that the *document* a
//! client reads flags exactly that point — and that a clean sweep stays
//! clean.

use refrint::experiment::{ExperimentConfig, SweepResults};
use refrint::sweep::SweepRunner;
use refrint_edram::policy::RefreshPolicy;
use refrint_engine::json::{parse, Value};
use refrint_workloads::apps::AppPreset;

/// One workload × the full 14-policy paper sweep at 50 us.
fn small_sweep() -> SweepResults {
    let config = ExperimentConfig {
        apps: vec![AppPreset::Lu],
        retentions_us: vec![50],
        policies: RefreshPolicy::paper_sweep(),
        refs_per_thread: 400,
        cores: 2,
        ..ExperimentConfig::default()
    };
    SweepRunner::new(config)
        .sequential()
        .run()
        .expect("small sweep runs")
}

fn anomalies_of(doc: &str) -> Vec<Value> {
    let parsed = parse(doc).expect("sweep JSON parses");
    parsed
        .get("anomalies")
        .and_then(Value::as_arr)
        .expect("sweep documents carry an anomalies array")
        .to_vec()
}

#[test]
fn a_clean_sweep_reports_no_anomalies_in_the_cli_json() {
    let results = small_sweep();
    let doc = refrint_cli::json::sweep(&results);
    assert!(
        anomalies_of(&doc).is_empty(),
        "legitimate policy spread must not be flagged: {doc}"
    );
}

#[test]
fn a_planted_outlier_reaches_the_cli_json_and_only_it() {
    let mut results = small_sweep();
    let victim = results
        .edram
        .keys()
        .find(|(_, _, p)| p == "R.WB(32,32)")
        .cloned()
        .expect("the recommended policy is in the paper sweep");
    results.edram.get_mut(&victim).unwrap().breakdown.dram *= 400.0;

    let doc = refrint_cli::json::sweep(&results);
    let flagged = anomalies_of(&doc);
    assert!(!flagged.is_empty(), "the planted outlier must be reported");
    for a in &flagged {
        assert_eq!(a.get("workload").and_then(Value::as_str), Some("lu"));
        assert_eq!(a.get("retention_us").and_then(Value::as_u64), Some(50));
        assert_eq!(
            a.get("policy").and_then(Value::as_str),
            Some("R.WB(32,32)"),
            "only the planted point may be flagged: {doc}"
        );
        assert_eq!(
            a.get("metric").and_then(Value::as_str),
            Some("system_energy_j")
        );
        let z = a.get("robust_z").and_then(Value::as_num).unwrap();
        assert!(z.is_finite() && z > 0.0, "score must be finite: {z}");
    }
}
