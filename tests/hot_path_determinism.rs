//! Determinism regression tests for the optimized hot path.
//!
//! The throughput overhaul (flat cache sets, allocation-free victim
//! selection, bitmask coherence outcomes, devirtualized settlement, scratch
//! buffers) is only valid if it is *invisible* in the results: every run
//! must still be a pure function of its configuration. These tests pin that
//! down byte-for-byte — two independent simulations of every preset ×
//! policy must render identical JSON reports, and the parallel sweep runner
//! must produce identical output for worker counts 1, 2 and 8.
//!
//! `perfgate --check` additionally compares `execution_cycles` against the
//! committed `BENCH_SIM.json` baselines, which extends this guarantee
//! *across* commits: an optimization that changes simulated behaviour fails
//! CI even if it is internally self-consistent.

use refrint::experiment::ExperimentConfig;
use refrint::simulation::{ObsConfig, Simulation};
use refrint::sweep::SweepRunner;
use refrint_cli::json;
use refrint_edram::policy::RefreshPolicy;
use refrint_workloads::apps::AppPreset;

/// Renders one small run of `app` under `policy` as a JSON report string,
/// optionally with the observability recorder enabled.
fn run_json_with(app: AppPreset, policy: RefreshPolicy, obs: Option<ObsConfig>) -> String {
    let mut builder = Simulation::builder()
        .edram_recommended()
        .policy(policy)
        .cores(4)
        .refs_per_thread(600)
        .seed(42);
    if let Some(obs) = obs {
        builder = builder.observability(obs);
    }
    let mut sim = builder
        .build()
        .expect("paper policies build on the recommended configuration");
    json::report(&sim.run(app).report)
}

/// Renders one small run of `app` under `policy` as a JSON report string.
fn run_json(app: AppPreset, policy: RefreshPolicy) -> String {
    run_json_with(app, policy, None)
}

#[test]
fn every_preset_and_policy_is_byte_identical_across_runs() {
    for app in AppPreset::ALL {
        for policy in RefreshPolicy::paper_sweep() {
            let first = run_json(app, policy);
            let second = run_json(app, policy);
            assert_eq!(
                first,
                second,
                "non-deterministic report for {} under {}",
                app.name(),
                policy.label()
            );
        }
    }
}

/// The observability invariant of `crates/obs`: recording observes without
/// perturbing. Every preset × policy report must be byte-identical with
/// the recorder at full sampling and with it disabled.
#[test]
fn observability_at_full_sampling_never_perturbs_reports() {
    for app in AppPreset::ALL {
        for policy in RefreshPolicy::paper_sweep() {
            let plain = run_json(app, policy);
            let observed = run_json_with(app, policy, Some(ObsConfig::full()));
            assert_eq!(
                plain,
                observed,
                "observability perturbed {} under {}",
                app.name(),
                policy.label()
            );
        }
    }
}

#[test]
fn sram_baseline_is_byte_identical_across_runs() {
    let run = || {
        let mut sim = Simulation::builder()
            .sram_baseline()
            .cores(4)
            .refs_per_thread(600)
            .seed(42)
            .build()
            .expect("the SRAM baseline builds");
        json::report(&sim.run(AppPreset::Lu).report)
    };
    assert_eq!(run(), run());
}

/// The span ring's contents are a pure function of the configuration:
/// two identically-seeded runs carry identical sampled spans, identical
/// per-subsystem event/cycle attribution, and identical overwrite counts
/// at every sampling rate. Host wall-time is the one field that may (and
/// will) differ, so it is excluded.
#[test]
fn span_ring_contents_are_deterministic_at_every_sampling_rate() {
    let summarize = |cfg: ObsConfig| {
        let mut sim = Simulation::builder()
            .edram_recommended()
            .cores(2)
            .refs_per_thread(600)
            .seed(42)
            .observability(cfg)
            .build()
            .expect("the recommended configuration builds");
        sim.run(AppPreset::Lu);
        sim.obs_summary()
    };
    for sample_every in [1, 2, 7, 64] {
        let cfg = ObsConfig::sampled(sample_every);
        let first = summarize(cfg);
        let second = summarize(cfg);
        assert_eq!(
            first.sampled, second.sampled,
            "ring contents diverged at sample_every = {sample_every}"
        );
        assert_eq!(first.overwritten, second.overwritten);
        for (a, b) in first.per_subsystem.iter().zip(&second.per_subsystem) {
            assert_eq!(a.subsystem, b.subsystem);
            assert_eq!(a.spans, b.spans, "{} event count", a.subsystem.name());
            assert_eq!(a.cycles, b.cycles, "{} cycles", a.subsystem.name());
        }
    }
}

/// Wraparound does not break determinism: with a ring far smaller than
/// the event stream the oldest spans are overwritten, and two seeded runs
/// still agree on exactly which spans survived.
#[test]
fn span_ring_wraparound_is_deterministic() {
    let summarize = || {
        let mut sim = Simulation::builder()
            .edram_recommended()
            .cores(2)
            .refs_per_thread(600)
            .seed(7)
            .observability(ObsConfig {
                sample_every: 1,
                ring_capacity: 64,
            })
            .build()
            .expect("the recommended configuration builds");
        sim.run(AppPreset::Fft);
        sim.obs_summary()
    };
    let first = summarize();
    let second = summarize();
    assert!(
        first.overwritten > 0,
        "a 64-slot ring at full sampling must wrap"
    );
    assert_eq!(first.sampled.len(), 64, "the ring stays at capacity");
    assert_eq!(first.sampled, second.sampled);
    assert_eq!(first.overwritten, second.overwritten);
}

#[test]
fn sweep_output_is_byte_identical_for_worker_counts_1_2_8() {
    let config = ExperimentConfig {
        apps: vec![AppPreset::Lu, AppPreset::Blackscholes],
        retentions_us: vec![50],
        policies: vec![
            RefreshPolicy::recommended(),
            RefreshPolicy::edram_baseline(),
        ],
        refs_per_thread: 600,
        cores: 4,
        ..ExperimentConfig::default()
    };
    let reference = json::sweep(
        &SweepRunner::new(config.clone())
            .workers(1)
            .run()
            .expect("sequential sweep succeeds"),
    );
    for workers in [2, 8] {
        let parallel = json::sweep(
            &SweepRunner::new(config.clone())
                .workers(workers)
                .run()
                .expect("parallel sweep succeeds"),
        );
        assert_eq!(
            reference, parallel,
            "sweep output diverged at {workers} workers"
        );
    }
}
