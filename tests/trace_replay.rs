//! Cross-crate trace tests: capture→replay determinism (the subsystem's
//! core guarantee) and binary/text round-trip properties over randomized
//! workloads from the in-repo deterministic case generator.

use refrint::prelude::*;
use refrint_engine::rng::DeterministicRng;
use refrint_trace::{capture_model, TextTraceWriter, TraceWriter};
use refrint_workloads::model::WorkloadModel;
use refrint_workloads::trace::MemRef;
use refrint_workloads::ThreadStream;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("refrint-it-{}-{name}", std::process::id()))
}

/// Recording an `AppPreset` run and replaying it through
/// `Simulation::builder().trace(...)` reproduces the live `SimReport` bit
/// for bit — for two presets on two refresh policies (plus SRAM).
#[test]
fn capture_then_replay_is_bit_identical_across_presets_and_policies() {
    type BaseBuilder = fn() -> SimulationBuilder;
    let configs: [(&str, BaseBuilder); 3] = [
        ("recommended", || Simulation::builder().edram_recommended()),
        ("periodic-all", || Simulation::builder().edram_baseline()),
        ("sram", || Simulation::builder().sram_baseline()),
    ];
    for app in [AppPreset::Lu, AppPreset::Blackscholes] {
        for (label, base) in configs {
            let build = || {
                base()
                    .cores(2)
                    .refs_per_thread(1_000)
                    .seed(17)
                    .build()
                    .unwrap()
            };
            let path = tmp(&format!("{app}-{label}.rft"));
            build().capture(app, &path).unwrap();

            let live = build().run(app);
            let mut replayer = base()
                .refs_per_thread(1_000)
                .seed(17)
                .trace(&path)
                .build()
                .unwrap();
            assert_eq!(replayer.config().cores, 2, "{app}/{label}");
            let replayed = replayer.replay().unwrap();
            assert_eq!(
                format!("{:?}", live.report),
                format!("{:?}", replayed.report),
                "{app} on {label} replayed differently"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// A randomized workload model drawn from the deterministic case generator.
fn arbitrary_model(rng: &mut DeterministicRng, case: u64) -> WorkloadModel {
    WorkloadModel {
        name: format!("prop-{case}"),
        threads: 1 + rng.below(4) as usize,
        refs_per_thread: 50 + rng.below(300),
        private_bytes_per_thread: 64 << rng.below(12),
        shared_bytes: 64 << rng.below(14),
        hot_bytes_per_thread: 64 << rng.below(8),
        hot_fraction: rng.unit(),
        shared_fraction: rng.unit(),
        write_fraction: rng.unit(),
        mean_gap_cycles: 1 + rng.below(20),
        stride_run: 1 + rng.below(32),
    }
}

fn streams_of(model: &WorkloadModel, seed: u64) -> Vec<Vec<MemRef>> {
    (0..model.threads)
        .map(|t| ThreadStream::new(model, t, seed).collect())
        .collect()
}

fn decode_all(trace: &TraceFile) -> Vec<Vec<MemRef>> {
    (0..trace.meta().threads)
        .map(|t| {
            trace
                .thread(t)
                .unwrap()
                .map(|r| r.expect("trace decodes"))
                .collect()
        })
        .collect()
}

/// Both on-disk formats reproduce arbitrary generated streams exactly, and
/// agree with each other, over a few dozen randomized workloads.
#[test]
fn binary_and_text_round_trip_arbitrary_workloads() {
    for case in 0..48u64 {
        let mut rng = DeterministicRng::from_seed(0x7ACE).fork(case);
        let model = arbitrary_model(&mut rng, case);
        let seed = rng.next_u64();
        let expected = streams_of(&model, seed);
        let meta = TraceMeta::new(&model.name, model.threads, seed);

        let mut binary = TraceWriter::new(Vec::new(), &meta).unwrap();
        capture_model(&model, seed, &mut binary).unwrap();
        let binary = TraceFile::from_bytes(binary.into_inner().unwrap()).unwrap();
        assert_eq!(binary.meta(), &meta, "case {case}");
        assert_eq!(decode_all(&binary), expected, "case {case}: binary");

        let mut text = TextTraceWriter::new(Vec::new(), &meta).unwrap();
        capture_model(&model, seed, &mut text).unwrap();
        let text = TraceFile::from_bytes(text.into_inner().unwrap()).unwrap();
        assert_eq!(text.meta(), &meta, "case {case}");
        assert_eq!(decode_all(&text), expected, "case {case}: text");
    }
}

/// Text traces replay through the simulator exactly like binary ones.
#[test]
fn text_traces_replay_identically_to_binary_traces() {
    let build = || {
        Simulation::builder()
            .edram_recommended()
            .cores(2)
            .refs_per_thread(800)
            .seed(5)
            .build()
            .unwrap()
    };
    let bin_path = tmp("fmt.rft");
    let text_path = tmp("fmt.rftt");
    build().capture(AppPreset::Radix, &bin_path).unwrap();
    build()
        .capture_model_as(&AppPreset::Radix.model(), &text_path, TraceFormat::Text)
        .unwrap();
    let replay = |path: &std::path::Path| {
        let mut sim = Simulation::builder()
            .edram_recommended()
            .refs_per_thread(800)
            .seed(5)
            .trace(path)
            .build()
            .unwrap();
        format!("{:?}", sim.replay().unwrap().report)
    };
    assert_eq!(replay(&bin_path), replay(&text_path));
    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&text_path).ok();
}

/// Malformed files yield typed errors with byte offsets, never panics.
#[test]
fn malformed_traces_yield_typed_errors() {
    // Wrong magic.
    let err = TraceFile::from_bytes(b"GARBAGE!".to_vec()).unwrap_err();
    assert!(
        matches!(err, TraceError::BadMagic { offset: 0, .. }),
        "{err}"
    );

    // Version from the future.
    let model = AppPreset::Lu
        .model()
        .with_threads(1)
        .with_refs_per_thread(10);
    let meta = TraceMeta::new("lu", 1, 0);
    let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
    capture_model(&model, 0, &mut w).unwrap();
    let good = w.into_inner().unwrap();
    let mut versioned = good.clone();
    versioned[4] = 0xff;
    let err = TraceFile::from_bytes(versioned).unwrap_err();
    assert!(
        matches!(
            err,
            TraceError::UnsupportedVersion {
                offset: 4,
                found: 0xff,
                ..
            }
        ),
        "{err}"
    );

    // Truncated at every prefix length: always a typed error (or a valid
    // shorter parse failing validation), never a panic.
    for cut in 0..good.len() {
        match TraceFile::from_bytes(good[..cut].to_vec()) {
            Err(
                TraceError::Truncated { .. }
                | TraceError::Corrupt { .. }
                | TraceError::BadMagic { .. }
                | TraceError::UnsupportedVersion { .. },
            ) => {}
            Err(other) => panic!("cut at {cut}: unexpected error {other}"),
            Ok(trace) => {
                trace.validate().unwrap_err();
            }
        }
    }
}
