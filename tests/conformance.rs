//! Differential conformance: the optimized simulator against the
//! independent `refrint-oracle` reference model.
//!
//! Quick mode runs 200 seeded random scenarios (config × geometry ×
//! retention × policy × workload × optional trace round trip, including
//! 1-core chips, single-set caches and retention at the
//! `RetentionTooShort` boundary) and requires the two implementations to
//! agree on every `SimReport` field. Deep local runs go through
//! `refrint-cli check --seed N --scenarios N`.
//!
//! Override the scenario count with `REFRINT_CONFORMANCE_SCENARIOS` (the
//! `conformance` CI job and local soak runs use this).

use refrint_oracle::harness::run_check;
use refrint_oracle::system::Fault;

/// The fixed seed CI uses; `refrint-cli check` defaults to it too.
const CI_SEED: u64 = 0xC0FFEE;

fn scenario_count() -> u64 {
    std::env::var("REFRINT_CONFORMANCE_SCENARIOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

#[test]
fn oracle_and_simulator_agree_on_seeded_scenarios() {
    let count = scenario_count();
    let outcome = run_check(CI_SEED, count, None, |_, _| {}).expect("scenarios must run");
    assert_eq!(outcome.scenarios_run, count);
    if let Some(divergence) = outcome.divergence {
        panic!("{divergence}");
    }
}

/// The harness has teeth: an oracle with an injected off-by-one in decay
/// settlement (one extra refresh before a clean line is invalidated) is
/// caught within the quick-mode budget and shrunk to a small repro with a
/// ready-to-paste command.
#[test]
fn injected_decay_off_by_one_is_caught_and_shrunk() {
    let outcome = run_check(
        CI_SEED,
        200,
        Some(Fault::DecayCleanBudgetOffByOne),
        |_, _| {},
    )
    .expect("scenarios must run");
    let divergence = outcome
        .divergence
        .expect("the injected off-by-one must be caught");
    assert!(
        divergence.scenario.spec() == divergence.shrunk.spec() || divergence.shrink_steps > 0,
        "shrinking must either simplify or already be minimal"
    );
    // The acceptance bar: a <= 4-core, <= 1k-ref repro.
    assert!(
        divergence.shrunk.cores <= 4,
        "shrunk repro uses {} cores: {}",
        divergence.shrunk.cores,
        divergence.shrunk.spec()
    );
    assert!(
        divergence.shrunk.refs_per_thread <= 1_000,
        "shrunk repro uses {} refs: {}",
        divergence.shrunk.refs_per_thread,
        divergence.shrunk.spec()
    );
    let rendered = divergence.to_string();
    assert!(
        rendered.contains("refrint-cli check --scenario"),
        "{rendered}"
    );
}
