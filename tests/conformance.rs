//! Differential conformance: the optimized simulator against the
//! independent `refrint-oracle` reference model.
//!
//! Quick mode runs 200 seeded random scenarios (config × geometry ×
//! retention × policy × workload × optional trace round trip, including
//! 1-core chips, single-set caches and retention at the
//! `RetentionTooShort` boundary) and requires the two implementations to
//! agree on every `SimReport` field. Deep local runs go through
//! `refrint-cli check --seed N --scenarios N`.
//!
//! Override the scenario count with `REFRINT_CONFORMANCE_SCENARIOS` (the
//! `conformance` CI job and local soak runs use this).

use refrint_oracle::harness::run_check;
use refrint_oracle::system::Fault;

/// The fixed seed CI uses; `refrint-cli check` defaults to it too.
const CI_SEED: u64 = 0xC0FFEE;

fn scenario_count() -> u64 {
    std::env::var("REFRINT_CONFORMANCE_SCENARIOS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

#[test]
fn oracle_and_simulator_agree_on_seeded_scenarios() {
    let count = scenario_count();
    let outcome = run_check(CI_SEED, count, None, |_, _| {}).expect("scenarios must run");
    assert_eq!(outcome.scenarios_run, count);
    if let Some(divergence) = outcome.divergence {
        panic!("{divergence}");
    }
}

/// The harness has teeth: an oracle with an injected off-by-one in decay
/// settlement (one extra refresh before a clean line is invalidated) is
/// caught within the quick-mode budget and shrunk to a small repro with a
/// ready-to-paste command.
#[test]
fn injected_decay_off_by_one_is_caught_and_shrunk() {
    let outcome = run_check(
        CI_SEED,
        200,
        Some(Fault::DecayCleanBudgetOffByOne),
        |_, _| {},
    )
    .expect("scenarios must run");
    let divergence = outcome
        .divergence
        .expect("the injected off-by-one must be caught");
    assert!(
        divergence.scenario.spec() == divergence.shrunk.spec() || divergence.shrink_steps > 0,
        "shrinking must either simplify or already be minimal"
    );
    // The acceptance bar: a <= 4-core, <= 1k-ref repro.
    assert!(
        divergence.shrunk.cores <= 4,
        "shrunk repro uses {} cores: {}",
        divergence.shrunk.cores,
        divergence.shrunk.spec()
    );
    assert!(
        divergence.shrunk.refs_per_thread <= 1_000,
        "shrunk repro uses {} refs: {}",
        divergence.shrunk.refs_per_thread,
        divergence.shrunk.spec()
    );
    let rendered = divergence.to_string();
    assert!(
        rendered.contains("refrint-cli check --scenario"),
        "{rendered}"
    );
}

/// The quick-mode scenario stream actually exercises the coherence and
/// retention-distribution axes: a healthy share of Dragon scenarios and
/// non-uniform retention profiles, every spec round-tripping through
/// `Scenario::from_spec` (the `--scenario` repro path) with both axes
/// intact. Pure generation — no simulations — so it costs nothing
/// against the quick-mode wall-clock budget.
#[test]
fn quick_mode_covers_protocol_and_retention_axes() {
    use refrint::{CoherenceProtocol, RetentionProfile};
    use refrint_oracle::scenario::Scenario;

    let mut dragon = 0u64;
    let mut non_uniform = 0u64;
    for index in 0..200 {
        let scenario = Scenario::generate(CI_SEED, index);
        if scenario.protocol == CoherenceProtocol::Dragon {
            dragon += 1;
        }
        if scenario.profile != RetentionProfile::Uniform {
            non_uniform += 1;
        }
        let spec = scenario.spec();
        let round = Scenario::from_spec(&spec).expect("every generated spec parses back");
        assert_eq!(round.protocol, scenario.protocol, "{spec}");
        assert_eq!(round.profile, scenario.profile, "{spec}");
        assert_eq!(round.spec(), spec, "spec must round-trip exactly");
    }
    assert!(
        (40..=160).contains(&dragon),
        "Dragon share drifted: {dragon}/200"
    );
    assert!(
        non_uniform >= 30,
        "non-uniform retention share drifted: {non_uniform}/200"
    );
}

/// Conformance with the protocol axis pinned (the CI matrix sets
/// `REFRINT_CONFORMANCE_PROTOCOL=mesi|dragon`): every quick-mode scenario
/// is forced onto one protocol and must still agree field for field. A
/// reduced scenario count keeps the pinned pass inside the quick-mode
/// budget when run alongside the main stream.
#[test]
fn oracle_and_simulator_agree_with_a_pinned_protocol() {
    use refrint::CoherenceProtocol;
    use refrint_oracle::harness::run_scenario;
    use refrint_oracle::scenario::Scenario;

    let protocol: CoherenceProtocol = std::env::var("REFRINT_CONFORMANCE_PROTOCOL")
        .ok()
        .map(|v| {
            v.parse()
                .expect("REFRINT_CONFORMANCE_PROTOCOL must be mesi or dragon")
        })
        .unwrap_or(CoherenceProtocol::Dragon);
    let count = std::env::var("REFRINT_CONFORMANCE_PROTOCOL")
        .map(|_| scenario_count())
        .unwrap_or(48);
    for index in 0..count {
        let mut scenario = Scenario::generate(CI_SEED ^ 0xD0_0D, index);
        scenario.protocol = protocol;
        let diffs = run_scenario(&scenario).expect("pinned scenario must run");
        assert!(
            diffs.is_empty(),
            "{protocol} divergence on `{}`:\n{}",
            scenario.spec(),
            diffs
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The Dragon-specific planted fault (update broadcasts mis-executed as
/// invalidations) is caught inside the quick-mode budget and shrinks to a
/// `protocol=dragon` repro — the protocol axis is never shrunk away from
/// a protocol-dependent divergence.
#[test]
fn injected_dragon_update_fault_is_caught_and_shrunk() {
    use refrint::CoherenceProtocol;

    let outcome = run_check(
        CI_SEED,
        200,
        Some(Fault::DragonUpdateInvalidates),
        |_, _| {},
    )
    .expect("scenarios must run");
    let divergence = outcome
        .divergence
        .expect("the planted Dragon fault must be caught");
    assert_eq!(divergence.shrunk.protocol, CoherenceProtocol::Dragon);
    let rendered = divergence.to_string();
    assert!(rendered.contains("protocol=dragon"), "{rendered}");
    assert!(
        rendered.contains("refrint-cli check --scenario"),
        "{rendered}"
    );
}
