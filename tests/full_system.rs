//! End-to-end integration tests: the full 16-core system, SRAM vs eDRAM,
//! determinism, and the headline orderings of the paper.

use refrint::prelude::*;

fn run(cells: CellTech, policy: RefreshPolicy, app: AppPreset, scale: u64) -> refrint::SimReport {
    let mut builder = Simulation::builder().refs_per_thread(scale).seed(2024);
    builder = match cells {
        CellTech::Sram => builder.sram_baseline(),
        CellTech::Edram => builder
            .edram_recommended()
            .policy(policy)
            .retention(RetentionConfig::microseconds_50()),
    };
    let mut simulation = builder.build().expect("configuration is valid");
    simulation.run(app).report
}

#[test]
fn sram_baseline_never_refreshes_and_is_physical() {
    let report = run(
        CellTech::Sram,
        RefreshPolicy::recommended(),
        AppPreset::Lu,
        4_000,
    );
    assert_eq!(report.counts.total_refreshes(), 0);
    assert_eq!(report.breakdown.refresh_total(), 0.0);
    assert!(report.breakdown.is_physical());
    assert!(report.execution_cycles > 0);
    assert_eq!(report.counts.dl1_accesses, 16 * 4_000);
    assert!(report.counts.instructions >= report.counts.dl1_accesses);
}

#[test]
fn edram_saves_memory_energy_relative_to_sram() {
    for app in [AppPreset::Lu, AppPreset::Blackscholes] {
        let sram = run(CellTech::Sram, RefreshPolicy::recommended(), app, 6_000);
        let refrint = run(CellTech::Edram, RefreshPolicy::recommended(), app, 6_000);
        assert!(
            refrint.memory_energy_vs(&sram) < 1.0,
            "{app}: Refrint eDRAM must beat SRAM ({})",
            refrint.memory_energy_vs(&sram)
        );
        assert!(
            refrint.breakdown.on_chip_leakage() < sram.breakdown.on_chip_leakage(),
            "{app}: eDRAM leakage must shrink"
        );
    }
}

#[test]
fn refrint_beats_the_naive_edram_baseline() {
    for app in [AppPreset::Fft, AppPreset::Lu] {
        let sram = run(CellTech::Sram, RefreshPolicy::recommended(), app, 6_000);
        let naive = run(CellTech::Edram, RefreshPolicy::edram_baseline(), app, 6_000);
        let refrint = run(CellTech::Edram, RefreshPolicy::recommended(), app, 6_000);
        // Energy ordering (the paper's Figure 6.1/6.3 shape).
        assert!(
            refrint.memory_energy_vs(&sram) < naive.memory_energy_vs(&sram),
            "{app}: Refrint must save more memory energy than Periodic All"
        );
        // Execution-time ordering (the paper's Figure 6.4 shape).
        assert!(
            naive.slowdown_vs(&sram) > refrint.slowdown_vs(&sram),
            "{app}: Periodic All must be slower than Refrint"
        );
        // The naive baseline must show a visible slowdown; Refrint must not.
        assert!(
            naive.slowdown_vs(&sram) > 1.02,
            "{app}: Periodic All slowdown"
        );
        assert!(refrint.slowdown_vs(&sram) < 1.10, "{app}: Refrint slowdown");
        // Refresh counts: Periodic All refreshes every line, every period.
        assert!(naive.counts.total_refreshes() > refrint.counts.total_refreshes());
    }
}

#[test]
fn longer_retention_reduces_refresh_activity() {
    let short = {
        let config = SystemConfig::edram_recommended()
            .with_retention(RetentionConfig::microseconds_50())
            .with_scale(6_000);
        CmpSystem::new(config).unwrap().run_app(AppPreset::Barnes)
    };
    let long = {
        let config = SystemConfig::edram_recommended()
            .with_retention(RetentionConfig::microseconds_200())
            .with_scale(6_000);
        CmpSystem::new(config).unwrap().run_app(AppPreset::Barnes)
    };
    assert!(
        long.counts.total_refreshes() < short.counts.total_refreshes(),
        "200 us retention must refresh less than 50 us ({} vs {})",
        long.counts.total_refreshes(),
        short.counts.total_refreshes()
    );
    assert!(long.breakdown.refresh_total() < short.breakdown.refresh_total());
}

#[test]
fn runs_are_reproducible_across_system_instances() {
    let a = run(
        CellTech::Edram,
        RefreshPolicy::recommended(),
        AppPreset::Radix,
        3_000,
    );
    let b = run(
        CellTech::Edram,
        RefreshPolicy::recommended(),
        AppPreset::Radix,
        3_000,
    );
    assert_eq!(a.execution_cycles, b.execution_cycles);
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.breakdown.memory_total(), b.breakdown.memory_total());
}

#[test]
fn different_seeds_change_the_interleaving_but_not_the_workload_size() {
    let a = {
        let config = SystemConfig::edram_recommended()
            .with_scale(3_000)
            .with_seed(1);
        CmpSystem::new(config).unwrap().run_app(AppPreset::Radix)
    };
    let b = {
        let config = SystemConfig::edram_recommended()
            .with_scale(3_000)
            .with_seed(2);
        CmpSystem::new(config).unwrap().run_app(AppPreset::Radix)
    };
    assert_eq!(a.counts.dl1_accesses, b.counts.dl1_accesses);
    assert_ne!(
        (a.execution_cycles, a.counts.l3_accesses),
        (b.execution_cycles, b.counts.l3_accesses),
        "different seeds should not produce identical runs"
    );
}

#[test]
fn every_application_preset_runs_on_the_full_chip() {
    for app in AppPreset::ALL {
        let report = run(CellTech::Edram, RefreshPolicy::recommended(), app, 1_200);
        assert!(report.execution_cycles > 0, "{app}");
        assert!(report.breakdown.is_physical(), "{app}");
        assert_eq!(report.workload, app.name(), "{app}");
    }
}

#[test]
fn instruction_l1_is_hot_under_refrint_but_refreshed_under_periodic() {
    let periodic = run(
        CellTech::Edram,
        RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Valid),
        AppPreset::Blackscholes,
        6_000,
    );
    let refrint = run(
        CellTech::Edram,
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
        AppPreset::Blackscholes,
        6_000,
    );
    assert!(
        periodic.counts.l1_refreshes > refrint.counts.l1_refreshes,
        "Periodic refreshes the (hot) L1s anyway; Refrint's sentries are recharged by accesses"
    );
}
