//! Integration tests for the unified `Simulation::builder()` API, custom
//! refresh-policy registration, and the parallel `SweepRunner`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use refrint::experiment::{run_sweep, ExperimentConfig};
use refrint::prelude::*;
use refrint::sweep::SweepProgress;

// ---------------------------------------------------------------------- //
// Builder validation
// ---------------------------------------------------------------------- //

#[test]
fn builder_rejects_zero_cores_with_a_typed_error() {
    let err = Simulation::builder().cores(0).build().unwrap_err();
    assert_eq!(err, BuildError::ZeroCores);
}

#[test]
fn builder_rejects_bank_core_mismatch_with_a_typed_error() {
    let err = Simulation::builder()
        .cores(8)
        .l3_banks(4)
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::BankCoreMismatch {
            l3_banks: 4,
            cores: 8
        }
    );
}

#[test]
fn builder_rejects_refresh_settings_on_sram() {
    let err = Simulation::builder()
        .sram_baseline()
        .retention(RetentionConfig::microseconds_100())
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::SramWithRefreshSettings {
            setting: "retention"
        }
    );

    let err = Simulation::builder()
        .sram_baseline()
        .policy(RefreshPolicy::recommended())
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        BuildError::SramWithRefreshSettings { setting: "policy" }
    );
}

#[test]
fn builder_errors_are_real_errors() {
    let err = Simulation::builder().cores(0).build().unwrap_err();
    let as_dyn: &dyn std::error::Error = &err;
    assert!(!as_dyn.to_string().is_empty());
    // And they convert into the crate-level error type.
    let refrint_err: refrint::RefrintError = err.into();
    assert!(refrint_err.to_string().contains("core"));
}

#[test]
fn builder_replaces_manual_config_poking() {
    // The fluent form and the legacy SystemConfig form describe the same
    // system.
    let fluent = Simulation::builder()
        .edram_recommended()
        .cores(4)
        .retention_us(200)
        .seed(11)
        .refs_per_thread(1_000)
        .build_config()
        .unwrap();
    let legacy = SystemConfig::edram_recommended()
        .with_cores(4)
        .with_retention(RetentionConfig::microseconds_200())
        .with_seed(11)
        .with_scale(1_000);
    assert_eq!(fluent.label(), legacy.label());
    assert_eq!(fluent.cores, legacy.cores);
    assert_eq!(fluent.seed, legacy.seed);
    assert_eq!(fluent.refs_per_thread, legacy.refs_per_thread);
}

// ---------------------------------------------------------------------- //
// Custom policy models
// ---------------------------------------------------------------------- //

/// A custom policy outside the descriptor grammar: refresh every valid line
/// but only `budget` times, then write back / invalidate — regardless of the
/// line's dirtiness the budget is shared ("flat lease").
#[derive(Debug)]
struct FlatLease {
    period: refrint_engine::time::Cycle,
    budget: u64,
}

impl RefreshPolicyModel for FlatLease {
    fn label(&self) -> String {
        format!("flat-lease({})", self.budget)
    }
    fn opportunity(
        &self,
        touch: refrint_engine::time::Cycle,
        k: u64,
    ) -> refrint_engine::time::Cycle {
        touch + self.period * k
    }
    fn opportunity_period(&self) -> refrint_engine::time::Cycle {
        self.period
    }
    fn action(&self, kind: LineKind, refreshes_so_far: u64) -> RefreshAction {
        match kind {
            LineKind::Invalid => RefreshAction::Skip,
            _ if refreshes_so_far < self.budget => RefreshAction::Refresh,
            LineKind::Dirty => RefreshAction::WriteBack,
            LineKind::Clean => RefreshAction::Invalidate,
        }
    }
}

#[derive(Debug)]
struct FlatLeaseFactory {
    budget: u64,
}

impl PolicyFactory for FlatLeaseFactory {
    fn label(&self) -> String {
        format!("flat-lease({})", self.budget)
    }
    fn build(&self, binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel> {
        Arc::new(FlatLease {
            period: binding.sentry_period(),
            budget: self.budget,
        })
    }
}

#[test]
fn custom_policy_registers_and_runs_through_the_builder() {
    let mut sim = Simulation::builder()
        .register_policy(Arc::new(FlatLeaseFactory { budget: 4 }))
        .policy_label("flat-lease(4)")
        .cores(4)
        .refs_per_thread(2_000)
        .build()
        .unwrap();
    assert_eq!(sim.config().label(), "eDRAM 50us flat-lease(4)");
    let outcome = sim.run(AppPreset::Lu);
    assert!(outcome.execution_cycles() > 0);
    assert!(outcome.total_refreshes() > 0);
    assert!(outcome.breakdown().is_physical());
}

#[test]
fn custom_policy_behaves_physically_between_valid_and_wb00() {
    // A lease of 0 is maximally aggressive (like WB(0,0)); a huge lease
    // approximates Valid. The custom model must land between the two
    // built-ins on refresh count, on the same workload.
    let run_with = |factory: Option<Arc<dyn PolicyFactory>>, policy: Option<RefreshPolicy>| {
        let mut builder = Simulation::builder()
            .cores(4)
            .refs_per_thread(3_000)
            .seed(5);
        if let Some(f) = factory {
            builder = builder.policy_model(f);
        }
        if let Some(p) = policy {
            builder = builder.policy(p);
        }
        builder.build().unwrap().run(AppPreset::Fft)
    };
    let valid = run_with(
        None,
        Some(RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid)),
    );
    let lease = run_with(Some(Arc::new(FlatLeaseFactory { budget: 2 })), None);
    let wb00 = run_with(
        None,
        Some(RefreshPolicy::new(
            TimePolicy::Refrint,
            DataPolicy::write_back(0, 0),
        )),
    );
    assert!(
        lease.report.counts.l3_refreshes <= valid.report.counts.l3_refreshes,
        "a 2-opportunity lease must refresh no more than Valid"
    );
    assert!(
        wb00.report.counts.l3_refreshes <= lease.report.counts.l3_refreshes,
        "WB(0,0) must refresh no more than the lease"
    );
}

#[test]
fn duplicate_custom_registration_fails_at_build() {
    let err = Simulation::builder()
        .register_policy(Arc::new(FlatLeaseFactory { budget: 4 }))
        .register_policy(Arc::new(FlatLeaseFactory { budget: 4 }))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("already registered"), "{err}");
}

// ---------------------------------------------------------------------- //
// Parallel sweep runner
// ---------------------------------------------------------------------- //

fn sweep_config() -> ExperimentConfig {
    ExperimentConfig {
        apps: vec![AppPreset::Fft, AppPreset::Blackscholes],
        retentions_us: vec![50, 100],
        policies: vec![
            RefreshPolicy::edram_baseline(),
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
            RefreshPolicy::recommended(),
        ],
        refs_per_thread: 1_000,
        seed: 21,
        cores: 4,
        models: vec![Arc::new(FlatLeaseFactory { budget: 3 })],
        traces: Vec::new(),
        protocols: vec![CoherenceProtocol::Mesi],
        retention_profiles: vec![RetentionProfile::Uniform],
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_the_sequential_path() {
    let sequential = run_sweep(&sweep_config()).expect("sequential sweep runs");
    for workers in [2, 4] {
        let parallel = SweepRunner::new(sweep_config())
            .workers(workers)
            .run()
            .expect("parallel sweep runs");
        // Byte-identical: the full Debug serialisation (every report, every
        // stat, every float) must match exactly.
        assert_eq!(
            format!("{sequential:?}"),
            format!("{parallel:?}"),
            "results diverged with {workers} workers"
        );
    }
}

#[test]
fn sweep_runner_streams_progress_and_covers_custom_models() {
    let cfg = sweep_config();
    let total = cfg.total_runs();
    // 2 apps x (1 sram + 2 retentions x (3 policies + 1 model)) = 2 x 9.
    assert_eq!(total, 18);
    let events = Arc::new(AtomicUsize::new(0));
    let events_in_observer = Arc::clone(&events);
    let max_completed = Arc::new(AtomicUsize::new(0));
    let max_in_observer = Arc::clone(&max_completed);
    let results = SweepRunner::new(cfg)
        .workers(3)
        .observer(move |p: &SweepProgress| {
            events_in_observer.fetch_add(1, Ordering::Relaxed);
            max_in_observer.fetch_max(p.completed, Ordering::Relaxed);
            assert_eq!(p.total, 18);
        })
        .run()
        .unwrap();
    assert_eq!(events.load(Ordering::Relaxed), total);
    assert_eq!(max_completed.load(Ordering::Relaxed), total);

    // The custom model's reports are in the results, keyed by label.
    assert_eq!(results.custom_labels, vec!["flat-lease(3)".to_owned()]);
    for app in [AppPreset::Fft, AppPreset::Blackscholes] {
        for retention in [50, 100] {
            let report = results
                .edram_report_by_label(app, retention, "flat-lease(3)")
                .expect("custom model report present");
            assert!(report.execution_cycles > 0);
            assert!(report.breakdown.is_physical());
        }
    }
}

#[test]
fn sweep_runner_matches_legacy_run_sweep_for_descriptor_points() {
    let mut cfg = sweep_config();
    cfg.models.clear();
    let new = SweepRunner::new(cfg.clone()).workers(2).run().unwrap();
    let old = run_sweep(&cfg).unwrap();
    assert_eq!(old.sram.len(), new.sram.len());
    assert_eq!(old.edram.len(), new.edram.len());
    for (key, report) in &old.edram {
        let other = &new.edram[key];
        assert_eq!(report.execution_cycles, other.execution_cycles, "{key:?}");
        assert_eq!(report.counts, other.counts, "{key:?}");
    }
}
