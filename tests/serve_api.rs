//! End-to-end tests of the `refrint-serve` HTTP service.
//!
//! The headline guarantee under test: a `POST /run` (or `POST /sweep`)
//! response body is **byte-identical** to what the equivalent direct
//! `Simulation` / `SweepRunner` call renders through the shared JSON
//! emitters (which is exactly what `refrint-cli run --format json`
//! prints), whether the result was freshly simulated, raced by concurrent
//! clients, or replayed from the result cache. Malformed requests must be
//! answered with typed 4xx documents — never a panic or a dropped
//! connection.

use std::sync::Arc;
use std::time::Duration;

use refrint::prelude::*;
use refrint_serve::client;
use refrint_serve::{Server, ServerOptions};

/// Starts a server on an ephemeral port.
fn start(options: ServerOptions) -> refrint_serve::RunningServer {
    Server::bind("127.0.0.1:0", options)
        .expect("bind an ephemeral port")
        .spawn()
        .expect("spawn the accept loop")
}

/// The bytes `refrint-cli run --format json` prints for a small run.
fn direct_run_bytes(app: AppPreset, refs: u64, cores: usize, seed: Option<u64>) -> Vec<u8> {
    let mut builder = Simulation::builder()
        .edram_recommended()
        .refs_per_thread(refs)
        .cores(cores);
    if let Some(seed) = seed {
        builder = builder.seed(seed);
    }
    let mut sim = builder.build().expect("valid configuration");
    format!("{}\n", refrint::json::report(&sim.run(app).report)).into_bytes()
}

/// The bytes `refrint-cli sweep --format json` prints for a small sweep.
fn direct_sweep_bytes(apps: Vec<AppPreset>, refs: u64, cores: usize) -> Vec<u8> {
    let mut cfg = ExperimentConfig::quick().with_refs_per_thread(refs);
    cfg.apps = apps;
    cfg.cores = cores;
    let results = SweepRunner::new(cfg)
        .sequential()
        .run()
        .expect("valid sweep");
    format!("{}\n", refrint::json::sweep(&results)).into_bytes()
}

#[test]
fn concurrent_mixed_clients_get_bit_identical_results() {
    let server = start(ServerOptions {
        workers: 4,
        ..ServerOptions::default()
    });
    let addr = server.addr();

    // Expected bytes, computed directly (no server involved).
    let lu = Arc::new(direct_run_bytes(AppPreset::Lu, 600, 2, None));
    let fft = Arc::new(direct_run_bytes(AppPreset::Fft, 600, 2, None));
    let seeded = Arc::new(direct_run_bytes(AppPreset::Blackscholes, 500, 2, Some(11)));
    let swept = Arc::new(direct_sweep_bytes(vec![AppPreset::Lu], 500, 2));

    // Ten concurrent clients: three distinct runs (each requested more
    // than once, so some requests race and some hit the cache) plus a
    // sweep.
    let requests: Vec<(&str, String, Arc<Vec<u8>>)> = vec![
        (
            "/run",
            "{\"app\": \"lu\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&lu),
        ),
        (
            "/run",
            "{\"app\": \"lu\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&lu),
        ),
        (
            "/run",
            "{\"cores\": 2, \"refs\": 600, \"app\": \"lu\"}".into(),
            Arc::clone(&lu),
        ),
        (
            "/run",
            "{\"app\": \"fft\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&fft),
        ),
        (
            "/run",
            "{\"app\": \"fft\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&fft),
        ),
        (
            "/run",
            "{\"app\": \"blackscholes\", \"refs\": 500, \"cores\": 2, \"seed\": 11}".into(),
            Arc::clone(&seeded),
        ),
        (
            "/run",
            "{\"app\": \"blackscholes\", \"refs\": 500, \"cores\": 2, \"seed\": 11}".into(),
            Arc::clone(&seeded),
        ),
        (
            "/sweep",
            "{\"apps\": [\"lu\"], \"refs\": 500, \"cores\": 2}".into(),
            Arc::clone(&swept),
        ),
        (
            "/sweep",
            "{\"apps\": [\"lu\"], \"refs\": 500, \"cores\": 2}".into(),
            Arc::clone(&swept),
        ),
        (
            "/run",
            "{\"app\": \"lu\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&lu),
        ),
    ];
    assert!(requests.len() >= 8, "the issue asks for >= 8 clients");

    let handles: Vec<_> = requests
        .into_iter()
        .enumerate()
        .map(|(i, (path, body, expected))| {
            std::thread::spawn(move || {
                let response = client::post(addr, path, body.as_bytes())
                    .unwrap_or_else(|e| panic!("client {i} failed: {e}"));
                assert_eq!(response.status, 200, "client {i}: {}", response.body_str());
                assert_eq!(
                    response.body, *expected,
                    "client {i} ({path}) got bytes that differ from the direct call"
                );
                response.header("X-Refrint-Cache").map(str::to_owned)
            })
        })
        .collect();
    let cache_markers: Vec<Option<String>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        cache_markers.iter().all(|m| m.is_some()),
        "every response carries a cache marker"
    );

    // After the dust settles, a repeated request must be a cache hit with
    // the same bytes again.
    let replay = client::post(
        addr,
        "/run",
        b"{\"app\": \"lu\", \"refs\": 600, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(replay.status, 200);
    assert_eq!(replay.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(replay.body, *lu);

    // The metrics reflect the workload mix.
    let metrics = client::get(addr, "/metrics").unwrap().body_str();
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing counter {name} in:\n{metrics}"))
    };
    assert!(counter("refrint_cache_hits_total") >= 1);
    assert!(counter("refrint_jobs_completed_total") >= 4);
    assert_eq!(counter("refrint_jobs_failed_total"), 0);
    assert!(counter("refrint_refs_simulated_total") > 0);

    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_not_dropped_connections() {
    let server = start(ServerOptions {
        max_body_bytes: 2048,
        ..ServerOptions::default()
    });
    let addr = server.addr();

    // (request path, body, expected status, expected kind marker)
    let cases: Vec<(&str, Vec<u8>, u16, &str)> = vec![
        ("/run", b"{\"app\": \"lu\"".to_vec(), 400, "bad_json"),
        ("/run", b"not json at all".to_vec(), 400, "bad_json"),
        (
            "/run",
            b"{\"app\": \"quake3\"}".to_vec(),
            422,
            "unknown_workload",
        ),
        (
            "/run",
            b"{\"app\": \"lu\", \"policy\": \"R.sometimes\"}".to_vec(),
            422,
            "unknown_policy",
        ),
        ("/run", b"{}".to_vec(), 422, "schema"),
        (
            "/run",
            b"{\"app\": \"lu\", \"bogus\": true}".to_vec(),
            422,
            "schema",
        ),
        (
            "/run",
            b"{\"app\": \"lu\", \"sram\": true, \"retention_us\": 100}".to_vec(),
            422,
            "invalid_config",
        ),
        (
            "/run",
            b"{\"trace\": \"lu.rft\"}".to_vec(),
            422,
            "traces_unavailable",
        ),
        (
            "/sweep",
            b"{\"apps\": [\"lu\"], \"retentions_us\": [1]}".to_vec(),
            422,
            "invalid_config",
        ),
        (
            "/run",
            {
                // An oversized body, far bigger than the socket buffers:
                // the 413 must still reach the client even though the
                // server rejects before reading any of it (the server
                // drains the stream instead of slamming it shut with an
                // RST).
                let mut big = b"{\"app\": \"lu\", \"pad\": \"".to_vec();
                big.extend(std::iter::repeat_n(b'x', 1_000_000));
                big.extend(b"\"}");
                big
            },
            413,
            "body_too_large",
        ),
    ];

    for (path, body, status, kind) in cases {
        let response = client::post(addr, path, &body)
            .unwrap_or_else(|e| panic!("connection dropped for {path} ({kind}): {e}"));
        assert_eq!(
            response.status,
            status,
            "{path} ({kind}): {}",
            response.body_str()
        );
        assert!(
            response.body_str().contains(kind),
            "{path}: expected kind {kind} in {}",
            response.body_str()
        );
        // The server survived: health stays green after every bad request.
        let health = client::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
    }

    // Unknown policies list the valid labels, like the CLI does.
    let response = client::post(
        addr,
        "/run",
        b"{\"app\": \"lu\", \"policy\": \"R.sometimes\"}",
    )
    .unwrap();
    assert!(
        response.body_str().contains("R.WB(32,32)"),
        "policy errors must list valid labels: {}",
        response.body_str()
    );

    server.shutdown();
}

#[test]
fn async_jobs_poll_to_the_same_bytes() {
    let server = start(ServerOptions::default());
    let addr = server.addr();
    let expected = direct_run_bytes(AppPreset::Lu, 500, 2, Some(5));

    let accepted = client::post(
        addr,
        "/run",
        b"{\"app\": \"lu\", \"refs\": 500, \"cores\": 2, \"seed\": 5, \"mode\": \"async\"}",
    )
    .unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body_str());
    assert!(accepted.body_str().contains("\"status\":\"queued\""));
    assert_eq!(accepted.header("X-Refrint-Cache"), Some("miss"));
    let id = accepted
        .header("X-Refrint-Job")
        .expect("async responses carry the job id")
        .to_owned();

    let mut result = None;
    for _ in 0..400 {
        let r = client::get(addr, &format!("/jobs/{id}/result")).unwrap();
        if r.status != 202 {
            result = Some(r);
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let result = result.expect("the job finishes");
    assert_eq!(result.status, 200);
    assert_eq!(result.body, expected);

    // An async resubmission of the same work is answered from the cache
    // as an already-done job.
    let again = client::post(
        addr,
        "/run",
        b"{\"app\": \"lu\", \"refs\": 500, \"cores\": 2, \"seed\": 5, \"mode\": \"async\"}",
    )
    .unwrap();
    assert_eq!(again.status, 202);
    assert_eq!(again.header("X-Refrint-Cache"), Some("hit"));
    assert!(again.body_str().contains("\"status\":\"done\""));
    assert!(again.body_str().contains("\"cached\":true"));

    server.shutdown();
}

#[test]
fn trace_workloads_are_servable_and_replay_identically() {
    // Record a trace into a server trace dir, then serve it.
    let dir = std::env::temp_dir().join(format!("refrint-serve-traces-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("lu.rft");
    let builder = || {
        Simulation::builder()
            .edram_recommended()
            .cores(2)
            .refs_per_thread(500)
            .seed(9)
    };
    builder()
        .build()
        .unwrap()
        .capture(AppPreset::Lu, &trace_path)
        .unwrap();
    let expected = {
        let mut sim = builder().trace(&trace_path).build().unwrap();
        format!("{}\n", refrint::json::report(&sim.replay().unwrap().report)).into_bytes()
    };

    let server = start(ServerOptions {
        trace_dir: Some(dir.clone()),
        ..ServerOptions::default()
    });
    let addr = server.addr();
    let body = "{\"trace\": \"lu.rft\", \"refs\": 500, \"seed\": 9}";
    let first = client::post(addr, "/run", body.as_bytes()).unwrap();
    assert_eq!(first.status, 200, "{}", first.body_str());
    assert_eq!(first.body, expected);
    let second = client::post(addr, "/run", body.as_bytes()).unwrap();
    assert_eq!(second.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(second.body, expected);

    // Traversal attempts stay typed errors.
    let evil = client::post(addr, "/run", b"{\"trace\": \"../lu.rft\"}").unwrap();
    assert_eq!(evil.status, 422);
    assert!(evil.body_str().contains("bad_trace_name"));

    server.shutdown();
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn sweep_responses_match_the_cli_sweep_json() {
    let server = start(ServerOptions::default());
    let addr = server.addr();
    let expected = direct_sweep_bytes(vec![AppPreset::Fft], 400, 2);
    let response = client::post(
        addr,
        "/sweep",
        b"{\"apps\": [\"fft\"], \"refs\": 400, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(response.body, expected);
    // The analytics pass reaches the service response: every sweep
    // document carries the anomalies array (empty on a clean sweep).
    assert!(
        response.body_str().contains("\"anomalies\":["),
        "sweep responses must include the anomaly report"
    );
    server.shutdown();
}

/// Reads one Prometheus sample (comment lines skipped); `name` may include
/// a label set, e.g. `refrint_subsystem_cycles_total{subsystem="dram"}`.
fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| !l.starts_with('#') && l.split(' ').next() == Some(name))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("missing metric {name} in:\n{metrics}"))
}

#[test]
fn load_gauges_and_latency_histogram_move_under_load() {
    // One worker, so queued jobs visibly pile up behind the busy one.
    let server = start(ServerOptions {
        workers: 1,
        ..ServerOptions::default()
    });
    let addr = server.addr();

    let scrape = || client::get(addr, "/metrics").unwrap().body_str().to_owned();
    let idle = scrape();
    assert_eq!(metric_value(&idle, "refrint_queue_depth"), 0.0);
    assert_eq!(metric_value(&idle, "refrint_workers_busy"), 0.0);

    // Three distinct heavy runs (different seeds, so no cache hits),
    // submitted asynchronously: the single worker takes the first while
    // the others wait in the queue.
    for seed in [101, 102, 103] {
        let body = format!(
            "{{\"app\": \"lu\", \"refs\": 60000, \"cores\": 2, \"seed\": {seed}, \
             \"mode\": \"async\"}}"
        );
        let accepted = client::post(addr, "/run", body.as_bytes()).unwrap();
        assert_eq!(accepted.status, 202, "{}", accepted.body_str());
    }

    // Under load both gauges must be observably non-zero.
    let mut saw_busy = false;
    let mut saw_queued = false;
    for _ in 0..500 {
        let doc = scrape();
        saw_busy |= metric_value(&doc, "refrint_workers_busy") >= 1.0;
        saw_queued |= metric_value(&doc, "refrint_queue_depth") >= 1.0;
        if (saw_busy && saw_queued) || metric_value(&doc, "refrint_jobs_completed_total") >= 3.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_busy, "workers_busy must rise while a job executes");
    assert!(saw_queued, "queue_depth must rise while jobs wait");

    // Once everything drains, both gauges return to zero.
    let mut done = String::new();
    for _ in 0..600 {
        done = scrape();
        if metric_value(&done, "refrint_jobs_completed_total") >= 3.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        metric_value(&done, "refrint_jobs_completed_total") >= 3.0,
        "jobs must finish: \n{done}"
    );
    assert_eq!(metric_value(&done, "refrint_queue_depth"), 0.0);
    assert_eq!(metric_value(&done, "refrint_workers_busy"), 0.0);

    // The request-latency histogram counted every scrape and submission,
    // in well-formed cumulative buckets.
    let count = metric_value(&done, "refrint_http_request_duration_seconds_count");
    assert!(count >= 4.0, "latency histogram must record requests");
    assert_eq!(
        metric_value(
            &done,
            "refrint_http_request_duration_seconds_bucket{le=\"+Inf\"}"
        ),
        count,
        "the +Inf bucket equals the sample count"
    );
    assert!(metric_value(&done, "refrint_http_request_duration_seconds_sum") > 0.0);

    // Run jobs fed the per-subsystem cycle attribution.
    for subsystem in ["cache", "dram"] {
        let name = format!("refrint_subsystem_cycles_total{{subsystem=\"{subsystem}\"}}");
        assert!(
            metric_value(&done, &name) > 0.0,
            "{subsystem} cycles must be attributed after run jobs:\n{done}"
        );
    }

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_releases_the_port() {
    let server = start(ServerOptions::default());
    let addr = server.addr();
    // Queue one run, then shut down: the response must still arrive.
    let worker = std::thread::spawn(move || {
        client::post(
            addr,
            "/run",
            b"{\"app\": \"lu\", \"refs\": 400, \"cores\": 2}",
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(50));
    let bye = client::post(addr, "/shutdown", b"").unwrap();
    assert_eq!(bye.status, 200);
    let response = worker.join().unwrap();
    assert_eq!(response.status, 200, "{}", response.body_str());
    server.shutdown();
    // The port is reusable once the listener is gone.
    let mut rebound = false;
    for _ in 0..100 {
        if std::net::TcpListener::bind(addr).is_ok() {
            rebound = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(rebound, "shutdown must close the listener");
}

#[test]
fn cli_serve_options_reach_the_server() {
    // The launcher path: ServeOptions -> ServerOptions -> a live server.
    let args: Vec<String> = [
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--cache",
        "2",
        "--max-body",
        "512",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let options = refrint_cli::ServeOptions::parse(&args).unwrap();
    let server = start(options.server_options());
    let addr = server.addr();
    // The 512-byte body limit is live.
    let mut big = b"{\"app\": \"lu\", \"pad\": \"".to_vec();
    big.extend(std::iter::repeat_n(b'y', 1024));
    big.extend(b"\"}");
    let response = client::post(addr, "/run", &big).unwrap();
    assert_eq!(response.status, 413);
    server.shutdown();
}

/// Cache-key conformance: the canonical key is derived from the *validated*
/// configuration, so requests that spell the same run differently — any
/// field order, defaults written out explicitly — must hit the cache and
/// return the first run's exact bytes.
#[test]
fn cache_key_ignores_field_order_and_spelled_out_defaults() {
    let server = start(ServerOptions::default());
    let addr = server.addr();

    let canonical = client::post(
        addr,
        "/run",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(canonical.status, 200, "{}", canonical.body_str());
    assert_eq!(canonical.header("X-Refrint-Cache"), Some("miss"));
    assert_eq!(
        canonical.body,
        direct_run_bytes(AppPreset::Radix, 400, 2, None),
        "the first run must match the CLI's JSON bytes"
    );

    // The same run, spelled differently: permuted field order, and every
    // default of the /run schema written out explicitly (eDRAM cells, the
    // recommended policy, 50 us retention, the default seed 0xBEEF, sync
    // mode).
    let equivalent_bodies: &[&[u8]] = &[
        b"{\"cores\": 2, \"app\": \"radix\", \"refs\": 400}",
        b"{\"refs\": 400, \"cores\": 2, \"app\": \"radix\"}",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2, \"sram\": false, \
          \"policy\": \"R.WB(32,32)\", \"retention_us\": 50, \"seed\": 48879, \
          \"mode\": \"sync\"}",
        b"{\"seed\": 48879, \"mode\": \"sync\", \"retention_us\": 50, \
          \"policy\": \"R.WB(32,32)\", \"sram\": false, \"cores\": 2, \
          \"refs\": 400, \"app\": \"radix\"}",
    ];
    for body in equivalent_bodies {
        let response = client::post(addr, "/run", body).unwrap();
        let spelled = String::from_utf8_lossy(body);
        assert_eq!(response.status, 200, "{spelled}: {}", response.body_str());
        assert_eq!(
            response.header("X-Refrint-Cache"),
            Some("hit"),
            "`{spelled}` must resolve to the canonical cache key"
        );
        assert_eq!(
            response.body, canonical.body,
            "`{spelled}` must return the original run's exact bytes"
        );
    }

    // A genuinely different run (another seed) must not collide.
    let different = client::post(
        addr,
        "/run",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2, \"seed\": 7}",
    )
    .unwrap();
    assert_eq!(different.status, 200, "{}", different.body_str());
    assert_eq!(different.header("X-Refrint-Cache"), Some("miss"));
    assert_ne!(different.body, canonical.body);

    server.shutdown();
}
