//! End-to-end tests of the `refrint-serve` HTTP service.
//!
//! The headline guarantee under test: a `POST /run` (or `POST /sweep`)
//! response body is **byte-identical** to what the equivalent direct
//! `Simulation` / `SweepRunner` call renders through the shared JSON
//! emitters (which is exactly what `refrint-cli run --format json`
//! prints), whether the result was freshly simulated, raced by concurrent
//! clients, or replayed from the result cache. Malformed requests must be
//! answered with typed 4xx documents — never a panic or a dropped
//! connection.

use std::sync::Arc;
use std::time::Duration;

use refrint::prelude::*;
use refrint_serve::client;
use refrint_serve::{Server, ServerOptions};

/// Starts a server on an ephemeral port.
fn start(options: ServerOptions) -> refrint_serve::RunningServer {
    Server::bind("127.0.0.1:0", options)
        .expect("bind an ephemeral port")
        .spawn()
        .expect("spawn the accept loop")
}

/// The bytes `refrint-cli run --format json` prints for a small run.
fn direct_run_bytes(app: AppPreset, refs: u64, cores: usize, seed: Option<u64>) -> Vec<u8> {
    let mut builder = Simulation::builder()
        .edram_recommended()
        .refs_per_thread(refs)
        .cores(cores);
    if let Some(seed) = seed {
        builder = builder.seed(seed);
    }
    let mut sim = builder.build().expect("valid configuration");
    format!("{}\n", refrint::json::report(&sim.run(app).report)).into_bytes()
}

/// The bytes `refrint-cli sweep --format json` prints for a small sweep.
fn direct_sweep_bytes(apps: Vec<AppPreset>, refs: u64, cores: usize) -> Vec<u8> {
    let mut cfg = ExperimentConfig::quick().with_refs_per_thread(refs);
    cfg.apps = apps;
    cfg.cores = cores;
    let results = SweepRunner::new(cfg)
        .sequential()
        .run()
        .expect("valid sweep");
    format!("{}\n", refrint::json::sweep(&results)).into_bytes()
}

#[test]
fn concurrent_mixed_clients_get_bit_identical_results() {
    let server = start(ServerOptions {
        workers: 4,
        ..ServerOptions::default()
    });
    let addr = server.addr();

    // Expected bytes, computed directly (no server involved).
    let lu = Arc::new(direct_run_bytes(AppPreset::Lu, 600, 2, None));
    let fft = Arc::new(direct_run_bytes(AppPreset::Fft, 600, 2, None));
    let seeded = Arc::new(direct_run_bytes(AppPreset::Blackscholes, 500, 2, Some(11)));
    let swept = Arc::new(direct_sweep_bytes(vec![AppPreset::Lu], 500, 2));

    // Ten concurrent clients: three distinct runs (each requested more
    // than once, so some requests race and some hit the cache) plus a
    // sweep.
    let requests: Vec<(&str, String, Arc<Vec<u8>>)> = vec![
        (
            "/run",
            "{\"app\": \"lu\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&lu),
        ),
        (
            "/run",
            "{\"app\": \"lu\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&lu),
        ),
        (
            "/run",
            "{\"cores\": 2, \"refs\": 600, \"app\": \"lu\"}".into(),
            Arc::clone(&lu),
        ),
        (
            "/run",
            "{\"app\": \"fft\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&fft),
        ),
        (
            "/run",
            "{\"app\": \"fft\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&fft),
        ),
        (
            "/run",
            "{\"app\": \"blackscholes\", \"refs\": 500, \"cores\": 2, \"seed\": 11}".into(),
            Arc::clone(&seeded),
        ),
        (
            "/run",
            "{\"app\": \"blackscholes\", \"refs\": 500, \"cores\": 2, \"seed\": 11}".into(),
            Arc::clone(&seeded),
        ),
        (
            "/sweep",
            "{\"apps\": [\"lu\"], \"refs\": 500, \"cores\": 2}".into(),
            Arc::clone(&swept),
        ),
        (
            "/sweep",
            "{\"apps\": [\"lu\"], \"refs\": 500, \"cores\": 2}".into(),
            Arc::clone(&swept),
        ),
        (
            "/run",
            "{\"app\": \"lu\", \"refs\": 600, \"cores\": 2}".into(),
            Arc::clone(&lu),
        ),
    ];
    assert!(requests.len() >= 8, "the issue asks for >= 8 clients");

    let handles: Vec<_> = requests
        .into_iter()
        .enumerate()
        .map(|(i, (path, body, expected))| {
            std::thread::spawn(move || {
                let response = client::post(addr, path, body.as_bytes())
                    .unwrap_or_else(|e| panic!("client {i} failed: {e}"));
                assert_eq!(response.status, 200, "client {i}: {}", response.body_str());
                assert_eq!(
                    response.body, *expected,
                    "client {i} ({path}) got bytes that differ from the direct call"
                );
                response.header("X-Refrint-Cache").map(str::to_owned)
            })
        })
        .collect();
    let cache_markers: Vec<Option<String>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        cache_markers.iter().all(|m| m.is_some()),
        "every response carries a cache marker"
    );

    // After the dust settles, a repeated request must be a cache hit with
    // the same bytes again.
    let replay = client::post(
        addr,
        "/run",
        b"{\"app\": \"lu\", \"refs\": 600, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(replay.status, 200);
    assert_eq!(replay.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(replay.body, *lu);

    // The metrics reflect the workload mix.
    let metrics = client::get(addr, "/metrics").unwrap().body_str();
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("missing counter {name} in:\n{metrics}"))
    };
    assert!(counter("refrint_cache_hits_total") >= 1);
    assert!(counter("refrint_jobs_completed_total") >= 4);
    assert_eq!(counter("refrint_jobs_failed_total"), 0);
    assert!(counter("refrint_refs_simulated_total") > 0);

    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors_not_dropped_connections() {
    let server = start(ServerOptions {
        max_body_bytes: 2048,
        ..ServerOptions::default()
    });
    let addr = server.addr();

    // (request path, body, expected status, expected kind marker)
    let cases: Vec<(&str, Vec<u8>, u16, &str)> = vec![
        ("/run", b"{\"app\": \"lu\"".to_vec(), 400, "bad_json"),
        ("/run", b"not json at all".to_vec(), 400, "bad_json"),
        (
            "/run",
            b"{\"app\": \"quake3\"}".to_vec(),
            422,
            "unknown_workload",
        ),
        (
            "/run",
            b"{\"app\": \"lu\", \"policy\": \"R.sometimes\"}".to_vec(),
            422,
            "unknown_policy",
        ),
        ("/run", b"{}".to_vec(), 422, "schema"),
        (
            "/run",
            b"{\"app\": \"lu\", \"bogus\": true}".to_vec(),
            422,
            "schema",
        ),
        (
            "/run",
            b"{\"app\": \"lu\", \"sram\": true, \"retention_us\": 100}".to_vec(),
            422,
            "invalid_config",
        ),
        (
            "/run",
            b"{\"trace\": \"lu.rft\"}".to_vec(),
            422,
            "traces_unavailable",
        ),
        (
            "/sweep",
            b"{\"apps\": [\"lu\"], \"retentions_us\": [1]}".to_vec(),
            422,
            "invalid_config",
        ),
        (
            "/run",
            {
                // An oversized body, far bigger than the socket buffers:
                // the 413 must still reach the client even though the
                // server rejects before reading any of it (the server
                // drains the stream instead of slamming it shut with an
                // RST).
                let mut big = b"{\"app\": \"lu\", \"pad\": \"".to_vec();
                big.extend(std::iter::repeat_n(b'x', 1_000_000));
                big.extend(b"\"}");
                big
            },
            413,
            "body_too_large",
        ),
    ];

    for (path, body, status, kind) in cases {
        let response = client::post(addr, path, &body)
            .unwrap_or_else(|e| panic!("connection dropped for {path} ({kind}): {e}"));
        assert_eq!(
            response.status,
            status,
            "{path} ({kind}): {}",
            response.body_str()
        );
        assert!(
            response.body_str().contains(kind),
            "{path}: expected kind {kind} in {}",
            response.body_str()
        );
        // The server survived: health stays green after every bad request.
        let health = client::get(addr, "/healthz").unwrap();
        assert_eq!(health.status, 200);
    }

    // Unknown policies list the valid labels, like the CLI does.
    let response = client::post(
        addr,
        "/run",
        b"{\"app\": \"lu\", \"policy\": \"R.sometimes\"}",
    )
    .unwrap();
    assert!(
        response.body_str().contains("R.WB(32,32)"),
        "policy errors must list valid labels: {}",
        response.body_str()
    );

    server.shutdown();
}

#[test]
fn async_jobs_poll_to_the_same_bytes() {
    let server = start(ServerOptions::default());
    let addr = server.addr();
    let expected = direct_run_bytes(AppPreset::Lu, 500, 2, Some(5));

    let accepted = client::post(
        addr,
        "/run",
        b"{\"app\": \"lu\", \"refs\": 500, \"cores\": 2, \"seed\": 5, \"mode\": \"async\"}",
    )
    .unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.body_str());
    assert!(accepted.body_str().contains("\"status\":\"queued\""));
    assert_eq!(accepted.header("X-Refrint-Cache"), Some("miss"));
    let id = accepted
        .header("X-Refrint-Job")
        .expect("async responses carry the job id")
        .to_owned();

    let mut result = None;
    for _ in 0..400 {
        let r = client::get(addr, &format!("/jobs/{id}/result")).unwrap();
        if r.status != 202 {
            result = Some(r);
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let result = result.expect("the job finishes");
    assert_eq!(result.status, 200);
    assert_eq!(result.body, expected);

    // An async resubmission of the same work is answered from the cache
    // as an already-done job.
    let again = client::post(
        addr,
        "/run",
        b"{\"app\": \"lu\", \"refs\": 500, \"cores\": 2, \"seed\": 5, \"mode\": \"async\"}",
    )
    .unwrap();
    assert_eq!(again.status, 202);
    assert_eq!(again.header("X-Refrint-Cache"), Some("hit"));
    assert!(again.body_str().contains("\"status\":\"done\""));
    assert!(again.body_str().contains("\"cached\":true"));

    server.shutdown();
}

#[test]
fn trace_workloads_are_servable_and_replay_identically() {
    // Record a trace into a server trace dir, then serve it.
    let dir = std::env::temp_dir().join(format!("refrint-serve-traces-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("lu.rft");
    let builder = || {
        Simulation::builder()
            .edram_recommended()
            .cores(2)
            .refs_per_thread(500)
            .seed(9)
    };
    builder()
        .build()
        .unwrap()
        .capture(AppPreset::Lu, &trace_path)
        .unwrap();
    let expected = {
        let mut sim = builder().trace(&trace_path).build().unwrap();
        format!("{}\n", refrint::json::report(&sim.replay().unwrap().report)).into_bytes()
    };

    let server = start(ServerOptions {
        trace_dir: Some(dir.clone()),
        ..ServerOptions::default()
    });
    let addr = server.addr();
    let body = "{\"trace\": \"lu.rft\", \"refs\": 500, \"seed\": 9}";
    let first = client::post(addr, "/run", body.as_bytes()).unwrap();
    assert_eq!(first.status, 200, "{}", first.body_str());
    assert_eq!(first.body, expected);
    let second = client::post(addr, "/run", body.as_bytes()).unwrap();
    assert_eq!(second.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(second.body, expected);

    // Traversal attempts stay typed errors.
    let evil = client::post(addr, "/run", b"{\"trace\": \"../lu.rft\"}").unwrap();
    assert_eq!(evil.status, 422);
    assert!(evil.body_str().contains("bad_trace_name"));

    server.shutdown();
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_dir(&dir).ok();
}

#[test]
fn sweep_responses_match_the_cli_sweep_json() {
    let server = start(ServerOptions::default());
    let addr = server.addr();
    let expected = direct_sweep_bytes(vec![AppPreset::Fft], 400, 2);
    let response = client::post(
        addr,
        "/sweep",
        b"{\"apps\": [\"fft\"], \"refs\": 400, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(response.body, expected);
    // The analytics pass reaches the service response: every sweep
    // document carries the anomalies array (empty on a clean sweep).
    assert!(
        response.body_str().contains("\"anomalies\":["),
        "sweep responses must include the anomaly report"
    );
    server.shutdown();
}

/// Reads one Prometheus sample (comment lines skipped); `name` may include
/// a label set, e.g. `refrint_subsystem_cycles_total{subsystem="dram"}`.
fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| !l.starts_with('#') && l.split(' ').next() == Some(name))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("missing metric {name} in:\n{metrics}"))
}

#[test]
fn load_gauges_and_latency_histogram_move_under_load() {
    // One worker, so queued jobs visibly pile up behind the busy one.
    let server = start(ServerOptions {
        workers: 1,
        ..ServerOptions::default()
    });
    let addr = server.addr();

    let scrape = || client::get(addr, "/metrics").unwrap().body_str().to_owned();
    let idle = scrape();
    assert_eq!(metric_value(&idle, "refrint_queue_depth"), 0.0);
    assert_eq!(metric_value(&idle, "refrint_workers_busy"), 0.0);

    // Three distinct heavy runs (different seeds, so no cache hits),
    // submitted asynchronously: the single worker takes the first while
    // the others wait in the queue.
    for seed in [101, 102, 103] {
        let body = format!(
            "{{\"app\": \"lu\", \"refs\": 60000, \"cores\": 2, \"seed\": {seed}, \
             \"mode\": \"async\"}}"
        );
        let accepted = client::post(addr, "/run", body.as_bytes()).unwrap();
        assert_eq!(accepted.status, 202, "{}", accepted.body_str());
    }

    // Under load both gauges must be observably non-zero.
    let mut saw_busy = false;
    let mut saw_queued = false;
    for _ in 0..500 {
        let doc = scrape();
        saw_busy |= metric_value(&doc, "refrint_workers_busy") >= 1.0;
        saw_queued |= metric_value(&doc, "refrint_queue_depth") >= 1.0;
        if (saw_busy && saw_queued) || metric_value(&doc, "refrint_jobs_completed_total") >= 3.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_busy, "workers_busy must rise while a job executes");
    assert!(saw_queued, "queue_depth must rise while jobs wait");

    // Once everything drains, both gauges return to zero.
    let mut done = String::new();
    for _ in 0..600 {
        done = scrape();
        if metric_value(&done, "refrint_jobs_completed_total") >= 3.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        metric_value(&done, "refrint_jobs_completed_total") >= 3.0,
        "jobs must finish: \n{done}"
    );
    assert_eq!(metric_value(&done, "refrint_queue_depth"), 0.0);
    assert_eq!(metric_value(&done, "refrint_workers_busy"), 0.0);

    // The request-latency histogram counted every scrape and submission,
    // in well-formed cumulative buckets.
    let count = metric_value(&done, "refrint_http_request_duration_seconds_count");
    assert!(count >= 4.0, "latency histogram must record requests");
    assert_eq!(
        metric_value(
            &done,
            "refrint_http_request_duration_seconds_bucket{le=\"+Inf\"}"
        ),
        count,
        "the +Inf bucket equals the sample count"
    );
    assert!(metric_value(&done, "refrint_http_request_duration_seconds_sum") > 0.0);

    // Run jobs fed the per-subsystem cycle attribution.
    for subsystem in ["cache", "dram"] {
        let name = format!("refrint_subsystem_cycles_total{{subsystem=\"{subsystem}\"}}");
        assert!(
            metric_value(&done, &name) > 0.0,
            "{subsystem} cycles must be attributed after run jobs:\n{done}"
        );
    }

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_releases_the_port() {
    let server = start(ServerOptions::default());
    let addr = server.addr();
    // Queue one run, then shut down: the response must still arrive.
    let worker = std::thread::spawn(move || {
        client::post(
            addr,
            "/run",
            b"{\"app\": \"lu\", \"refs\": 400, \"cores\": 2}",
        )
        .unwrap()
    });
    std::thread::sleep(Duration::from_millis(50));
    let bye = client::post(addr, "/shutdown", b"").unwrap();
    assert_eq!(bye.status, 200);
    let response = worker.join().unwrap();
    assert_eq!(response.status, 200, "{}", response.body_str());
    server.shutdown();
    // The port is reusable once the listener is gone.
    let mut rebound = false;
    for _ in 0..100 {
        if std::net::TcpListener::bind(addr).is_ok() {
            rebound = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(rebound, "shutdown must close the listener");
}

#[test]
fn cli_serve_options_reach_the_server() {
    // The launcher path: ServeOptions -> ServerOptions -> a live server.
    let args: Vec<String> = [
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--cache",
        "2",
        "--max-body",
        "512",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let options = refrint_cli::ServeOptions::parse(&args).unwrap();
    let server = start(options.server_options());
    let addr = server.addr();
    // The 512-byte body limit is live.
    let mut big = b"{\"app\": \"lu\", \"pad\": \"".to_vec();
    big.extend(std::iter::repeat_n(b'y', 1024));
    big.extend(b"\"}");
    let response = client::post(addr, "/run", &big).unwrap();
    assert_eq!(response.status, 413);
    server.shutdown();
}

/// Cache-key conformance: the canonical key is derived from the *validated*
/// configuration, so requests that spell the same run differently — any
/// field order, defaults written out explicitly — must hit the cache and
/// return the first run's exact bytes.
#[test]
fn cache_key_ignores_field_order_and_spelled_out_defaults() {
    let server = start(ServerOptions::default());
    let addr = server.addr();

    let canonical = client::post(
        addr,
        "/run",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(canonical.status, 200, "{}", canonical.body_str());
    assert_eq!(canonical.header("X-Refrint-Cache"), Some("miss"));
    assert_eq!(
        canonical.body,
        direct_run_bytes(AppPreset::Radix, 400, 2, None),
        "the first run must match the CLI's JSON bytes"
    );

    // The same run, spelled differently: permuted field order, and every
    // default of the /run schema written out explicitly (eDRAM cells, the
    // recommended policy, 50 us retention, the default seed 0xBEEF, sync
    // mode).
    let equivalent_bodies: &[&[u8]] = &[
        b"{\"cores\": 2, \"app\": \"radix\", \"refs\": 400}",
        b"{\"refs\": 400, \"cores\": 2, \"app\": \"radix\"}",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2, \"sram\": false, \
          \"policy\": \"R.WB(32,32)\", \"retention_us\": 50, \"seed\": 48879, \
          \"mode\": \"sync\"}",
        b"{\"seed\": 48879, \"mode\": \"sync\", \"retention_us\": 50, \
          \"policy\": \"R.WB(32,32)\", \"sram\": false, \"cores\": 2, \
          \"refs\": 400, \"app\": \"radix\"}",
    ];
    for body in equivalent_bodies {
        let response = client::post(addr, "/run", body).unwrap();
        let spelled = String::from_utf8_lossy(body);
        assert_eq!(response.status, 200, "{spelled}: {}", response.body_str());
        assert_eq!(
            response.header("X-Refrint-Cache"),
            Some("hit"),
            "`{spelled}` must resolve to the canonical cache key"
        );
        assert_eq!(
            response.body, canonical.body,
            "`{spelled}` must return the original run's exact bytes"
        );
    }

    // A genuinely different run (another seed) must not collide.
    let different = client::post(
        addr,
        "/run",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2, \"seed\": 7}",
    )
    .unwrap();
    assert_eq!(different.status, 200, "{}", different.body_str());
    assert_eq!(different.header("X-Refrint-Cache"), Some("miss"));
    assert_ne!(different.body, canonical.body);

    server.shutdown();
}

/// Cache-key conformance for the coherence-protocol and retention-profile
/// axes: spelled-out defaults still hit the default entry, a non-default
/// axis keys (and simulates) separately in any field order, and the two
/// axes never collide with each other.
#[test]
fn protocol_and_retention_profile_axes_key_separately() {
    let server = start(ServerOptions::default());
    let addr = server.addr();

    let base = client::post(
        addr,
        "/run",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(base.status, 200, "{}", base.body_str());
    assert_eq!(base.header("X-Refrint-Cache"), Some("miss"));

    // Spelling out the default axes must hit the default entry.
    let spelled = client::post(
        addr,
        "/run",
        b"{\"retention_profile\": \"uniform\", \"protocol\": \"mesi\", \
          \"app\": \"radix\", \"refs\": 400, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(spelled.status, 200, "{}", spelled.body_str());
    assert_eq!(spelled.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(spelled.body, base.body);

    // A non-default protocol is a different simulation: miss, then a hit
    // under a permuted field order, never the MESI bytes.
    let dragon = client::post(
        addr,
        "/run",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2, \"protocol\": \"dragon\"}",
    )
    .unwrap();
    assert_eq!(dragon.status, 200, "{}", dragon.body_str());
    assert_eq!(dragon.header("X-Refrint-Cache"), Some("miss"));
    let dragon_reordered = client::post(
        addr,
        "/run",
        b"{\"protocol\": \"dragon\", \"cores\": 2, \"refs\": 400, \"app\": \"radix\"}",
    )
    .unwrap();
    assert_eq!(dragon_reordered.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(dragon_reordered.body, dragon.body);

    // A non-default retention profile keys separately from both.
    let bimodal = client::post(
        addr,
        "/run",
        b"{\"app\": \"radix\", \"refs\": 400, \"cores\": 2, \
          \"retention_profile\": \"bimodal(25,60)\"}",
    )
    .unwrap();
    assert_eq!(bimodal.status, 200, "{}", bimodal.body_str());
    assert_eq!(bimodal.header("X-Refrint-Cache"), Some("miss"));
    let bimodal_again = client::post(
        addr,
        "/run",
        b"{\"retention_profile\": \"bimodal(25,60)\", \"app\": \"radix\", \
          \"refs\": 400, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(bimodal_again.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(bimodal_again.body, bimodal.body);

    // Bad axis labels are typed 422s, not 500s or dropped connections.
    let err = client::post(
        addr,
        "/run",
        b"{\"app\": \"radix\", \"protocol\": \"moesi\"}",
    )
    .unwrap();
    assert_eq!(err.status, 422, "{}", err.body_str());
    assert!(
        err.body_str().contains("unknown_protocol"),
        "{}",
        err.body_str()
    );

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Request-scoped tracing
// ---------------------------------------------------------------------------

use refrint_engine::json::{parse, Value};

/// Polls `/jobs/<id>/trace` until the trace is attached (202 until the
/// connection handler has written the response bytes) and parses it.
fn fetch_trace(addr: std::net::SocketAddr, id: &str) -> Value {
    for _ in 0..400 {
        let r = client::get(addr, &format!("/jobs/{id}/trace")).unwrap();
        if r.status == 200 {
            return parse(&r.body_str()).expect("trace documents are valid JSON");
        }
        assert_eq!(r.status, 202, "unexpected trace status: {}", r.body_str());
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("trace for job {id} never became available");
}

/// The flat span list of an OTLP-shaped trace document.
fn trace_spans(doc: &Value) -> &[Value] {
    doc.get("resourceSpans")
        .and_then(Value::as_arr)
        .and_then(|rs| rs.first())
        .and_then(|r| r.get("scopeSpans"))
        .and_then(Value::as_arr)
        .and_then(|ss| ss.first())
        .and_then(|s| s.get("spans"))
        .and_then(Value::as_arr)
        .expect("resourceSpans[0].scopeSpans[0].spans")
}

/// Reads one resource attribute (stringValue or intValue) by key.
fn resource_attr(doc: &Value, key: &str) -> Option<String> {
    let attrs = doc
        .get("resourceSpans")
        .and_then(Value::as_arr)
        .and_then(|rs| rs.first())
        .and_then(|r| r.get("resource"))
        .and_then(|r| r.get("attributes"))
        .and_then(Value::as_arr)?;
    attrs
        .iter()
        .find(|a| a.get("key").and_then(Value::as_str) == Some(key))
        .and_then(|a| a.get("value"))
        .and_then(|v| {
            v.get("stringValue")
                .or_else(|| v.get("intValue"))
                .and_then(Value::as_str)
        })
        .map(str::to_owned)
}

fn span_field<'a>(span: &'a Value, field: &str) -> Option<&'a str> {
    span.get(field).and_then(Value::as_str)
}

#[test]
fn traceparent_requests_are_followable_end_to_end() {
    let server = start(ServerOptions::default());
    let addr = server.addr();

    let inbound_trace = "4bf92f3577b34da6a3ce929d0e0e4736";
    let inbound_span = "00f067aa0ba902b7";
    let traceparent = format!("00-{inbound_trace}-{inbound_span}-01");

    let response = client::request_with_headers(
        addr,
        "POST",
        "/run",
        Some(b"{\"app\": \"lu\", \"refs\": 500, \"cores\": 2, \"seed\": 21}"),
        &[("traceparent", traceparent.as_str())],
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body_str());
    let id = response
        .header("X-Refrint-Job")
        .expect("traced submissions carry the job id")
        .to_owned();

    let doc = fetch_trace(addr, &id);
    let spans = trace_spans(&doc);

    // The root `request` span carries the inbound trace id and is parented
    // on the caller's span — the trace continues, not restarts.
    let root = spans
        .iter()
        .find(|s| span_field(s, "name") == Some("request"))
        .expect("a request root span");
    assert_eq!(span_field(root, "traceId"), Some(inbound_trace));
    assert_eq!(span_field(root, "parentSpanId"), Some(inbound_span));

    // Every lifecycle stage appears as a child of the root, in timeline
    // order, and a cache-missing sync run is bounded by `execute`.
    let root_id = span_field(root, "spanId").unwrap().to_owned();
    for stage in [
        "parse",
        "read_body",
        "validate",
        "cache_lookup",
        "queue_wait",
        "execute",
        "write",
    ] {
        let name = format!("stage/{stage}");
        let span = spans
            .iter()
            .find(|s| span_field(s, "name") == Some(name.as_str()))
            .unwrap_or_else(|| panic!("missing {name} span"));
        assert_eq!(span_field(span, "traceId"), Some(inbound_trace));
        assert_eq!(span_field(span, "parentSpanId"), Some(root_id.as_str()));
    }
    assert_eq!(
        resource_attr(&doc, "refrint.request_critical_stage").as_deref(),
        Some("execute"),
        "a cache miss spends its time executing the simulation"
    );

    // The executed run's subsystem spans hang off the execute stage, and
    // the run-level critical subsystem is named.
    let execute_id = spans
        .iter()
        .find(|s| span_field(s, "name") == Some("stage/execute"))
        .and_then(|s| span_field(s, "spanId"))
        .unwrap()
        .to_owned();
    assert!(
        spans
            .iter()
            .any(|s| span_field(s, "parentSpanId") == Some(execute_id.as_str())),
        "simulation subsystem spans must be children of stage/execute"
    );
    assert!(resource_attr(&doc, "refrint.run_critical_subsystem").is_some());

    // The per-stage latency histogram is live on /metrics.
    let metrics = client::get(addr, "/metrics").unwrap().body_str();
    for stage in ["parse", "validate", "execute", "write"] {
        let needle = format!("refrint_request_stage_seconds_count{{stage=\"{stage}\"}}");
        assert!(
            metrics.lines().any(|l| l.starts_with(&needle)),
            "missing {needle} in:\n{metrics}"
        );
    }

    server.shutdown();
}

#[test]
fn untraced_requests_mint_deterministic_trace_ids_and_hits_are_traceable() {
    let server = start(ServerOptions::default());
    let addr = server.addr();
    let body: &[u8] = b"{\"app\": \"fft\", \"refs\": 500, \"cores\": 2, \"seed\": 33}";

    let miss = client::post(addr, "/run", body).unwrap();
    assert_eq!(miss.status, 200, "{}", miss.body_str());
    assert_eq!(miss.header("X-Refrint-Cache"), Some("miss"));
    let miss_id = miss.header("X-Refrint-Job").unwrap().to_owned();
    let miss_doc = fetch_trace(addr, &miss_id);
    let miss_trace_id = span_field(
        trace_spans(&miss_doc)
            .iter()
            .find(|s| span_field(s, "name") == Some("request"))
            .unwrap(),
        "traceId",
    )
    .unwrap()
    .to_owned();

    // A cache hit gets its own job id and its own trace: the handler-side
    // stages are all there, the critical stage is one of them (there is no
    // execute stage to blame), and the minted trace id — derived from the
    // canonical cache key — matches the miss's.
    let hit = client::post(addr, "/run", body).unwrap();
    assert_eq!(hit.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(hit.body, miss.body, "hits replay the exact bytes");
    let hit_id = hit.header("X-Refrint-Job").unwrap().to_owned();
    assert_ne!(hit_id, miss_id, "each request is its own job");
    let hit_doc = fetch_trace(addr, &hit_id);
    let hit_spans = trace_spans(&hit_doc);
    let hit_trace_id = span_field(
        hit_spans
            .iter()
            .find(|s| span_field(s, "name") == Some("request"))
            .unwrap(),
        "traceId",
    )
    .unwrap();
    assert_eq!(
        hit_trace_id, miss_trace_id,
        "minted trace ids are a pure function of the validated cache key"
    );

    let critical = resource_attr(&hit_doc, "refrint.request_critical_stage")
        .expect("hits name their bounding stage");
    assert!(
        ["parse", "read_body", "validate", "cache_lookup", "write"].contains(&critical.as_str()),
        "a cache hit never executes: bounding stage was {critical}"
    );
    assert!(
        !hit_spans
            .iter()
            .any(|s| span_field(s, "name") == Some("stage/execute")),
        "cache hits must not claim an execute stage"
    );
    assert_eq!(
        resource_attr(&hit_doc, "refrint.job_cached").as_deref(),
        Some("true")
    );

    server.shutdown();
}

/// Tracing and logging observe without perturbing: the exact bytes of a
/// `/run` response are identical whether the request carried a
/// `traceparent`, whether debug JSON logging is on, and whether the
/// latency buckets were customised.
#[test]
fn tracing_and_logging_never_change_response_bytes() {
    use refrint_obs::log::{Level, LogFormat};
    let expected = direct_run_bytes(AppPreset::Lu, 500, 2, Some(77));
    let body: &[u8] = b"{\"app\": \"lu\", \"refs\": 500, \"cores\": 2, \"seed\": 77}";

    let quiet = start(ServerOptions::default());
    let plain = client::post(quiet.addr(), "/run", body).unwrap();
    assert_eq!(plain.status, 200, "{}", plain.body_str());
    assert_eq!(plain.body, expected);
    quiet.shutdown();

    let noisy = start(ServerOptions {
        log_level: Level::Debug,
        log_format: LogFormat::Json,
        latency_bounds_micros: vec![1_000, 100_000, 10_000_000],
        ..ServerOptions::default()
    });
    let traced = client::request_with_headers(
        noisy.addr(),
        "POST",
        "/run",
        Some(body),
        &[(
            "traceparent",
            "00-0123456789abcdef0123456789abcdef-fedcba9876543210-01",
        )],
    )
    .unwrap();
    assert_eq!(traced.status, 200, "{}", traced.body_str());
    assert_eq!(
        traced.body, expected,
        "debug logging + tracing + custom buckets must not change the body"
    );

    // The custom buckets really are live.
    let metrics = client::get(noisy.addr(), "/metrics").unwrap().body_str();
    assert!(
        metrics.contains("refrint_http_request_duration_seconds_bucket{le=\"0.001\"}"),
        "custom latency buckets must reach the histogram:\n{metrics}"
    );
    noisy.shutdown();
}

#[test]
fn sweep_anomaly_tuning_is_honoured_and_validated() {
    let server = start(ServerOptions::default());
    let addr = server.addr();

    // A custom tuning renders through the same emitter as the CLI's
    // --anomaly-threshold/--min-slice flags.
    let tuned_expected = {
        let mut cfg = ExperimentConfig::quick().with_refs_per_thread(400);
        cfg.apps = vec![AppPreset::Lu];
        cfg.cores = 2;
        let results = SweepRunner::new(cfg).sequential().run().unwrap();
        let tuning = refrint_obs::anomaly::AnomalyTuning::new(2.5, 3).unwrap();
        format!("{}\n", refrint::json::sweep_tuned(&results, tuning)).into_bytes()
    };
    let tuned = client::post(
        addr,
        "/sweep",
        b"{\"apps\": [\"lu\"], \"refs\": 400, \"cores\": 2, \
          \"anomaly_threshold\": 2.5, \"min_slice\": 3}",
    )
    .unwrap();
    assert_eq!(tuned.status, 200, "{}", tuned.body_str());
    assert_eq!(tuned.body, tuned_expected);

    // The default-tuned sweep of the same config is a different cache
    // entry (PR-4 keys unchanged), and repeating the tuned request hits.
    let default_tuned = client::post(
        addr,
        "/sweep",
        b"{\"apps\": [\"lu\"], \"refs\": 400, \"cores\": 2}",
    )
    .unwrap();
    assert_eq!(default_tuned.header("X-Refrint-Cache"), Some("miss"));
    let again = client::post(
        addr,
        "/sweep",
        b"{\"apps\": [\"lu\"], \"refs\": 400, \"cores\": 2, \
          \"anomaly_threshold\": 2.5, \"min_slice\": 3}",
    )
    .unwrap();
    assert_eq!(again.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(again.body, tuned_expected);

    // Bad tuning values get typed 422s, never a panic.
    for bad in [
        "{\"apps\": [\"lu\"], \"anomaly_threshold\": -2.0}",
        "{\"apps\": [\"lu\"], \"min_slice\": 0}",
    ] {
        let response = client::post(addr, "/sweep", bad.as_bytes()).unwrap();
        assert_eq!(response.status, 422, "{bad}: {}", response.body_str());
        assert!(
            response.body_str().contains("invalid_tuning"),
            "{bad}: {}",
            response.body_str()
        );
    }

    server.shutdown();
}
