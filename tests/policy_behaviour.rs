//! Class-level policy behaviour: the qualitative claims of the paper's
//! Section 3.3 / Figure 3.1, checked on the synthetic analogues.

use refrint::prelude::*;

fn run(policy: RefreshPolicy, app: AppPreset, scale: u64) -> refrint::SimReport {
    Simulation::builder()
        .edram_recommended()
        .policy(policy)
        .retention_us(50)
        .refs_per_thread(scale)
        .seed(77)
        .build()
        .unwrap()
        .run(app)
        .report
}

fn sram(app: AppPreset, scale: u64) -> refrint::SimReport {
    Simulation::builder()
        .sram_baseline()
        .refs_per_thread(scale)
        .seed(77)
        .build()
        .unwrap()
        .run(app)
        .report
}

#[test]
fn aggressive_policies_discard_data_and_create_dram_traffic() {
    // WB(0,0) is the most aggressive policy expressible: dirty lines are
    // written back at their first idle opportunity and clean lines are
    // invalidated immediately. It must refresh less and hit DRAM more than
    // the conservative Valid policy, on every class of application.
    for app in [AppPreset::Fft, AppPreset::Lu, AppPreset::Blackscholes] {
        let valid = run(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
            app,
            5_000,
        );
        let wb00 = run(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(0, 0)),
            app,
            5_000,
        );
        assert!(
            wb00.counts.l3_refreshes <= valid.counts.l3_refreshes,
            "{app}: WB(0,0) must not refresh more than Valid"
        );
        assert!(
            wb00.counts.dram_accesses() >= valid.counts.dram_accesses(),
            "{app}: WB(0,0) must not reduce DRAM traffic"
        );
    }
}

#[test]
fn class3_prefers_valid_over_aggressive_wb() {
    // Low-visibility applications keep their working set in the L1/L2; the
    // L3 cannot tell the data is alive, so aggressive invalidation forces
    // extra misses. Valid should cost no more total energy and no more time
    // than WB(0,0) for Class 3.
    let app = AppPreset::Blackscholes;
    let baseline = sram(app, 6_000);
    let valid = run(
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
        app,
        6_000,
    );
    let aggressive = run(
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(0, 0)),
        app,
        6_000,
    );
    assert!(
        valid.slowdown_vs(&baseline) <= aggressive.slowdown_vs(&baseline) + 1e-9,
        "class 3: Valid must not be slower than WB(0,0) ({} vs {})",
        valid.slowdown_vs(&baseline),
        aggressive.slowdown_vs(&baseline)
    );
    assert!(
        aggressive.counts.dram_accesses() > valid.counts.dram_accesses(),
        "class 3: aggressive invalidation must force extra DRAM refills"
    );
}

#[test]
fn dirty_policy_behaves_between_valid_and_wb00() {
    // Dirty = WB(inf, 0): it never discards dirty lines but drops clean ones
    // immediately, so its refresh count sits between WB(0,0) and Valid.
    let app = AppPreset::Radix;
    let valid = run(
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
        app,
        5_000,
    );
    let dirty = run(
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Dirty),
        app,
        5_000,
    );
    let wb00 = run(
        RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(0, 0)),
        app,
        5_000,
    );
    assert!(dirty.counts.l3_refreshes <= valid.counts.l3_refreshes);
    assert!(wb00.counts.l3_refreshes <= dirty.counts.l3_refreshes);
}

#[test]
fn wb_budget_monotonicity_in_refreshes() {
    // Larger WB budgets keep lines alive longer, so refresh counts grow
    // monotonically with (n, m) while DRAM traffic shrinks (or stays equal).
    let app = AppPreset::Fft;
    let mut previous: Option<refrint::SimReport> = None;
    for budget in [0u32, 4, 16, 32] {
        let report = run(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(budget, budget)),
            app,
            5_000,
        );
        if let Some(prev) = &previous {
            assert!(
                report.counts.l3_refreshes >= prev.counts.l3_refreshes,
                "budget {budget}: refreshes must not decrease"
            );
            assert!(
                report.counts.dram_accesses() <= prev.counts.dram_accesses(),
                "budget {budget}: DRAM traffic must not increase"
            );
        }
        previous = Some(report);
    }
}

#[test]
fn periodic_valid_refreshes_less_than_periodic_all() {
    // All refreshes every physical line; Valid only the valid ones. On a
    // workload that leaves much of the L3 unused the difference is large.
    let app = AppPreset::Blackscholes;
    let all = run(
        RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::All),
        app,
        5_000,
    );
    let valid = run(
        RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Valid),
        app,
        5_000,
    );
    assert!(
        valid.counts.l3_refreshes < all.counts.l3_refreshes / 2,
        "Periodic Valid ({}) should refresh far less than Periodic All ({})",
        valid.counts.l3_refreshes,
        all.counts.l3_refreshes
    );
}

#[test]
fn coherence_sharing_shows_up_in_protocol_statistics() {
    // Class 2 applications share heavily; the directory must observe
    // invalidations and owner downgrades. Class 3 applications barely share.
    let class2 = run(RefreshPolicy::recommended(), AppPreset::Barnes, 5_000);
    let class3 = run(RefreshPolicy::recommended(), AppPreset::Blackscholes, 5_000);
    let shared_traffic = |r: &refrint::SimReport| {
        r.stats.get("coherence.invalidations_sent")
            + r.stats.get("coherence.owner_downgrades")
            + r.stats.get("coherence.owner_transfers")
    };
    assert!(
        shared_traffic(&class2) > shared_traffic(&class3),
        "class 2 must generate more coherence traffic than class 3 ({} vs {})",
        shared_traffic(&class2),
        shared_traffic(&class3)
    );
}
