//! End-to-end tests of coordinator mode: a `refrint-serve` instance that
//! splits sweeps into point-level `POST /run` jobs and fans them out over
//! the HTTP API to a pool of backend servers.
//!
//! The headline guarantee: a coordinator's `/sweep` response is
//! **byte-identical** to a local `SweepRunner` (i.e. to
//! `refrint-cli sweep --format json`) at any backend count — including
//! when a backend is killed mid-sweep and its points are reassigned —
//! and the persistent `--cache-dir` result cache replays those bytes
//! across a coordinator restart without touching a backend.

use std::path::PathBuf;
use std::time::Duration;

use refrint::prelude::*;
use refrint_serve::client;
use refrint_serve::coordinator::CoordinatorOptions;
use refrint_serve::{RunningServer, Server, ServerOptions};

/// Starts a plain (simulating) backend server on an ephemeral port.
fn start_backend() -> RunningServer {
    Server::bind("127.0.0.1:0", ServerOptions::default())
        .expect("bind an ephemeral backend port")
        .spawn()
        .expect("spawn the backend accept loop")
}

/// Starts a coordinator over the given backends.
fn start_coordinator(backends: &[&RunningServer], cache_dir: Option<PathBuf>) -> RunningServer {
    let options = ServerOptions {
        coordinator: Some(CoordinatorOptions {
            backends: backends.iter().map(|b| b.addr().to_string()).collect(),
            ..CoordinatorOptions::default()
        }),
        disk_cache_dir: cache_dir,
        ..ServerOptions::default()
    };
    Server::bind("127.0.0.1:0", options)
        .expect("bind an ephemeral coordinator port")
        .spawn()
        .expect("spawn the coordinator accept loop")
}

/// The sweep request used throughout: 2 workloads x (1 SRAM + 2
/// retentions x 3 policies) = 14 point jobs, small enough to stay fast.
const SWEEP_BODY: &str = "{\"apps\":[\"lu\",\"fft\"],\"refs\":400,\"cores\":2,\
                          \"policies\":[\"P.all\",\"R.valid\",\"R.WB(32,32)\"],\
                          \"retentions_us\":[50,100]}";

/// The bytes `refrint-cli sweep --format json` prints for [`SWEEP_BODY`]'s
/// configuration, computed with no server involved.
fn local_sweep_bytes() -> Vec<u8> {
    let mut cfg = ExperimentConfig::quick()
        .with_apps(vec![AppPreset::Lu, AppPreset::Fft])
        .with_refs_per_thread(400);
    cfg.cores = 2;
    cfg.policies = ["P.all", "R.valid", "R.WB(32,32)"]
        .iter()
        .map(|l| l.parse::<RefreshPolicy>().expect("valid label"))
        .collect();
    cfg.retentions_us = vec![50, 100];
    let results = SweepRunner::new(cfg)
        .sequential()
        .run()
        .expect("valid sweep");
    format!("{}\n", refrint::json::sweep(&results)).into_bytes()
}

#[test]
fn coordinator_sweeps_are_byte_identical_at_any_backend_count() {
    let expected = local_sweep_bytes();
    let backends: Vec<RunningServer> = (0..4).map(|_| start_backend()).collect();
    let views: Vec<&RunningServer> = backends.iter().collect();
    for count in [1usize, 2, 4] {
        let coordinator = start_coordinator(&views[..count], None);
        let response = client::post(coordinator.addr(), "/sweep", SWEEP_BODY.as_bytes())
            .expect("sweep request reaches the coordinator");
        assert_eq!(response.status, 200, "{}", response.body_str());
        assert_eq!(
            response.body, expected,
            "{count}-backend sweep must be byte-identical to a local SweepRunner"
        );
        coordinator.shutdown();
    }
    for backend in backends {
        backend.shutdown();
    }
}

#[test]
fn backend_killed_mid_sweep_is_reassigned_without_changing_the_bytes() {
    let expected = local_sweep_bytes();
    let survivors: Vec<RunningServer> = (0..2).map(|_| start_backend()).collect();
    let victim = start_backend();
    let views: Vec<&RunningServer> = survivors.iter().chain(std::iter::once(&victim)).collect();
    let coordinator = start_coordinator(&views, None);
    let addr = coordinator.addr();

    // Issue the sweep from a thread and kill one backend shortly after the
    // dispatch fan-out starts; its in-flight and remaining points must be
    // retried on the survivors.
    let request = std::thread::spawn(move || client::post(addr, "/sweep", SWEEP_BODY.as_bytes()));
    std::thread::sleep(Duration::from_millis(100));
    victim.shutdown();
    let response = request
        .join()
        .expect("request thread")
        .expect("sweep request completes despite the killed backend");

    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(
        response.body, expected,
        "losing a backend mid-sweep must not change the merged bytes"
    );
    coordinator.shutdown();
    for backend in survivors {
        backend.shutdown();
    }
}

#[test]
fn disk_cache_survives_a_coordinator_restart() {
    let cache_dir =
        std::env::temp_dir().join(format!("refrint-coordinator-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    let expected = local_sweep_bytes();

    // First life: one backend, a cold cache.
    let backend = start_backend();
    let coordinator = start_coordinator(&[&backend], Some(cache_dir.clone()));
    let first =
        client::post(coordinator.addr(), "/sweep", SWEEP_BODY.as_bytes()).expect("sweep request");
    assert_eq!(first.status, 200, "{}", first.body_str());
    assert_eq!(first.body, expected);
    assert_eq!(first.header("X-Refrint-Cache"), Some("miss"));
    coordinator.shutdown();
    backend.shutdown();

    // Second life: same cache directory, ZERO backends. The sweep must be
    // answered from disk — there is nothing to dispatch to.
    let revived = start_coordinator(&[], Some(cache_dir.clone()));
    let second = client::post(revived.addr(), "/sweep", SWEEP_BODY.as_bytes())
        .expect("sweep request after restart");
    assert_eq!(second.status, 200, "{}", second.body_str());
    assert_eq!(second.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(
        second.body, expected,
        "the disk cache must replay the exact pre-restart bytes"
    );

    // Individual points of the sweep are cached under the same canonical
    // keys `POST /run` uses, so they replay too.
    let run = client::post(
        revived.addr(),
        "/run",
        b"{\"app\":\"lu\",\"sram\":true,\"refs\":400,\"seed\":48879,\"cores\":2}",
    )
    .expect("run request after restart");
    assert_eq!(run.status, 200, "{}", run.body_str());
    assert_eq!(run.header("X-Refrint-Cache"), Some("hit"));

    revived.shutdown();
    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn backends_register_dynamically_over_http() {
    let coordinator = start_coordinator(&[], None);
    let addr = coordinator.addr();
    let run_body = b"{\"app\":\"lu\",\"refs\":400,\"cores\":2}";

    // No backends yet: dispatch fails with a typed 502.
    let refused = client::post(addr, "/run", run_body).expect("request reaches the coordinator");
    assert_eq!(refused.status, 502, "{}", refused.body_str());
    assert!(refused.body_str().contains("no_backends"));

    // Register a live backend, then the same request succeeds.
    let backend = start_backend();
    let registration = client::post(
        addr,
        "/backends",
        format!("{{\"addr\":\"{}\"}}", backend.addr()).as_bytes(),
    )
    .expect("registration request");
    assert_eq!(registration.status, 200, "{}", registration.body_str());
    let listing = client::get(addr, "/backends").expect("backend listing");
    assert!(listing.body_str().contains(&backend.addr().to_string()));

    let accepted = client::post(addr, "/run", run_body).expect("run request");
    assert_eq!(accepted.status, 200, "{}", accepted.body_str());

    // Unresolvable and unreachable registrations are typed errors.
    let bad = client::post(addr, "/backends", b"{\"addr\":\"no-such-host-3f9a:bad\"}")
        .expect("bad registration request");
    assert_eq!(bad.status, 422, "{}", bad.body_str());

    // A plain backend is not a coordinator: /backends is 404 there.
    let not_coordinator =
        client::get(backend.addr(), "/backends").expect("backend /backends request");
    assert_eq!(not_coordinator.status, 404);

    coordinator.shutdown();
    backend.shutdown();
}
