//! End-to-end tests of coordinator mode: a `refrint-serve` instance that
//! splits sweeps into point-level `POST /run` jobs and fans them out over
//! the HTTP API to a pool of backend servers.
//!
//! The headline guarantee: a coordinator's `/sweep` response is
//! **byte-identical** to a local `SweepRunner` (i.e. to
//! `refrint-cli sweep --format json`) at any backend count — including
//! when a backend is killed mid-sweep and its points are reassigned —
//! and the persistent `--cache-dir` result cache replays those bytes
//! across a coordinator restart without touching a backend.

use std::path::PathBuf;
use std::time::Duration;

use refrint::prelude::*;
use refrint_engine::json::{parse, Value};
use refrint_serve::client;
use refrint_serve::coordinator::CoordinatorOptions;
use refrint_serve::{RunningServer, Server, ServerOptions};

/// Starts a plain (simulating) backend server on an ephemeral port.
fn start_backend() -> RunningServer {
    Server::bind("127.0.0.1:0", ServerOptions::default())
        .expect("bind an ephemeral backend port")
        .spawn()
        .expect("spawn the backend accept loop")
}

/// Starts a coordinator over the given backends.
fn start_coordinator(backends: &[&RunningServer], cache_dir: Option<PathBuf>) -> RunningServer {
    let options = ServerOptions {
        coordinator: Some(CoordinatorOptions {
            backends: backends.iter().map(|b| b.addr().to_string()).collect(),
            ..CoordinatorOptions::default()
        }),
        disk_cache_dir: cache_dir,
        ..ServerOptions::default()
    };
    Server::bind("127.0.0.1:0", options)
        .expect("bind an ephemeral coordinator port")
        .spawn()
        .expect("spawn the coordinator accept loop")
}

/// The sweep request used throughout: 2 workloads x (1 SRAM + 2
/// retentions x 3 policies) = 14 point jobs, small enough to stay fast.
const SWEEP_BODY: &str = "{\"apps\":[\"lu\",\"fft\"],\"refs\":400,\"cores\":2,\
                          \"policies\":[\"P.all\",\"R.valid\",\"R.WB(32,32)\"],\
                          \"retentions_us\":[50,100]}";

/// The bytes `refrint-cli sweep --format json` prints for [`SWEEP_BODY`]'s
/// configuration, computed with no server involved.
fn local_sweep_bytes() -> Vec<u8> {
    let mut cfg = ExperimentConfig::quick()
        .with_apps(vec![AppPreset::Lu, AppPreset::Fft])
        .with_refs_per_thread(400);
    cfg.cores = 2;
    cfg.policies = ["P.all", "R.valid", "R.WB(32,32)"]
        .iter()
        .map(|l| l.parse::<RefreshPolicy>().expect("valid label"))
        .collect();
    cfg.retentions_us = vec![50, 100];
    let results = SweepRunner::new(cfg)
        .sequential()
        .run()
        .expect("valid sweep");
    format!("{}\n", refrint::json::sweep(&results)).into_bytes()
}

#[test]
fn coordinator_sweeps_are_byte_identical_at_any_backend_count() {
    let expected = local_sweep_bytes();
    let backends: Vec<RunningServer> = (0..4).map(|_| start_backend()).collect();
    let views: Vec<&RunningServer> = backends.iter().collect();
    for count in [1usize, 2, 4] {
        let coordinator = start_coordinator(&views[..count], None);
        let response = client::post(coordinator.addr(), "/sweep", SWEEP_BODY.as_bytes())
            .expect("sweep request reaches the coordinator");
        assert_eq!(response.status, 200, "{}", response.body_str());
        assert_eq!(
            response.body, expected,
            "{count}-backend sweep must be byte-identical to a local SweepRunner"
        );
        coordinator.shutdown();
    }
    for backend in backends {
        backend.shutdown();
    }
}

/// A sweep carrying the coherence-protocol and retention-profile axes
/// fans out, forwards the axis fields to the backends, and merges to the
/// exact bytes of a local axis sweep — the composed report keys
/// (`lu dragon`, `R.WB(32,32) dragon bimodal(25,60)`) survive the trip.
#[test]
fn coordinator_axis_sweeps_match_the_local_runner() {
    const AXIS_BODY: &str = "{\"apps\":[\"lu\"],\"refs\":400,\"cores\":2,\
                             \"policies\":[\"R.WB(32,32)\"],\"retentions_us\":[50],\
                             \"protocols\":[\"mesi\",\"dragon\"],\
                             \"retention_profiles\":[\"uniform\",\"bimodal(25,60)\"]}";
    let mut cfg = ExperimentConfig::quick()
        .with_apps(vec![AppPreset::Lu])
        .with_refs_per_thread(400)
        .with_protocols(vec![CoherenceProtocol::Mesi, CoherenceProtocol::Dragon])
        .with_retention_profiles(vec![
            RetentionProfile::Uniform,
            RetentionProfile::Bimodal {
                weak_pct: 25,
                weak_retention_pct: 60,
            },
        ]);
    cfg.cores = 2;
    cfg.policies = vec!["R.WB(32,32)".parse::<RefreshPolicy>().expect("valid label")];
    cfg.retentions_us = vec![50];
    let results = SweepRunner::new(cfg)
        .sequential()
        .run()
        .expect("valid axis sweep");
    let expected = format!("{}\n", refrint::json::sweep(&results)).into_bytes();

    let backends: Vec<RunningServer> = (0..2).map(|_| start_backend()).collect();
    let views: Vec<&RunningServer> = backends.iter().collect();
    let coordinator = start_coordinator(&views, None);
    let response = client::post(coordinator.addr(), "/sweep", AXIS_BODY.as_bytes())
        .expect("axis sweep reaches the coordinator");
    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(
        response.body, expected,
        "axis sweep must be byte-identical to a local SweepRunner"
    );
    let body = String::from_utf8_lossy(&response.body).into_owned();
    assert!(body.contains("R.WB(32,32) dragon bimodal(25,60)"), "{body}");
    coordinator.shutdown();
    for backend in backends {
        backend.shutdown();
    }
}

#[test]
fn backend_killed_mid_sweep_is_reassigned_without_changing_the_bytes() {
    let expected = local_sweep_bytes();
    let survivors: Vec<RunningServer> = (0..2).map(|_| start_backend()).collect();
    let victim = start_backend();
    let views: Vec<&RunningServer> = survivors.iter().chain(std::iter::once(&victim)).collect();
    let coordinator = start_coordinator(&views, None);
    let addr = coordinator.addr();

    // Issue the sweep from a thread and kill one backend shortly after the
    // dispatch fan-out starts; its in-flight and remaining points must be
    // retried on the survivors.
    let request = std::thread::spawn(move || client::post(addr, "/sweep", SWEEP_BODY.as_bytes()));
    std::thread::sleep(Duration::from_millis(100));
    victim.shutdown();
    let response = request
        .join()
        .expect("request thread")
        .expect("sweep request completes despite the killed backend");

    assert_eq!(response.status, 200, "{}", response.body_str());
    assert_eq!(
        response.body, expected,
        "losing a backend mid-sweep must not change the merged bytes"
    );
    coordinator.shutdown();
    for backend in survivors {
        backend.shutdown();
    }
}

#[test]
fn disk_cache_survives_a_coordinator_restart() {
    let cache_dir =
        std::env::temp_dir().join(format!("refrint-coordinator-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    let expected = local_sweep_bytes();

    // First life: one backend, a cold cache.
    let backend = start_backend();
    let coordinator = start_coordinator(&[&backend], Some(cache_dir.clone()));
    let first =
        client::post(coordinator.addr(), "/sweep", SWEEP_BODY.as_bytes()).expect("sweep request");
    assert_eq!(first.status, 200, "{}", first.body_str());
    assert_eq!(first.body, expected);
    assert_eq!(first.header("X-Refrint-Cache"), Some("miss"));
    coordinator.shutdown();
    backend.shutdown();

    // Second life: same cache directory, ZERO backends. The sweep must be
    // answered from disk — there is nothing to dispatch to.
    let revived = start_coordinator(&[], Some(cache_dir.clone()));
    let second = client::post(revived.addr(), "/sweep", SWEEP_BODY.as_bytes())
        .expect("sweep request after restart");
    assert_eq!(second.status, 200, "{}", second.body_str());
    assert_eq!(second.header("X-Refrint-Cache"), Some("hit"));
    assert_eq!(
        second.body, expected,
        "the disk cache must replay the exact pre-restart bytes"
    );

    // Individual points of the sweep are cached under the same canonical
    // keys `POST /run` uses, so they replay too.
    let run = client::post(
        revived.addr(),
        "/run",
        b"{\"app\":\"lu\",\"sram\":true,\"refs\":400,\"seed\":48879,\"cores\":2}",
    )
    .expect("run request after restart");
    assert_eq!(run.status, 200, "{}", run.body_str());
    assert_eq!(run.header("X-Refrint-Cache"), Some("hit"));

    revived.shutdown();
    std::fs::remove_dir_all(&cache_dir).ok();
}

/// A fixed inbound trace context so span ids — which derive
/// deterministically from the trace id — are comparable across runs.
const TRACEPARENT: &str = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";

/// Fetches `/jobs/<id>/trace`, retrying briefly while the trace is still
/// being attached (202).
fn fetch_trace(addr: std::net::SocketAddr, id: &str) -> Value {
    let path = format!("/jobs/{id}/trace");
    let mut response = client::get(addr, &path).expect("trace request");
    for _ in 0..100 {
        if response.status != 202 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
        response = client::get(addr, &path).expect("trace request");
    }
    assert_eq!(response.status, 200, "{}", response.body_str());
    parse(response.body_str().trim_end()).expect("trace document parses")
}

/// Collapses a fleet trace document to its deterministic skeleton: the
/// sorted `(spanId, parentSpanId, name)` tuples across **all** resource
/// groups. `backend/<addr>` dispatch spans are excluded — they carry the
/// backends' ephemeral ports, the one part of the tree that legitimately
/// varies between fleets.
fn canonical_spans(doc: &Value) -> Vec<(String, String, String)> {
    let groups = doc
        .get("resourceSpans")
        .and_then(Value::as_arr)
        .expect("trace document has resourceSpans");
    let mut tuples = Vec::new();
    for group in groups {
        let Some(spans) = group
            .get("scopeSpans")
            .and_then(Value::as_arr)
            .and_then(|ss| ss.first())
            .and_then(|s| s.get("spans"))
            .and_then(Value::as_arr)
        else {
            continue;
        };
        for span in spans {
            let field = |key: &str| {
                span.get(key)
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_owned()
            };
            let name = field("name");
            if name.starts_with("backend/") {
                continue;
            }
            tuples.push((field("spanId"), field("parentSpanId"), name));
        }
    }
    tuples.sort();
    tuples
}

#[test]
fn stitched_fleet_trace_is_deterministic_across_backend_counts() {
    // Fresh backends for every fleet size: reusing them would turn later
    // sweeps into backend cache hits, which legitimately produce different
    // (simulation-free) subtrees.
    let mut skeletons: Vec<Vec<(String, String, String)>> = Vec::new();
    for count in [1usize, 2, 4] {
        let backends: Vec<RunningServer> = (0..count).map(|_| start_backend()).collect();
        let views: Vec<&RunningServer> = backends.iter().collect();
        let coordinator = start_coordinator(&views, None);
        let addr = coordinator.addr();

        let response = client::request_with_headers(
            addr,
            "POST",
            "/sweep",
            Some(SWEEP_BODY.as_bytes()),
            &[("traceparent", TRACEPARENT)],
        )
        .expect("sweep request");
        assert_eq!(response.status, 200, "{}", response.body_str());
        let id = response
            .header("X-Refrint-Job")
            .expect("sweep response names its job")
            .to_owned();

        let doc = fetch_trace(addr, &id);
        let skeleton = canonical_spans(&doc);
        // Every point must be stitched: 14 anchors plus their backend
        // subtrees, far more spans than the coordinator's own stages.
        let anchors = skeleton
            .iter()
            .filter(|(_, _, name)| name.starts_with("point/"))
            .count();
        assert_eq!(anchors, 14, "one anchor span per sweep point");
        assert!(
            skeleton.len() > 14 * 2,
            "backend subtrees must be stitched under the anchors, got {} spans",
            skeleton.len()
        );
        skeletons.push(skeleton);

        coordinator.shutdown();
        for backend in backends {
            backend.shutdown();
        }
    }
    assert_eq!(
        skeletons[0], skeletons[1],
        "1-backend and 2-backend fleet traces must have identical skeletons"
    );
    assert_eq!(
        skeletons[1], skeletons[2],
        "2-backend and 4-backend fleet traces must have identical skeletons"
    );
}

#[test]
fn metrics_history_tracks_node_and_backend_series() {
    let backend = start_backend();
    let options = ServerOptions {
        coordinator: Some(CoordinatorOptions {
            backends: vec![backend.addr().to_string()],
            ..CoordinatorOptions::default()
        }),
        metrics_interval: Duration::from_millis(25),
        ..ServerOptions::default()
    };
    let coordinator = Server::bind("127.0.0.1:0", options)
        .expect("bind an ephemeral coordinator port")
        .spawn()
        .expect("spawn the coordinator accept loop");
    let addr = coordinator.addr();

    let run = client::post(addr, "/run", b"{\"app\":\"lu\",\"refs\":400,\"cores\":2}")
        .expect("run request");
    assert_eq!(run.status, 200, "{}", run.body_str());

    // The tick thread fills the local ring and scrapes the backend every
    // 25 ms; the backend's http_requests counter moves on every scrape, so
    // its windowed delta must become positive.
    let mut settled = false;
    for _ in 0..400 {
        let history = client::get(addr, "/metrics/history?window=60").expect("history request");
        assert_eq!(history.status, 200, "{}", history.body_str());
        let doc = parse(history.body_str().trim_end()).expect("history document parses");
        let node_windows = doc
            .get("node")
            .and_then(|n| n.get("windows"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        let node_has_series = doc
            .get("node")
            .and_then(|n| n.get("series"))
            .and_then(|s| s.get("jobs_completed"))
            .is_some();
        let backend_requests_delta = doc
            .get("backends")
            .and_then(|b| b.get(&backend.addr().to_string()))
            .and_then(|r| r.get("series"))
            .and_then(|s| s.get("http_requests"))
            .and_then(|s| s.get("delta"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if node_windows >= 2 && node_has_series && backend_requests_delta >= 1 {
            settled = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        settled,
        "the history rings never accumulated local windows and backend scrapes"
    );

    // A malformed window is a typed 400, not a crash or a default.
    let bad = client::get(addr, "/metrics/history?window=nope").expect("bad-window request");
    assert_eq!(bad.status, 400, "{}", bad.body_str());
    assert!(bad.body_str().contains("bad_query"));

    coordinator.shutdown();
    backend.shutdown();
}

/// Splits a chunked transfer-encoded body back into its payload bytes.
fn dechunk(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.windows(2).position(|w| w == b"\r\n") {
        let size_hex = std::str::from_utf8(&rest[..pos])
            .expect("chunk size line")
            .trim();
        let size = usize::from_str_radix(size_hex, 16).expect("hex chunk size");
        if size == 0 {
            break;
        }
        out.extend_from_slice(&rest[pos + 2..pos + 2 + size]);
        rest = &rest[pos + 2 + size + 2..];
    }
    out
}

#[test]
fn progress_stream_follows_an_async_sweep_to_done() {
    let backend = start_backend();
    let coordinator = start_coordinator(&[&backend], None);
    let addr = coordinator.addr();

    let async_body = SWEEP_BODY.replacen('{', "{\"mode\":\"async\",", 1);
    let accepted =
        client::post(addr, "/sweep", async_body.as_bytes()).expect("async sweep request");
    assert_eq!(accepted.status, 202, "{}", accepted.body_str());
    let id = accepted
        .header("X-Refrint-Job")
        .expect("async response names its job")
        .to_owned();

    // The stream has no Content-Length, so the client helper reads the
    // whole chunked body to EOF — i.e. until the job reaches a terminal
    // status and the server closes the stream.
    let response =
        client::get(addr, &format!("/jobs/{id}/progress")).expect("progress stream request");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("Transfer-Encoding"), Some("chunked"));

    let body = dechunk(&response.body);
    let text = String::from_utf8(body).expect("ndjson stream is UTF-8");
    let lines: Vec<Value> = text
        .lines()
        .map(|l| parse(l).expect("each progress line parses"))
        .collect();
    assert!(!lines.is_empty(), "the stream must carry at least one line");

    // `done` only ever grows, and the final snapshot is the finished job.
    let done_of = |doc: &Value| doc.get("done").and_then(Value::as_u64).unwrap_or(0);
    for pair in lines.windows(2) {
        assert!(done_of(&pair[1]) >= done_of(&pair[0]), "progress regressed");
    }
    let last = lines.last().expect("at least one line");
    assert_eq!(last.get("status").and_then(Value::as_str), Some("done"));
    assert_eq!(last.get("total").and_then(Value::as_u64), Some(14));
    assert_eq!(done_of(last), 14);
    assert!(
        last.get("refs").and_then(Value::as_u64).unwrap_or(0) > 0,
        "the terminal snapshot reports simulated refs"
    );
    let per_node = last
        .get("per_node")
        .and_then(|p| p.get(&backend.addr().to_string()))
        .and_then(Value::as_u64);
    assert_eq!(
        per_node,
        Some(14),
        "all 14 points ran on the single backend"
    );

    // Unknown jobs get a plain 404, not a stream.
    let missing = client::get(addr, "/jobs/zzz/progress").expect("missing-job request");
    assert_eq!(missing.status, 404);

    coordinator.shutdown();
    backend.shutdown();
}

#[test]
fn backends_register_dynamically_over_http() {
    let coordinator = start_coordinator(&[], None);
    let addr = coordinator.addr();
    let run_body = b"{\"app\":\"lu\",\"refs\":400,\"cores\":2}";

    // No backends yet: dispatch fails with a typed 502.
    let refused = client::post(addr, "/run", run_body).expect("request reaches the coordinator");
    assert_eq!(refused.status, 502, "{}", refused.body_str());
    assert!(refused.body_str().contains("no_backends"));

    // Register a live backend, then the same request succeeds.
    let backend = start_backend();
    let registration = client::post(
        addr,
        "/backends",
        format!("{{\"addr\":\"{}\"}}", backend.addr()).as_bytes(),
    )
    .expect("registration request");
    assert_eq!(registration.status, 200, "{}", registration.body_str());
    let listing = client::get(addr, "/backends").expect("backend listing");
    assert!(listing.body_str().contains(&backend.addr().to_string()));

    let accepted = client::post(addr, "/run", run_body).expect("run request");
    assert_eq!(accepted.status, 200, "{}", accepted.body_str());

    // Unresolvable and unreachable registrations are typed errors.
    let bad = client::post(addr, "/backends", b"{\"addr\":\"no-such-host-3f9a:bad\"}")
        .expect("bad registration request");
    assert_eq!(bad.status, 422, "{}", bad.body_str());

    // A plain backend is not a coordinator: /backends is 404 there.
    let not_coordinator =
        client::get(backend.addr(), "/backends").expect("backend /backends request");
    assert_eq!(not_coordinator.status, 404);

    coordinator.shutdown();
    backend.shutdown();
}
