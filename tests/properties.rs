//! Cross-crate property-based tests: the invariants the reproduction relies
//! on, exercised over randomised inputs.
//!
//! The workspace builds without network access, so instead of `proptest`
//! these tests drive a small deterministic case generator seeded from
//! [`DeterministicRng`]: every run explores the same few hundred random
//! cases, and a failing case prints its inputs so it can be minimised by
//! hand.

use refrint_edram::exact::settle_exact;
use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
use refrint_edram::schedule::{DecaySchedule, LineKind};
use refrint_energy::accounting::EnergyCounts;
use refrint_energy::breakdown::EnergyBreakdown;
use refrint_energy::tech::{CellTech, TechnologyParams};
use refrint_engine::rng::DeterministicRng;
use refrint_engine::time::Cycle;
use refrint_mem::addr::{Addr, LineAddr};
use refrint_mem::cache::Cache;
use refrint_mem::config::CacheGeometry;
use refrint_mem::line::MesiState;
use refrint_noc::routing::{hop_count, route};
use refrint_noc::topology::{NodeId, Torus};
use refrint_workloads::generator::ThreadStream;
use refrint_workloads::model::WorkloadModel;

const CASES: u64 = 96;

fn rng_for(test: u64, case: u64) -> DeterministicRng {
    DeterministicRng::from_seed(0xC0FFEE).fork(test).fork(case)
}

fn arbitrary_data_policy(rng: &mut DeterministicRng) -> DataPolicy {
    match rng.below(4) {
        0 => DataPolicy::All,
        1 => DataPolicy::Valid,
        2 => DataPolicy::Dirty,
        _ => DataPolicy::write_back(rng.below(64) as u32, rng.below(64) as u32),
    }
}

fn arbitrary_time_policy(rng: &mut DeterministicRng) -> TimePolicy {
    if rng.below(2) == 0 {
        TimePolicy::Periodic
    } else {
        TimePolicy::Refrint
    }
}

fn arbitrary_kind(rng: &mut DeterministicRng) -> LineKind {
    match rng.below(3) {
        0 => LineKind::Dirty,
        1 => LineKind::Clean,
        _ => LineKind::Invalid,
    }
}

/// The lazy decay-schedule algebra agrees with the exact
/// event-per-opportunity replay on arbitrary policies and intervals.
#[test]
fn lazy_settlement_matches_exact_replay() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let time = arbitrary_time_policy(&mut rng);
        let data = arbitrary_data_policy(&mut rng);
        let kind = arbitrary_kind(&mut rng);
        let retention = rng.range(500, 5_000);
        let margin = ((retention as f64) * rng.unit() * 0.9) as u64;
        let offset = rng.below(5_000);
        let schedule = DecaySchedule::new(
            RefreshPolicy::new(time, data),
            Cycle::new(retention),
            Cycle::new(margin),
            Cycle::new(offset),
        );
        let touch = Cycle::new(rng.below(20_000));
        let until = touch + Cycle::new(rng.below(300_000));
        let lazy = schedule.settle(kind, touch, until);
        let exact = settle_exact(&schedule, kind, touch, until);
        assert_eq!(
            lazy, exact,
            "case {case}: {time:?} {data:?} {kind:?} retention={retention} \
             margin={margin} offset={offset} touch={touch} until={until}"
        );
    }
}

/// Settlement is monotone in the horizon: extending the interval never
/// reduces the number of refreshes, and never un-invalidates a line.
#[test]
fn settlement_is_monotone_in_time() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let data = arbitrary_data_policy(&mut rng);
        let kind = arbitrary_kind(&mut rng);
        let (h1, h2) = (rng.below(100_000), rng.below(100_000));
        let schedule = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, data),
            Cycle::new(1_000),
            Cycle::new(100),
            Cycle::ZERO,
        );
        let (short, long) = (h1.min(h2), h1.max(h2));
        let a = schedule.settle(kind, Cycle::ZERO, Cycle::new(short));
        let b = schedule.settle(kind, Cycle::ZERO, Cycle::new(long));
        assert!(
            b.refreshes >= a.refreshes,
            "case {case}: {data:?} {kind:?} {short}..{long}"
        );
        if a.invalidated_at.is_some() {
            assert_eq!(a.invalidated_at, b.invalidated_at, "case {case}");
        }
        if a.writeback_at.is_some() {
            assert_eq!(a.writeback_at, b.writeback_at, "case {case}");
        }
    }
}

/// Larger WB budgets never decrease the number of refreshes an idle line
/// receives, and never make it die earlier.
#[test]
fn wb_budgets_are_monotone() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let (n1, m1) = (rng.below(40) as u32, rng.below(40) as u32);
        let (extra_n, extra_m) = (rng.below(40) as u32, rng.below(40) as u32);
        let kind = if rng.below(2) == 0 {
            LineKind::Dirty
        } else {
            LineKind::Clean
        };
        let small = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(n1, m1)),
            Cycle::new(1_000),
            Cycle::new(100),
            Cycle::ZERO,
        );
        let large = DecaySchedule::new(
            RefreshPolicy::new(
                TimePolicy::Refrint,
                DataPolicy::write_back(n1 + extra_n, m1 + extra_m),
            ),
            Cycle::new(1_000),
            Cycle::new(100),
            Cycle::ZERO,
        );
        let horizon = Cycle::new(1_000_000);
        let a = small.settle(kind, Cycle::ZERO, horizon);
        let b = large.settle(kind, Cycle::ZERO, horizon);
        assert!(
            b.refreshes >= a.refreshes,
            "case {case}: WB({n1},{m1})+({extra_n},{extra_m})"
        );
        match (a.invalidated_at, b.invalidated_at) {
            (Some(ta), Some(tb)) => assert!(tb >= ta, "case {case}"),
            (None, Some(_)) => panic!("case {case}: larger budget died while smaller survived"),
            _ => {}
        }
    }
}

/// Addresses round-trip through line/set/tag decomposition.
#[test]
fn address_decomposition_round_trips() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let raw = rng.next_u64();
        let sets_log2 = rng.range(1, 16) as u32;
        let addr = Addr::new(raw >> 6 << 6);
        let line = addr.line(64);
        let sets = 1u64 << sets_log2;
        assert_eq!(
            line.tag(sets) * sets + line.set_index(sets),
            line.raw(),
            "case {case}"
        );
        assert_eq!(line.base_addr(64).line(64), line, "case {case}");
    }
}

/// A cache never exceeds its capacity, and flushing returns exactly the
/// dirty lines.
#[test]
fn cache_occupancy_and_flush() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let geometry = CacheGeometry::new(16 * 1024, 4, 64).unwrap();
        let mut cache = Cache::new("prop", geometry);
        let ops = rng.range(1, 300);
        for i in 0..ops {
            let line = LineAddr::new(rng.below(4096));
            let write = rng.below(2) == 1;
            let now = Cycle::new(i);
            if cache.lookup(line, now).is_none() {
                cache.fill(line, MesiState::Exclusive, now);
            }
            if write {
                cache.write_hit(line, now);
            }
        }
        assert!(cache.occupancy() <= geometry.num_lines(), "case {case}");
        let dirty_before = cache.dirty_count();
        let flushed = cache.flush();
        assert_eq!(flushed.len() as u64, dirty_before, "case {case}");
        assert_eq!(cache.occupancy(), 0, "case {case}");
    }
}

/// Torus routing is symmetric, bounded by the network diameter, and the
/// route length always equals the hop count.
#[test]
fn torus_routing_properties() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let w = rng.range(2, 6) as usize;
        let h = rng.range(2, 6) as usize;
        let torus = Torus::new(w, h).unwrap();
        let a = NodeId::new(rng.below(36) as usize % (w * h));
        let b = NodeId::new(rng.below(36) as usize % (w * h));
        let d = hop_count(&torus, a, b);
        assert_eq!(d, hop_count(&torus, b, a), "case {case}: {w}x{h}");
        assert!(d as usize <= w / 2 + h / 2, "case {case}");
        let path = route(&torus, a, b).unwrap();
        assert_eq!(path.len() as u32, d + 1, "case {case}");
    }
}

/// Energy breakdowns are physical (finite, non-negative) and additive in
/// the counts.
#[test]
fn energy_is_physical_and_additive() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let params = TechnologyParams::paper_default();
        let counts = EnergyCounts {
            cycles: rng.range(1, 10_000_000),
            l3_accesses: rng.below(1_000_000),
            dram_reads: rng.below(100_000),
            dram_writes: rng.below(100_000),
            l3_refreshes: rng.below(10_000_000),
            ..EnergyCounts::default()
        };
        for cells in [CellTech::Sram, CellTech::Edram] {
            let b = EnergyBreakdown::compute(&params, cells, &counts);
            assert!(b.is_physical(), "case {case}: {cells}");
            let doubled_counts = counts + counts;
            let d = EnergyBreakdown::compute(&params, cells, &doubled_counts);
            // Dynamic, refresh, DRAM and leakage all scale linearly.
            assert!(
                (d.memory_total() - 2.0 * b.memory_total()).abs() < 1e-9,
                "case {case}: {cells}"
            );
        }
    }
}

/// Workload streams stay within their declared footprint and are
/// deterministic in the seed.
#[test]
fn workload_streams_are_bounded_and_deterministic() {
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let seed = rng.next_u64();
        let model = WorkloadModel {
            name: "prop".into(),
            threads: 4,
            refs_per_thread: 400,
            private_bytes_per_thread: 128 * 1024,
            shared_bytes: 256 * 1024,
            hot_bytes_per_thread: 8 * 1024,
            hot_fraction: rng.unit(),
            shared_fraction: rng.unit(),
            write_fraction: rng.unit(),
            mean_gap_cycles: 3,
            stride_run: 4,
        };
        let footprint = model.footprint_bytes();
        let a: Vec<_> = ThreadStream::new(&model, 1, seed).collect();
        let b: Vec<_> = ThreadStream::new(&model, 1, seed).collect();
        assert_eq!(a, b, "case {case}");
        assert_eq!(a.len(), 400, "case {case}");
        assert!(a.iter().all(|r| r.addr.raw() < footprint), "case {case}");
    }
}

/// The per-bank retention sampler is a pure function of (profile, seed,
/// bank index): factors are deterministic, independent of how many banks
/// are sampled alongside (per-bank forked RNG), and always inside the
/// clamp. This is the property that makes sweep results identical across
/// worker counts — every worker derives the same per-bank assignment from
/// the config seed alone.
#[test]
fn retention_factors_are_seeded_per_bank_functions() {
    use refrint_edram::variation::RetentionProfile;
    for case in 0..CASES {
        let mut rng = rng_for(9, case);
        let seed = rng.next_u64();
        let profile = match rng.below(3) {
            0 => RetentionProfile::Uniform,
            1 => RetentionProfile::Normal {
                sigma_pct: 1 + rng.below(30) as u8,
            },
            _ => RetentionProfile::Bimodal {
                weak_pct: 1 + rng.below(99) as u8,
                weak_retention_pct: 30 + rng.below(70) as u8,
            },
        };
        let banks = 1 + rng.below(64) as usize;
        let a = profile.factors_per_mille(seed, banks);
        let b = profile.factors_per_mille(seed, banks);
        assert_eq!(a, b, "case {case}: {profile:?} is not deterministic");
        assert_eq!(a.len(), banks, "case {case}");
        assert!(
            a.iter().all(|&f| (50..=4000).contains(&f)),
            "case {case}: factor outside clamp in {a:?}"
        );
        // Bank b's factor must not depend on the total bank count.
        let wider = profile.factors_per_mille(seed, banks + 17);
        assert_eq!(&wider[..banks], &a[..], "case {case}: {profile:?}");
        if profile == RetentionProfile::Uniform {
            assert!(a.iter().all(|&f| f == 1000), "case {case}");
        }
    }
}

/// A spelled-out uniform profile is the byte-for-byte default: the
/// per-bank retention assignment (and therefore every downstream report)
/// is identical to a config that never mentions a profile.
#[test]
fn spelled_out_uniform_profile_is_the_default_bit_for_bit() {
    use refrint::config::SystemConfig;
    use refrint::RetentionProfile;
    for case in 0..CASES {
        let mut rng = rng_for(10, case);
        let seed = rng.next_u64();
        let plain = SystemConfig::edram_recommended().with_seed(seed);
        let spelled = plain
            .clone()
            .with_retention_profile(RetentionProfile::Uniform);
        assert_eq!(
            format!("{:?}", plain.bank_retentions()),
            format!("{:?}", spelled.bank_retentions()),
            "case {case}"
        );
        assert_eq!(plain.label(), spelled.label(), "case {case}");
    }
}
