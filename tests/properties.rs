//! Cross-crate property-based tests (proptest): the invariants the
//! reproduction relies on, exercised over randomised inputs.

use proptest::prelude::*;

use refrint_edram::exact::settle_exact;
use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
use refrint_edram::schedule::{DecaySchedule, LineKind};
use refrint_energy::accounting::EnergyCounts;
use refrint_energy::breakdown::EnergyBreakdown;
use refrint_energy::tech::{CellTech, TechnologyParams};
use refrint_engine::time::Cycle;
use refrint_mem::addr::{Addr, LineAddr};
use refrint_mem::cache::Cache;
use refrint_mem::config::CacheGeometry;
use refrint_mem::line::MesiState;
use refrint_noc::routing::{hop_count, route};
use refrint_noc::topology::{NodeId, Torus};
use refrint_workloads::generator::ThreadStream;
use refrint_workloads::model::WorkloadModel;

fn arbitrary_data_policy() -> impl Strategy<Value = DataPolicy> {
    prop_oneof![
        Just(DataPolicy::All),
        Just(DataPolicy::Valid),
        Just(DataPolicy::Dirty),
        (0u32..64, 0u32..64).prop_map(|(n, m)| DataPolicy::write_back(n, m)),
    ]
}

fn arbitrary_time_policy() -> impl Strategy<Value = TimePolicy> {
    prop_oneof![Just(TimePolicy::Periodic), Just(TimePolicy::Refrint)]
}

fn arbitrary_kind() -> impl Strategy<Value = LineKind> {
    prop_oneof![
        Just(LineKind::Dirty),
        Just(LineKind::Clean),
        Just(LineKind::Invalid)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lazy decay-schedule algebra agrees with the exact
    /// event-per-opportunity replay on arbitrary policies and intervals.
    #[test]
    fn lazy_settlement_matches_exact_replay(
        time in arbitrary_time_policy(),
        data in arbitrary_data_policy(),
        kind in arbitrary_kind(),
        retention in 500u64..5_000,
        margin_frac in 0.0f64..0.9,
        offset in 0u64..5_000,
        touch in 0u64..20_000,
        horizon in 0u64..300_000,
    ) {
        let margin = ((retention as f64) * margin_frac) as u64;
        let schedule = DecaySchedule::new(
            RefreshPolicy::new(time, data),
            Cycle::new(retention),
            Cycle::new(margin),
            Cycle::new(offset),
        );
        let touch = Cycle::new(touch);
        let until = touch + Cycle::new(horizon);
        let lazy = schedule.settle(kind, touch, until);
        let exact = settle_exact(&schedule, kind, touch, until);
        prop_assert_eq!(lazy, exact);
    }

    /// Settlement is monotone in the horizon: extending the interval never
    /// reduces the number of refreshes, and never un-invalidates a line.
    #[test]
    fn settlement_is_monotone_in_time(
        data in arbitrary_data_policy(),
        kind in arbitrary_kind(),
        h1 in 0u64..100_000,
        h2 in 0u64..100_000,
    ) {
        let schedule = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, data),
            Cycle::new(1_000),
            Cycle::new(100),
            Cycle::ZERO,
        );
        let (short, long) = (h1.min(h2), h1.max(h2));
        let a = schedule.settle(kind, Cycle::ZERO, Cycle::new(short));
        let b = schedule.settle(kind, Cycle::ZERO, Cycle::new(long));
        prop_assert!(b.refreshes >= a.refreshes);
        if a.invalidated_at.is_some() {
            prop_assert_eq!(a.invalidated_at, b.invalidated_at);
        }
        if a.writeback_at.is_some() {
            prop_assert_eq!(a.writeback_at, b.writeback_at);
        }
    }

    /// Larger WB budgets never decrease the number of refreshes an idle line
    /// receives, and never make it die earlier.
    #[test]
    fn wb_budgets_are_monotone(
        n1 in 0u32..40, m1 in 0u32..40,
        extra_n in 0u32..40, extra_m in 0u32..40,
        kind in prop_oneof![Just(LineKind::Dirty), Just(LineKind::Clean)],
    ) {
        let small = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(n1, m1)),
            Cycle::new(1_000), Cycle::new(100), Cycle::ZERO,
        );
        let large = DecaySchedule::new(
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(n1 + extra_n, m1 + extra_m)),
            Cycle::new(1_000), Cycle::new(100), Cycle::ZERO,
        );
        let horizon = Cycle::new(1_000_000);
        let a = small.settle(kind, Cycle::ZERO, horizon);
        let b = large.settle(kind, Cycle::ZERO, horizon);
        prop_assert!(b.refreshes >= a.refreshes);
        match (a.invalidated_at, b.invalidated_at) {
            (Some(ta), Some(tb)) => prop_assert!(tb >= ta),
            (None, Some(_)) => prop_assert!(false, "larger budget died while smaller survived"),
            _ => {}
        }
    }

    /// Addresses round-trip through line/set/tag decomposition.
    #[test]
    fn address_decomposition_round_trips(raw in any::<u64>(), sets_log2 in 1u32..16) {
        let addr = Addr::new(raw >> 6 << 6);
        let line = addr.line(64);
        let sets = 1u64 << sets_log2;
        prop_assert_eq!(line.tag(sets) * sets + line.set_index(sets), line.raw());
        prop_assert_eq!(line.base_addr(64).line(64), line);
    }

    /// A cache never exceeds its capacity, and flushing returns exactly the
    /// dirty lines.
    #[test]
    fn cache_occupancy_and_flush(ops in proptest::collection::vec((0u64..4096, any::<bool>()), 1..300)) {
        let geometry = CacheGeometry::new(16 * 1024, 4, 64).unwrap();
        let mut cache = Cache::new("prop", geometry);
        for (i, (line, write)) in ops.iter().enumerate() {
            let line = LineAddr::new(*line);
            let now = Cycle::new(i as u64);
            if cache.lookup(line, now).is_none() {
                cache.fill(line, MesiState::Exclusive, now);
            }
            if *write {
                cache.write_hit(line, now);
            }
        }
        prop_assert!(cache.occupancy() <= geometry.num_lines());
        let dirty_before = cache.dirty_count();
        let flushed = cache.flush();
        prop_assert_eq!(flushed.len() as u64, dirty_before);
        prop_assert_eq!(cache.occupancy(), 0);
    }

    /// Torus routing is symmetric, bounded by the network diameter, and the
    /// route length always equals the hop count.
    #[test]
    fn torus_routing_properties(w in 2usize..6, h in 2usize..6, a in 0usize..36, b in 0usize..36) {
        let torus = Torus::new(w, h).unwrap();
        let a = NodeId::new(a % (w * h));
        let b = NodeId::new(b % (w * h));
        let d = hop_count(&torus, a, b);
        prop_assert_eq!(d, hop_count(&torus, b, a));
        prop_assert!(d as usize <= w / 2 + h / 2);
        let path = route(&torus, a, b).unwrap();
        prop_assert_eq!(path.len() as u32, d + 1);
    }

    /// Energy breakdowns are physical (finite, non-negative) and additive in
    /// the counts.
    #[test]
    fn energy_is_physical_and_additive(
        cycles in 1u64..10_000_000,
        l3 in 0u64..1_000_000,
        dram_r in 0u64..100_000,
        dram_w in 0u64..100_000,
        refreshes in 0u64..10_000_000,
    ) {
        let params = TechnologyParams::paper_default();
        let counts = EnergyCounts {
            cycles,
            l3_accesses: l3,
            dram_reads: dram_r,
            dram_writes: dram_w,
            l3_refreshes: refreshes,
            ..EnergyCounts::default()
        };
        for cells in [CellTech::Sram, CellTech::Edram] {
            let b = EnergyBreakdown::compute(&params, cells, &counts);
            prop_assert!(b.is_physical());
            let doubled_counts = counts + counts;
            let d = EnergyBreakdown::compute(&params, cells, &doubled_counts);
            // Dynamic, refresh, DRAM and leakage all scale linearly.
            prop_assert!((d.memory_total() - 2.0 * b.memory_total()).abs() < 1e-9);
        }
    }

    /// Workload streams stay within their declared footprint and are
    /// deterministic in the seed.
    #[test]
    fn workload_streams_are_bounded_and_deterministic(
        seed in any::<u64>(),
        hot in 0.0f64..1.0,
        shared in 0.0f64..1.0,
        writes in 0.0f64..1.0,
    ) {
        let model = WorkloadModel {
            name: "prop".into(),
            threads: 4,
            refs_per_thread: 400,
            private_bytes_per_thread: 128 * 1024,
            shared_bytes: 256 * 1024,
            hot_bytes_per_thread: 8 * 1024,
            hot_fraction: hot,
            shared_fraction: shared,
            write_fraction: writes,
            mean_gap_cycles: 3,
            stride_run: 4,
        };
        let footprint = model.footprint_bytes();
        let a: Vec<_> = ThreadStream::new(&model, 1, seed).collect();
        let b: Vec<_> = ThreadStream::new(&model, 1, seed).collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 400);
        prop_assert!(a.iter().all(|r| r.addr.raw() < footprint));
    }
}
