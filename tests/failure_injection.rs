//! Failure injection and edge cases: misconfigurations must be rejected with
//! useful errors, and degenerate-but-legal configurations must still run.

use refrint::prelude::*;
use refrint_edram::retention::RetentionConfig;
use refrint_engine::time::{Freq, SimDuration};
use refrint_workloads::model::WorkloadModel;

#[test]
fn retention_shorter_than_the_sentry_margin_is_rejected() {
    // A 10 us retention leaves no room for the 16K-cycle L3 sentry margin.
    let retention = RetentionConfig::new(SimDuration::from_micros(10), Freq::gigahertz(1)).unwrap();
    let config = SystemConfig::edram_recommended().with_retention(retention);
    let err = CmpSystem::new(config).expect_err("must be rejected");
    let message = err.to_string();
    assert!(
        message.contains("retention"),
        "unexpected message: {message}"
    );
}

#[test]
fn mismatched_bank_and_core_counts_are_rejected() {
    let mut config = SystemConfig::edram_recommended();
    config.l3_banks = 8;
    assert!(CmpSystem::new(config).is_err());
}

#[test]
fn zero_cores_is_rejected() {
    let mut config = SystemConfig::sram_baseline();
    config.cores = 0;
    config.l3_banks = 0;
    assert!(CmpSystem::new(config).is_err());
}

#[test]
fn sram_configuration_accepts_any_retention() {
    // For SRAM the retention/sentry constraint does not apply.
    let retention = RetentionConfig::new(SimDuration::from_micros(10), Freq::gigahertz(1)).unwrap();
    let config = SystemConfig::sram_baseline()
        .with_retention(retention)
        .with_scale(500);
    let mut system = CmpSystem::new(config).expect("SRAM ignores retention");
    let report = system.run_app(AppPreset::Lu);
    assert_eq!(report.counts.total_refreshes(), 0);
}

#[test]
fn invalid_workload_models_are_rejected() {
    let mut model = AppPreset::Lu.model();
    model.write_fraction = 2.0;
    assert!(model.validate().is_err());
    model.write_fraction = 0.3;
    model.hot_bytes_per_thread = 0;
    assert!(model.validate().is_err());
}

#[test]
fn unknown_application_and_policy_labels_fail_to_parse() {
    assert!("quake3".parse::<AppPreset>().is_err());
    assert!("Z.WB(1,2)".parse::<RefreshPolicy>().is_err());
    assert!("R.WB(1;2)".parse::<RefreshPolicy>().is_err());
    // Sensible labels keep parsing.
    assert!("R.WB(32,32)".parse::<RefreshPolicy>().is_ok());
    assert!("fluidanimate".parse::<AppPreset>().is_ok());
}

#[test]
fn single_reference_per_thread_runs_to_completion() {
    let config = SystemConfig::edram_recommended().with_scale(1);
    let mut system = CmpSystem::new(config).unwrap();
    let report = system.run_app(AppPreset::Barnes);
    assert_eq!(report.counts.dl1_accesses, 16);
    assert!(report.execution_cycles > 0);
    assert!(report.breakdown.is_physical());
}

#[test]
fn tiny_two_core_chip_still_maintains_inclusion_and_coherence() {
    let config = SystemConfig::edram_recommended()
        .with_cores(2)
        .with_scale(4_000)
        .with_seed(5);
    let mut system = CmpSystem::new(config).unwrap();
    let report = system.run_app(AppPreset::Radix);
    assert_eq!(report.counts.dl1_accesses, 2 * 4_000);
    // The directory saw traffic from both tiles and nothing went wrong.
    assert!(report.stats.get("coherence.reads") + report.stats.get("coherence.writes") > 0);
}

#[test]
fn workload_with_extreme_write_fraction_runs() {
    let model = WorkloadModel {
        name: "write-storm".into(),
        threads: 16,
        refs_per_thread: 2_000,
        private_bytes_per_thread: 256 * 1024,
        shared_bytes: 2 * 1024 * 1024,
        hot_bytes_per_thread: 8 * 1024,
        hot_fraction: 0.3,
        shared_fraction: 0.6,
        write_fraction: 1.0,
        mean_gap_cycles: 2,
        stride_run: 4,
    };
    let mut system = CmpSystem::new(SystemConfig::edram_recommended()).unwrap();
    let report = system.run_model(&model);
    assert!(
        report.counts.dram_writes > 0,
        "an all-store workload must write back data"
    );
    assert!(report.breakdown.is_physical());
}

#[test]
fn read_only_workload_produces_no_dirty_writebacks_on_sram() {
    let model = WorkloadModel {
        name: "read-only".into(),
        threads: 16,
        refs_per_thread: 2_000,
        private_bytes_per_thread: 256 * 1024,
        shared_bytes: 2 * 1024 * 1024,
        hot_bytes_per_thread: 8 * 1024,
        hot_fraction: 0.5,
        shared_fraction: 0.4,
        write_fraction: 0.0,
        mean_gap_cycles: 2,
        stride_run: 4,
    };
    let mut system = CmpSystem::new(SystemConfig::sram_baseline()).unwrap();
    let report = system.run_model(&model);
    assert_eq!(
        report.counts.dram_writes, 0,
        "nothing is ever dirty in a read-only run"
    );
}
