//! Integration tests for the experiment sweep and figure generators: every
//! paper artefact must be producible end to end on a reduced sweep, with
//! well-formed, internally consistent output.

use refrint::experiment::{run_sweep, ExperimentConfig};
use refrint::figures::{
    figure_6_1, figure_6_2, figure_6_3, figure_6_4, headline_summary, table_6_1, AppSelection,
};
use refrint::prelude::*;

fn reduced_sweep() -> refrint::SweepResults {
    let cfg = ExperimentConfig {
        apps: vec![AppPreset::Fft, AppPreset::Lu, AppPreset::Blackscholes],
        retentions_us: vec![50, 200],
        policies: vec![
            RefreshPolicy::edram_baseline(),
            RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Valid),
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Dirty),
            RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(4, 4)),
            RefreshPolicy::recommended(),
        ],
        refs_per_thread: 2_500,
        seed: 9,
        cores: 8,
        ..ExperimentConfig::default()
    };
    run_sweep(&cfg).expect("reduced sweep must run")
}

#[test]
fn sweep_produces_every_report() {
    let results = reduced_sweep();
    assert_eq!(results.sram.len(), 3);
    assert_eq!(results.edram.len(), 3 * 2 * 6);
    for report in results.edram.values() {
        assert!(report.execution_cycles > 0);
        assert!(report.breakdown.is_physical());
    }
}

#[test]
fn table_6_1_bins_match_the_paper() {
    let results = reduced_sweep();
    let table = table_6_1(&results);
    assert_eq!(table.len(), 3);
    for row in &table {
        let app: AppPreset = row.name.parse().unwrap();
        assert_eq!(row.class, app.paper_class(), "{}", row.name);
    }
}

#[test]
fn figure_6_1_and_6_2_are_consistent_stacks() {
    let results = reduced_sweep();
    let by_level = figure_6_1(&results);
    let by_component = figure_6_2(&results, AppSelection::All);
    assert_eq!(by_level.len(), 2, "one series per retention time");
    assert_eq!(by_level[0].bars.len(), 6, "one bar per policy");
    for (level_series, comp_series) in by_level.iter().zip(by_component.iter()) {
        for (a, b) in level_series.bars.iter().zip(comp_series.bars.iter()) {
            assert_eq!(a.label, b.label);
            assert!((a.total() - b.total()).abs() < 1e-9, "{}", a.label);
            assert!(a.components.iter().all(|(_, v)| *v >= 0.0));
            assert!(
                a.total() > 0.0 && a.total() < 3.0,
                "{}: {}",
                a.label,
                a.total()
            );
        }
    }
    // CSV rendering works for every series.
    for series in by_level {
        let csv = series.to_csv();
        assert!(csv.lines().count() >= 2);
        assert!(csv.contains("L3"));
    }
}

#[test]
fn figure_6_3_and_6_4_cover_class1_and_all() {
    let results = reduced_sweep();
    for selection in [AppSelection::Class(AppClass::Class1), AppSelection::All] {
        let energy = figure_6_3(&results, selection);
        let time = figure_6_4(&results, selection);
        assert_eq!(energy.len(), 2);
        assert_eq!(time.len(), 2);
        for series in energy.iter().chain(time.iter()) {
            assert_eq!(series.bars.len(), 6);
            for bar in &series.bars {
                assert!(bar.total() > 0.0, "{}", bar.label);
            }
        }
    }
}

#[test]
fn headline_orderings_hold_on_the_reduced_sweep() {
    let results = reduced_sweep();
    let h = headline_summary(&results, 50).expect("50 us is part of the sweep");
    assert!(
        h.baseline_memory_energy < 1.05,
        "naive eDRAM should not exceed SRAM by much"
    );
    assert!(h.refrint_memory_energy < h.baseline_memory_energy);
    assert!(h.refrint_system_energy < h.baseline_system_energy);
    assert!(h.baseline_slowdown > 1.0);
    assert!(h.refrint_slowdown < h.baseline_slowdown);

    // The refresh component must shrink when retention grows (Figure 6.2's
    // main retention trend), for the naive baseline where it is largest.
    let refresh_at = |retention: u64| {
        let series = figure_6_2(&results, AppSelection::All);
        let idx = results
            .retentions_us
            .iter()
            .position(|&r| r == retention)
            .unwrap();
        let bar = series[idx]
            .bars
            .iter()
            .find(|b| b.label == "P.all")
            .unwrap()
            .clone();
        bar.components
            .iter()
            .find(|(n, _)| n == "Refresh")
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert!(
        refresh_at(200) < refresh_at(50),
        "refresh fraction must shrink with retention ({} vs {})",
        refresh_at(200),
        refresh_at(50)
    );
}

#[test]
fn quick_experiment_config_is_consistent() {
    let quick = ExperimentConfig::quick();
    assert!(quick.total_runs() < ExperimentConfig::paper_full().total_runs());
    assert!(!quick.apps.is_empty());
    assert_eq!(quick.policies.len(), 14);
}
