//! The oracle's chip-multiprocessor model.
//!
//! [`OracleSystem`] is a from-scratch re-statement of the simulated
//! machine's *semantics* — the same chip (private write-through DL1 and
//! write-back L2 per tile, shared banked L3 with a directory coherence
//! protocol — invalidation-based MESI or update-based Dragon — over a
//! torus, DRAM behind the L3), the same driver rule (the core with
//! the smallest local time goes next), the same refresh policies — built
//! exclusively from the naive components in this crate. It consumes a
//! [`SystemConfig`] and per-thread reference streams and produces a
//! [`SimReport`] that must agree with the optimized simulator field for
//! field; any disagreement is a bug in one of the two.
//!
//! The only shared implementation is deliberate and documented: the
//! workload *inputs* (`refrint-workloads` streams / `refrint-trace`
//! cursors), the configuration and report *types*, and the pure
//! counts → joules conversion ([`EnergyBreakdown::compute_for_chip`]) —
//! so diffing the counts covers the accounting.

use std::fmt;

use refrint::config::SystemConfig;
use refrint::report::SimReport;
use refrint_edram::schedule::LineKind;
use refrint_energy::accounting::EnergyCounts;
use refrint_energy::breakdown::EnergyBreakdown;
use refrint_engine::stats::StatRegistry;
use refrint_engine::time::Cycle;
use refrint_mem::line::MesiState;
use refrint_mem::replacement::ReplacementKind;
use refrint_workloads::generator::ThreadStream;
use refrint_workloads::model::WorkloadModel;
use refrint_workloads::trace::MemRef;

use crate::cache::{OracleCache, OracleLine};
use crate::coherence::{OracleDirectory, OracleRequest};
use crate::dram::OracleDram;
use crate::refresh::OracleRefresh;

/// Why the oracle could not model a configuration or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The configuration fails validation (same rules as the simulator).
    InvalidConfig(String),
    /// The configuration is valid but outside the oracle's deliberately
    /// small modelling scope (custom policy models, non-LRU replacement).
    Unsupported(String),
    /// A trace-driven run failed to decode its input.
    Trace(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            OracleError::Unsupported(reason) => write!(f, "outside the oracle's scope: {reason}"),
            OracleError::Trace(reason) => write!(f, "trace error: {reason}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// A deliberately wrong semantic the oracle can adopt, used to prove the
/// conformance harness catches (and shrinks) real divergences. Production
/// oracles are built without one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Off-by-one in decay settlement: clean lines get one extra refresh
    /// before the policy invalidates them.
    DecayCleanBudgetOffByOne,
    /// Dragon update broadcasts are mis-modelled as MESI-style
    /// invalidations: remote replicas are dropped instead of being
    /// refreshed in place. Invisible under MESI (which never broadcasts
    /// updates), divergent under Dragon.
    DragonUpdateInvalidates,
}

/// A pending eager L3 policy-invalidation event.
#[derive(Debug, Clone, Copy)]
struct PendingInvalidation {
    at: Cycle,
    seq: u64,
    bank: usize,
    line: u64,
    /// The L3 line's touch time the prediction was made from; stale if the
    /// line has been touched since.
    touch: Cycle,
}

/// One tile: private DL1 + L2 and their refresh machinery.
#[derive(Debug, Clone)]
struct Tile {
    dl1: OracleCache,
    l2: OracleCache,
    dl1_refresh: OracleRefresh,
    l2_refresh: OracleRefresh,
}

/// One shared-L3 bank.
#[derive(Debug, Clone)]
struct Bank {
    cache: OracleCache,
    refresh: OracleRefresh,
}

/// Naive link timing: head-flit pipeline latency plus serialisation.
#[derive(Debug, Clone, Copy)]
struct Link {
    per_hop: Cycle,
    flit_bytes: u64,
    control_bytes: u64,
}

impl Link {
    fn flits(&self, payload_bytes: u64) -> u64 {
        if payload_bytes == 0 {
            1
        } else {
            payload_bytes.div_ceil(self.flit_bytes)
        }
    }

    fn latency(&self, hops: u64, payload_bytes: u64) -> Cycle {
        if hops == 0 {
            return Cycle::ZERO;
        }
        self.per_hop * hops + Cycle::new(self.flits(payload_bytes) - 1)
    }
}

/// The residency kind of a line, from the refresh policy's viewpoint.
fn kind_of(line: &OracleLine) -> LineKind {
    if !line.is_valid() {
        LineKind::Invalid
    } else if line.is_dirty() {
        LineKind::Dirty
    } else {
        LineKind::Clean
    }
}

/// The oracle's simulated chip.
#[derive(Debug)]
pub struct OracleSystem {
    cfg: SystemConfig,
    tiles: Vec<Tile>,
    l3: Vec<Bank>,
    dir: OracleDirectory,
    dram: OracleDram,
    link: Link,
    counts: EnergyCounts,
    /// The injected fault, if any (see [`Fault`]).
    fault: Option<Fault>,
    /// Pending eager invalidations, scanned linearly in (time, insertion)
    /// order — no heap.
    pending: Vec<PendingInvalidation>,
    next_seq: u64,
    /// BFS-derived hop counts between torus nodes (`hops[a][b]`).
    hops: Vec<Vec<u64>>,
    line_size: u64,
    line_shift: u32,
    data_flits: u64,
    ctrl_flits: u64,
}

impl OracleSystem {
    /// Builds the oracle for `cfg`.
    ///
    /// # Errors
    ///
    /// [`OracleError::InvalidConfig`] if the configuration fails the shared
    /// validation rules; [`OracleError::Unsupported`] for custom L3 policy
    /// models or non-LRU replacement, which the oracle deliberately does
    /// not model.
    pub fn new(cfg: SystemConfig) -> Result<Self, OracleError> {
        Self::build(cfg, None)
    }

    /// Builds the oracle with an injected [`Fault`] — a validation aid for
    /// proving the harness detects real divergences.
    ///
    /// # Errors
    ///
    /// See [`OracleSystem::new`].
    pub fn with_fault(cfg: SystemConfig, fault: Fault) -> Result<Self, OracleError> {
        Self::build(cfg, Some(fault))
    }

    fn build(cfg: SystemConfig, fault: Option<Fault>) -> Result<Self, OracleError> {
        cfg.validate_typed()
            .map_err(|e| OracleError::InvalidConfig(e.to_string()))?;
        if cfg.l3_policy_model.is_some() {
            return Err(OracleError::Unsupported(
                "custom L3 policy models are not part of the oracle's scope".into(),
            ));
        }
        for (name, level) in [("dl1", &cfg.dl1), ("l2", &cfg.l2), ("l3", &cfg.l3_bank)] {
            if level.replacement != ReplacementKind::Lru {
                return Err(OracleError::Unsupported(format!(
                    "{name} uses {} replacement; the oracle models true LRU only",
                    level.replacement
                )));
            }
        }

        let retention = cfg.retention;
        let cells = cfg.cells;
        let private_policy = cfg.private_cache_policy();
        let mut tiles = Vec::new();
        for _ in 0..cfg.cores {
            tiles.push(Tile {
                dl1: OracleCache::new(
                    cfg.dl1.geometry.num_sets(),
                    usize::from(cfg.dl1.geometry.ways()),
                ),
                l2: OracleCache::new(
                    cfg.l2.geometry.num_sets(),
                    usize::from(cfg.l2.geometry.ways()),
                ),
                dl1_refresh: OracleRefresh::new(
                    &cfg.dl1,
                    private_policy,
                    retention,
                    cells,
                    Cycle::ZERO,
                )?,
                l2_refresh: OracleRefresh::new(
                    &cfg.l2,
                    private_policy,
                    retention,
                    cells,
                    Cycle::ZERO,
                )?,
            });
        }
        // Per-bank retention: the variation profile (if any) stretches or
        // shrinks each bank's period; phases stagger within each bank's own
        // period, exactly like the simulator.
        let bank_retentions = cfg.bank_retentions();
        let mut l3 = Vec::new();
        for (b, &bank_retention) in bank_retentions.iter().enumerate() {
            let phase = Cycle::new(
                (b as u64 * bank_retention.line_retention_cycles().raw()) / cfg.l3_banks as u64,
            );
            l3.push(Bank {
                cache: OracleCache::new(
                    cfg.l3_bank.geometry.num_sets(),
                    usize::from(cfg.l3_bank.geometry.ways()),
                ),
                refresh: OracleRefresh::new(
                    &cfg.l3_bank,
                    cfg.policy,
                    bank_retention,
                    cells,
                    phase,
                )?,
            });
        }
        if let Some(Fault::DecayCleanBudgetOffByOne) = fault {
            for bank in &mut l3 {
                bank.refresh.inject_clean_budget_off_by_one();
            }
            for tile in &mut tiles {
                tile.dl1_refresh.inject_clean_budget_off_by_one();
                tile.l2_refresh.inject_clean_budget_off_by_one();
            }
        }

        let line_size = cfg.dl1.geometry.line_size();
        let link = Link {
            per_hop: cfg.link.router_latency + cfg.link.link_latency,
            flit_bytes: cfg.link.flit_bytes,
            control_bytes: cfg.link.control_bytes,
        };
        Ok(OracleSystem {
            hops: bfs_hop_table(&cfg.torus),
            dir: OracleDirectory::with_protocol(cfg.protocol),
            fault,
            dram: OracleDram::paper_default(),
            counts: EnergyCounts::default(),
            pending: Vec::new(),
            next_seq: 0,
            line_shift: line_size.trailing_zeros(),
            data_flits: link.flits(line_size),
            ctrl_flits: link.flits(link.control_bytes),
            line_size,
            link,
            tiles,
            l3,
            cfg,
        })
    }

    /// Runs an arbitrary workload model, adjusted to the configured core
    /// count and scale exactly as the simulator does.
    ///
    /// # Errors
    ///
    /// See [`OracleSystem::run_streams`].
    pub fn run_model(&mut self, model: &WorkloadModel) -> Result<SimReport, OracleError> {
        let model = self.cfg.adjusted_model(model);
        let streams: Vec<ThreadStream> = (0..model.threads)
            .map(|t| ThreadStream::new(&model, t, self.cfg.seed))
            .collect();
        self.run_streams(&model.name, streams)
    }

    /// Runs one reference stream per core: the core with the smallest local
    /// time is always processed next (ties go to the lowest core index).
    ///
    /// # Errors
    ///
    /// [`OracleError::InvalidConfig`] if the stream count differs from the
    /// core count.
    pub fn run_streams<I>(
        &mut self,
        workload: &str,
        mut streams: Vec<I>,
    ) -> Result<SimReport, OracleError>
    where
        I: Iterator<Item = MemRef>,
    {
        if streams.len() != self.cfg.cores {
            return Err(OracleError::InvalidConfig(format!(
                "{} reference streams supplied for {} cores",
                streams.len(),
                self.cfg.cores
            )));
        }
        let mut core_time = vec![Cycle::ZERO; self.cfg.cores];
        let mut live: Vec<usize> = (0..self.cfg.cores).collect();

        while !live.is_empty() {
            let mut pos = 0;
            let mut best = core_time[live[0]];
            for (p, &c) in live.iter().enumerate().skip(1) {
                if core_time[c] < best {
                    best = core_time[c];
                    pos = p;
                }
            }
            let c = live[pos];
            match streams[c].next() {
                None => {
                    live.remove(pos);
                }
                Some(r) => {
                    let now = core_time[c] + Cycle::new(r.gap_cycles);
                    self.drain_invalidations(now);
                    let instructions = self.instructions_for_gap(r.gap_cycles);
                    self.counts.instructions += instructions;
                    self.counts.il1_accesses += self.fetches_for(instructions);
                    let line = r.addr.raw() >> self.line_shift;
                    let latency = self.access(c, line, r.is_write(), now);
                    core_time[c] = now + latency;
                }
            }
        }

        let end = core_time.iter().copied().max().unwrap_or(Cycle::ZERO);
        self.finalize(end);

        let counts = self.counts;
        Ok(SimReport {
            config_label: self.cfg.label(),
            workload: workload.to_owned(),
            execution_cycles: end.raw(),
            counts,
            breakdown: EnergyBreakdown::compute_for_chip(
                &self.cfg.tech,
                self.cfg.cells,
                &counts,
                self.cfg.cores,
                self.cfg.l3_banks,
            ),
            stats: self.collect_stats(),
        })
    }

    // ----------------------------------------------------------------- //
    // Core timing (re-stated from the model's definition)
    // ----------------------------------------------------------------- //

    fn instructions_for_gap(&self, gap: u64) -> u64 {
        1 + (gap as f64 * self.cfg.core.instructions_per_gap_cycle).round() as u64
    }

    fn fetches_for(&self, instructions: u64) -> u64 {
        (instructions as f64 * self.cfg.core.fetches_per_instruction).round() as u64
    }

    fn observed_latency(&self, l1: Cycle, beyond: Cycle) -> Cycle {
        let hidden = (beyond.raw() as f64 * self.cfg.core.miss_overlap).floor() as u64;
        l1 + Cycle::new(beyond.raw() - hidden)
    }

    fn hop(&self, a: usize, b: usize) -> u64 {
        let nodes = self.hops.len();
        self.hops[a % nodes][b % nodes]
    }

    fn bank_of(&self, line: u64) -> usize {
        (line % self.cfg.l3_banks as u64) as usize
    }

    // ----------------------------------------------------------------- //
    // Access path
    // ----------------------------------------------------------------- //

    /// Resolves one data reference; returns the latency the core observes.
    fn access(&mut self, tile: usize, line: u64, is_write: bool, now: Cycle) -> Cycle {
        self.counts.dl1_accesses += 1;
        let l1_latency =
            self.cfg.dl1.access_latency + self.tiles[tile].dl1_refresh.access_penalty(now, line);
        let mut beyond = Cycle::ZERO;

        let dl1_prev = self.tiles[tile].dl1.lookup_prev(line, now);
        if let Some(l) = &dl1_prev {
            let s = self.tiles[tile]
                .dl1_refresh
                .settle(kind_of(l), l.last_touch, now);
            self.counts.l1_refreshes += s.refreshes;
        }

        let mut upgraded = false;
        if dl1_prev.is_none() {
            beyond += self.lookup_l2(tile, line, is_write, now, &mut upgraded);
            // Write-through DL1: fills are always clean Shared copies and
            // evictions are silent.
            self.tiles[tile].dl1.fill(line, MesiState::Shared, now);
        }

        if is_write {
            // The store also updates the L2 copy; its latency is hidden by
            // the store buffer, but energy and coherence are not.
            self.counts.l2_accesses += 1;
            if let Some(l2_line) = self.tiles[tile].l2.line(line) {
                if !l2_line.state.can_write_silently() && !upgraded {
                    beyond += self.l3_transaction(tile, line, true, now);
                    // The transaction may have settled the line away.
                    if self.tiles[tile].l2.line(line).is_some() {
                        self.tiles[tile].l2.write_hit(line, now);
                    }
                } else {
                    self.tiles[tile].l2.write_hit(line, now);
                }
            }
        }

        self.observed_latency(l1_latency, beyond)
    }

    /// The DL1-miss path: L2 lookup, falling through to the L3 on a miss.
    fn lookup_l2(
        &mut self,
        tile: usize,
        line: u64,
        is_write: bool,
        now: Cycle,
        upgraded: &mut bool,
    ) -> Cycle {
        self.counts.l2_accesses += 1;
        let mut beyond =
            self.cfg.l2.access_latency + self.tiles[tile].l2_refresh.access_penalty(now, line);

        let l2_prev = self.tiles[tile].l2.lookup_prev(line, now);
        if let Some(l) = &l2_prev {
            let s = self.tiles[tile]
                .l2_refresh
                .settle(kind_of(l), l.last_touch, now);
            self.counts.l2_refreshes += s.refreshes;
        }

        match l2_prev.map(|l| l.state) {
            Some(state) => {
                if is_write && !state.can_write_silently() {
                    beyond += self.l3_transaction(tile, line, true, now);
                    *upgraded = true;
                }
            }
            None => {
                beyond += self.l3_transaction(tile, line, is_write, now);
                *upgraded = is_write;
            }
        }
        beyond
    }

    /// An L2 miss (or upgrade): torus to the home bank, directory, DRAM on
    /// an L3 miss, then fill the requester's L2.
    fn l3_transaction(&mut self, tile: usize, line: u64, is_write: bool, now: Cycle) -> Cycle {
        let bank = self.bank_of(line);
        let hops = self.hop(tile, bank);
        self.counts.noc_flit_hops += hops * (self.ctrl_flits + self.data_flits);
        let mut beyond = self.link.latency(hops, self.link.control_bytes)
            + self.link.latency(hops, self.line_size)
            + self.cfg.l3_bank.access_latency
            + self.l3[bank].refresh.access_penalty(now, line);
        self.counts.l3_accesses += 1;

        // Settle the L3 line: the policy may have refreshed, written back,
        // or invalidated it since its last touch.
        let mut present = false;
        if let Some(l) = self.l3[bank].cache.line(line) {
            let s = self.l3[bank].refresh.settle(kind_of(&l), l.last_touch, now);
            self.counts.l3_refreshes += s.refreshes;
            if s.writeback_at.is_some() {
                self.counts.dram_writes += 1;
                self.l3[bank].cache.write_back_resident(line);
            }
            if s.invalidated_at.is_some() {
                self.policy_invalidate_l3(bank, line, now);
            } else {
                present = true;
            }
        }

        if !present {
            let ready = self.dram.read(line, now + beyond);
            beyond = ready - now;
            self.counts.dram_reads += 1;
            if let Some(evicted) = self.l3[bank].cache.fill(line, MesiState::Shared, now) {
                self.handle_l3_eviction(bank, evicted, now);
            }
        } else {
            self.l3[bank].cache.read_hit(line, now);
        }

        // Directory transaction.
        let request = if is_write {
            OracleRequest::Write
        } else {
            OracleRequest::Read
        };
        let outcome = self.dir.access(line, tile, request);

        // Remote invalidations/downgrades are on this request's critical
        // path; the slowest reply bounds the added latency.
        let mut worst_remote = Cycle::ZERO;
        for &holder in &outcome.invalidate {
            let d = self.invalidate_private_copy(holder, bank, line, now);
            worst_remote = worst_remote.max(d);
        }
        if let Some(owner) = outcome.downgrade_owner {
            if !outcome.invalidate.contains(&owner) {
                let d =
                    self.downgrade_private_copy(owner, bank, line, now, outcome.owner_writeback);
                worst_remote = worst_remote.max(d);
            }
        }
        // Dragon update broadcasts: the written word is pushed to every
        // remote replica, which stays a valid clean sharer.
        for &target in &outcome.update {
            let d = if self.fault == Some(Fault::DragonUpdateInvalidates) {
                self.invalidate_private_copy(target, bank, line, now)
            } else {
                self.update_private_copy(target, bank, line, now)
            };
            worst_remote = worst_remote.max(d);
        }
        beyond += worst_remote;

        // Fill (or update) the requester's L2.
        match self.tiles[tile].l2.line(line) {
            Some(_) => {
                self.tiles[tile].l2.set_state(line, outcome.fill_state);
                self.tiles[tile].l2.read_hit(line, now);
            }
            None => {
                if let Some(evicted) = self.tiles[tile].l2.fill(line, outcome.fill_state, now) {
                    self.handle_l2_eviction(tile, evicted, now);
                }
            }
        }

        self.schedule_l3_invalidation(bank, line, now);
        beyond
    }

    /// Invalidates `holder`'s private copies on behalf of the directory;
    /// dirty data is absorbed into the home L3 bank. Returns the round-trip
    /// latency seen from the home bank.
    fn invalidate_private_copy(
        &mut self,
        holder: usize,
        bank: usize,
        line: u64,
        now: Cycle,
    ) -> Cycle {
        let hops = self.hop(bank, holder);
        self.counts.noc_flit_hops += hops * self.ctrl_flits * 2;
        let mut latency = self.link.latency(hops, self.link.control_bytes) * 2;

        self.tiles[holder].dl1.invalidate(line);
        if let Some(victim) = self.tiles[holder].l2.invalidate(line) {
            let s = self.tiles[holder]
                .l2_refresh
                .settle(kind_of(&victim), victim.last_touch, now);
            self.counts.l2_refreshes += s.refreshes;
            if victim.is_dirty() {
                // Dirty data travels back with the acknowledgement and
                // lands in the L3.
                self.counts.noc_flit_hops += hops * self.data_flits;
                latency += self.link.latency(hops, self.line_size);
                self.counts.l3_accesses += 1;
                self.l3[bank].cache.write_resident(line, now);
            }
        }
        latency
    }

    /// Downgrades the owner on behalf of the directory; returns the
    /// round-trip latency. With `writeback_into_l3` (MESI) the owner drops
    /// to Shared and its dirty data lands in the home bank; without it
    /// (Dragon) a dirty owner keeps its data as SharedModified and nothing
    /// touches the L3.
    fn downgrade_private_copy(
        &mut self,
        owner: usize,
        bank: usize,
        line: u64,
        now: Cycle,
        writeback_into_l3: bool,
    ) -> Cycle {
        let hops = self.hop(bank, owner);
        self.counts.noc_flit_hops += hops * (self.ctrl_flits + self.data_flits);
        let latency = self.link.latency(hops, self.link.control_bytes)
            + self.link.latency(hops, self.line_size);

        let was_dirty = self.tiles[owner]
            .l2
            .line(line)
            .is_some_and(|l| l.is_dirty());
        if writeback_into_l3 {
            self.tiles[owner].l2.set_state(line, MesiState::Shared);
            self.tiles[owner].dl1.set_state(line, MesiState::Shared);
            if was_dirty {
                self.counts.l3_accesses += 1;
                self.l3[bank].cache.write_resident(line, now);
            }
        } else {
            let l2_state = if was_dirty {
                MesiState::SharedModified
            } else {
                MesiState::Shared
            };
            self.tiles[owner].l2.set_state(line, l2_state);
            self.tiles[owner].dl1.set_state(line, MesiState::Shared);
        }
        latency
    }

    /// Applies a Dragon update broadcast to `target`'s private copies: the
    /// line is rewritten in place, becoming a clean Shared replica with
    /// fresh cells (the update recharges the eDRAM row). Returns the
    /// round-trip latency.
    fn update_private_copy(&mut self, target: usize, bank: usize, line: u64, now: Cycle) -> Cycle {
        let hops = self.hop(bank, target);
        self.counts.noc_flit_hops += hops * self.ctrl_flits * 2;
        let latency = self.link.latency(hops, self.link.control_bytes) * 2;

        if let Some(prev) = self.tiles[target].l2.line(line) {
            let s = self.tiles[target]
                .l2_refresh
                .settle(kind_of(&prev), prev.last_touch, now);
            self.counts.l2_refreshes += s.refreshes;
            self.tiles[target].l2.apply_update(line, now);
        }
        self.tiles[target].dl1.apply_update(line, now);
        latency
    }

    /// A valid line left the private L2: maintain DL1 inclusion and write
    /// dirty data back to the home bank.
    fn handle_l2_eviction(&mut self, tile: usize, evicted: OracleLine, now: Cycle) {
        let line = evicted.addr;
        let s = self.tiles[tile]
            .l2_refresh
            .settle(kind_of(&evicted), evicted.last_touch, now);
        self.counts.l2_refreshes += s.refreshes;
        self.tiles[tile].dl1.invalidate(line);

        let bank = self.bank_of(line);
        let hops = self.hop(tile, bank);
        if evicted.is_dirty() {
            self.counts.noc_flit_hops += hops * self.data_flits;
            self.counts.l3_accesses += 1;
            if self.l3[bank].cache.line(line).is_some() {
                self.l3[bank].cache.write_resident(line, now);
                self.schedule_l3_invalidation(bank, line, now);
            } else {
                // The L3 copy already decayed; the data goes to memory.
                self.counts.dram_writes += 1;
            }
            let _ = self.dir.access(line, tile, OracleRequest::EvictDirty);
        } else {
            self.counts.noc_flit_hops += hops * self.ctrl_flits;
            let _ = self.dir.access(line, tile, OracleRequest::EvictClean);
        }
    }

    /// A valid line left an L3 bank: settle it, invalidate every private
    /// copy (inclusivity), and write dirty data to DRAM.
    fn handle_l3_eviction(&mut self, bank: usize, evicted: OracleLine, now: Cycle) {
        let line = evicted.addr;
        let s = self.l3[bank]
            .refresh
            .settle(kind_of(&evicted), evicted.last_touch, now);
        self.counts.l3_refreshes += s.refreshes;
        let mut still_dirty = evicted.is_dirty();
        if s.writeback_at.is_some() {
            self.counts.dram_writes += 1;
            still_dirty = false;
        }
        let already_gone = s.invalidated_at.is_some();

        for holder in self.dir.invalidate_all(line) {
            let hops = self.hop(bank, holder);
            self.counts.noc_flit_hops += hops * self.ctrl_flits * 2;
            self.tiles[holder].dl1.invalidate(line);
            if let Some(victim) = self.tiles[holder].l2.invalidate(line) {
                let sv =
                    self.tiles[holder]
                        .l2_refresh
                        .settle(kind_of(&victim), victim.last_touch, now);
                self.counts.l2_refreshes += sv.refreshes;
                if victim.is_dirty() {
                    self.counts.dram_writes += 1;
                    self.counts.noc_flit_hops += hops * self.data_flits;
                }
            }
        }
        if !already_gone && still_dirty {
            self.counts.dram_writes += 1;
        }
    }

    /// A policy-driven invalidation of an L3 line: drop it and, through
    /// inclusion, every private copy.
    fn policy_invalidate_l3(&mut self, bank: usize, line: u64, now: Cycle) {
        if self.l3[bank].cache.invalidate(line).is_none() {
            return;
        }
        for holder in self.dir.invalidate_all(line) {
            let hops = self.hop(bank, holder);
            self.counts.noc_flit_hops += hops * self.ctrl_flits * 2;
            self.tiles[holder].dl1.invalidate(line);
            if let Some(victim) = self.tiles[holder].l2.invalidate(line) {
                let sv =
                    self.tiles[holder]
                        .l2_refresh
                        .settle(kind_of(&victim), victim.last_touch, now);
                self.counts.l2_refreshes += sv.refreshes;
                if victim.is_dirty() {
                    // The backing L3 copy is being dropped, so dirty private
                    // data must go to memory.
                    self.counts.dram_writes += 1;
                    self.counts.noc_flit_hops += hops * self.data_flits;
                }
            }
        }
    }

    /// Predicts when the policy will invalidate the freshly touched L3 line
    /// and queues the eager inclusive invalidation.
    fn schedule_l3_invalidation(&mut self, bank: usize, line: u64, now: Cycle) {
        let Some(l3_line) = self.l3[bank].cache.line(line) else {
            return;
        };
        if let Some(when) = self.l3[bank]
            .refresh
            .invalidation_time(kind_of(&l3_line), now)
        {
            self.pending.push(PendingInvalidation {
                at: when,
                seq: self.next_seq,
                bank,
                line,
                touch: now,
            });
            self.next_seq += 1;
        }
    }

    /// Processes every pending invalidation whose time has come, earliest
    /// (time, insertion order) first.
    fn drain_invalidations(&mut self, now: Cycle) {
        loop {
            let due = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, p)| p.at <= now)
                .min_by_key(|(_, p)| (p.at, p.seq))
                .map(|(i, _)| i);
            let Some(idx) = due else {
                break;
            };
            let ev = self.pending.remove(idx);
            let Some(current) = self.l3[ev.bank].cache.line(ev.line) else {
                continue;
            };
            if current.last_touch != ev.touch {
                continue; // stale prediction: the line was touched again
            }
            let s = self.l3[ev.bank]
                .refresh
                .settle(kind_of(&current), ev.touch, ev.at);
            self.counts.l3_refreshes += s.refreshes;
            if s.writeback_at.is_some() {
                self.counts.dram_writes += 1;
                self.l3[ev.bank].cache.write_back_resident(ev.line);
            }
            if s.invalidated_at.is_some() {
                self.policy_invalidate_l3(ev.bank, ev.line, ev.at);
            }
        }
    }

    // ----------------------------------------------------------------- //
    // End of run
    // ----------------------------------------------------------------- //

    /// Settles every resident line at the end of the run, flushes dirty
    /// data to DRAM, and adds bulk refresh counts for `All` policies and
    /// the statistically-modelled IL1.
    fn finalize(&mut self, end: Cycle) {
        self.drain_invalidations(end);

        for bank in 0..self.l3.len() {
            for l in self.l3[bank].cache.valid_lines() {
                let s = self.l3[bank].refresh.settle(kind_of(&l), l.last_touch, end);
                self.counts.l3_refreshes += s.refreshes;
                // One DRAM write each: a policy write-back that already
                // happened, or the end-of-run flush of still-dirty data.
                if s.writeback_at.is_some() || (l.is_dirty() && s.invalidated_at.is_none()) {
                    self.counts.dram_writes += 1;
                }
            }
            if self.l3[bank].refresh.is_bulk_all() {
                self.counts.l3_refreshes += self.l3[bank].refresh.bulk_refreshes(end);
            }
        }

        for tile in 0..self.tiles.len() {
            for l in self.tiles[tile].l2.valid_lines() {
                let s = self.tiles[tile]
                    .l2_refresh
                    .settle(kind_of(&l), l.last_touch, end);
                self.counts.l2_refreshes += s.refreshes;
                if l.is_dirty() {
                    self.counts.dram_writes += 1;
                }
            }
            for l in self.tiles[tile].dl1.valid_lines() {
                let s = self.tiles[tile]
                    .dl1_refresh
                    .settle(kind_of(&l), l.last_touch, end);
                self.counts.l1_refreshes += s.refreshes;
            }
            // The IL1 is modelled statistically: under Periodic timing every
            // line is refreshed every period.
            if self.tiles[tile].dl1_refresh.is_edram() && self.cfg.is_periodic() {
                let il1_lines = self.cfg.il1.geometry.num_lines();
                let periods = end.div_span(self.cfg.retention.line_retention_cycles());
                self.counts.l1_refreshes += il1_lines * periods;
            }
        }

        self.counts.cycles = end.raw();
    }

    fn collect_stats(&self) -> StatRegistry {
        let mut out = StatRegistry::new();
        for (t, tile) in self.tiles.iter().enumerate() {
            for (k, v) in tile.dl1.stats().iter() {
                out.add(&format!("dl1.{t}.{k}"), v);
            }
            for (k, v) in tile.l2.stats().iter() {
                out.add(&format!("l2.{t}.{k}"), v);
            }
        }
        for (b, bank) in self.l3.iter().enumerate() {
            for (k, v) in bank.cache.stats().iter() {
                out.add(&format!("l3.{b}.{k}"), v);
            }
        }
        for (k, v) in self.dir.stats().iter() {
            out.add(&format!("coherence.{k}"), v);
        }
        for (k, v) in self.dram.stats().iter() {
            out.add(&format!("dram.{k}"), v);
        }
        let sentry = |d: &OracleRefresh| u64::from(d.is_edram() && !d.is_globally_bursting());
        let sentry_domains = self
            .tiles
            .iter()
            .map(|t| sentry(&t.dl1_refresh) + sentry(&t.l2_refresh))
            .sum::<u64>()
            + self.l3.iter().map(|b| sentry(&b.refresh)).sum::<u64>();
        if sentry_domains > 0 {
            out.add("refresh.refrint_domains", sentry_domains);
        }
        out
    }
}

/// Hop counts between all torus node pairs, derived by breadth-first
/// search over the wraparound links — independent of the closed-form ring
/// distances the optimized router uses.
fn bfs_hop_table(torus: &refrint_noc::topology::Torus) -> Vec<Vec<u64>> {
    let (w, h) = (torus.width(), torus.height());
    let nodes = w * h;
    let neighbours = |n: usize| -> Vec<usize> {
        let (x, y) = (n % w, n / w);
        vec![
            y * w + (x + 1) % w,
            y * w + (x + w - 1) % w,
            ((y + 1) % h) * w + x,
            ((y + h - 1) % h) * w + x,
        ]
    };
    (0..nodes)
        .map(|start| {
            let mut dist = vec![u64::MAX; nodes];
            dist[start] = 0;
            let mut frontier = vec![start];
            while !frontier.is_empty() {
                let mut next = Vec::new();
                for &n in &frontier {
                    for m in neighbours(n) {
                        if dist[m] == u64::MAX {
                            dist[m] = dist[n] + 1;
                            next.push(m);
                        }
                    }
                }
                frontier = next;
            }
            dist
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint::system::CmpSystem;
    use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
    use refrint_energy::tech::CellTech;
    use refrint_noc::routing::hop_count;
    use refrint_noc::topology::{NodeId, Torus};
    use refrint_workloads::apps::AppPreset;

    #[test]
    fn bfs_hops_match_the_closed_form_router() {
        for torus in [Torus::paper_4x4(), Torus::new(2, 3).unwrap()] {
            let table = bfs_hop_table(&torus);
            for (a, row) in table.iter().enumerate() {
                for (b, &hops) in row.iter().enumerate() {
                    assert_eq!(
                        hops,
                        u64::from(hop_count(&torus, NodeId::new(a), NodeId::new(b))),
                        "{a} -> {b}"
                    );
                }
            }
        }
    }

    fn agree(cfg: SystemConfig, app: AppPreset) {
        let oracle = OracleSystem::new(cfg.clone())
            .unwrap()
            .run_model(&app.model())
            .unwrap();
        let sim = CmpSystem::new(cfg).unwrap().run_app(app);
        let diffs = crate::diff::diff_reports(&oracle, &sim);
        assert!(diffs.is_empty(), "oracle vs simulator: {diffs:?}");
    }

    #[test]
    fn oracle_matches_simulator_on_sram() {
        agree(
            SystemConfig::sram_baseline().with_cores(2).with_scale(700),
            AppPreset::Lu,
        );
    }

    #[test]
    fn oracle_matches_simulator_on_recommended_edram() {
        agree(
            SystemConfig::edram_recommended()
                .with_cores(2)
                .with_scale(700),
            AppPreset::Barnes,
        );
    }

    #[test]
    fn oracle_matches_simulator_on_periodic_all() {
        agree(
            SystemConfig::edram_baseline().with_cores(4).with_scale(500),
            AppPreset::Fft,
        );
    }

    #[test]
    fn oracle_matches_simulator_on_aggressive_writeback() {
        agree(
            SystemConfig::edram_recommended()
                .with_policy(RefreshPolicy::new(
                    TimePolicy::Refrint,
                    DataPolicy::write_back(0, 0),
                ))
                .with_cores(2)
                .with_scale(600),
            AppPreset::Radix,
        );
    }

    #[test]
    fn injected_fault_diverges_from_the_simulator() {
        // Retention just above the sentry margin, so the short run spans
        // many refresh opportunities and the budgets actually expire.
        let retention = refrint_edram::retention::RetentionConfig::new(
            refrint_engine::time::SimDuration::from_nanos(17_000),
            refrint_engine::time::Freq::gigahertz(1),
        )
        .unwrap();
        let cfg = SystemConfig::edram_recommended()
            .with_policy(RefreshPolicy::new(
                TimePolicy::Refrint,
                DataPolicy::write_back(1, 1),
            ))
            .with_retention(retention)
            .with_cores(2)
            .with_scale(800);
        let oracle = OracleSystem::with_fault(cfg.clone(), Fault::DecayCleanBudgetOffByOne)
            .unwrap()
            .run_model(&AppPreset::Lu.model())
            .unwrap();
        let sim = CmpSystem::new(cfg).unwrap().run_app(AppPreset::Lu);
        assert!(
            !crate::diff::diff_reports(&oracle, &sim).is_empty(),
            "the injected off-by-one must be visible"
        );
    }

    #[test]
    fn oracle_matches_simulator_on_dragon() {
        // Scale/seed chosen so the run actually broadcasts updates (the
        // simulator's own Dragon test asserts `updates_sent > 0` here).
        agree(
            SystemConfig::edram_recommended()
                .with_protocol(refrint::CoherenceProtocol::Dragon)
                .with_cores(4)
                .with_scale(3_000)
                .with_seed(11),
            AppPreset::Radix,
        );
    }

    #[test]
    fn oracle_matches_simulator_on_dragon_sram() {
        agree(
            SystemConfig::sram_baseline()
                .with_protocol(refrint::CoherenceProtocol::Dragon)
                .with_cores(2)
                .with_scale(600),
            AppPreset::Lu,
        );
    }

    #[test]
    fn oracle_matches_simulator_on_retention_profiles() {
        agree(
            SystemConfig::edram_recommended()
                .with_retention_profile(refrint::RetentionProfile::Normal { sigma_pct: 15 })
                .with_cores(2)
                .with_scale(600),
            AppPreset::Fft,
        );
        agree(
            SystemConfig::edram_recommended()
                .with_retention_profile(refrint::RetentionProfile::Bimodal {
                    weak_pct: 50,
                    weak_retention_pct: 40,
                })
                .with_protocol(refrint::CoherenceProtocol::Dragon)
                .with_cores(2)
                .with_scale(600),
            AppPreset::Barnes,
        );
    }

    #[test]
    fn dragon_fault_diverges_under_dragon_only() {
        let cfg = SystemConfig::edram_recommended()
            .with_protocol(refrint::CoherenceProtocol::Dragon)
            .with_cores(4)
            .with_scale(3_000)
            .with_seed(11);
        let oracle = OracleSystem::with_fault(cfg.clone(), Fault::DragonUpdateInvalidates)
            .unwrap()
            .run_model(&AppPreset::Radix.model())
            .unwrap();
        let sim = CmpSystem::new(cfg).unwrap().run_app(AppPreset::Radix);
        assert!(
            !crate::diff::diff_reports(&oracle, &sim).is_empty(),
            "treating Dragon updates as invalidations must be visible"
        );

        // The same fault is invisible under MESI: no update broadcasts.
        let mesi = SystemConfig::edram_recommended()
            .with_cores(4)
            .with_scale(3_000)
            .with_seed(11);
        let oracle = OracleSystem::with_fault(mesi.clone(), Fault::DragonUpdateInvalidates)
            .unwrap()
            .run_model(&AppPreset::Radix.model())
            .unwrap();
        let sim = CmpSystem::new(mesi).unwrap().run_app(AppPreset::Radix);
        assert!(crate::diff::diff_reports(&oracle, &sim).is_empty());
    }

    #[test]
    fn unsupported_configurations_are_typed_errors() {
        let mut cfg = SystemConfig::edram_recommended();
        cfg.dl1.replacement = ReplacementKind::Random;
        assert!(matches!(
            OracleSystem::new(cfg),
            Err(OracleError::Unsupported(_))
        ));
        let _ = CellTech::Edram; // silence unused import on some cfgs
    }
}
