//! The refresh machinery attached to one cache, re-derived naively: the
//! replay-based decay settlement of [`OracleDecay`], a longhand periodic
//! group-burst blocking model, and the deterministic interrupt-contention
//! accumulator.

use refrint_edram::policy::{RefreshPolicy, TimePolicy};
use refrint_edram::retention::RetentionConfig;
use refrint_edram::schedule::{LineKind, Settlement};
use refrint_energy::tech::CellTech;
use refrint_engine::time::Cycle;
use refrint_mem::config::CacheLevelConfig;

use crate::decay::OracleDecay;
use crate::system::OracleError;

/// Longhand periodic group-burst timing: each retention period every
/// sub-array is refreshed as a contiguous burst of one cycle per line,
/// bursts spaced evenly across the period.
#[derive(Debug, Clone, Copy)]
struct OracleBurst {
    retention: Cycle,
    groups: u64,
    lines_per_group: u64,
}

impl OracleBurst {
    fn spacing(&self) -> Cycle {
        self.retention / self.groups
    }

    /// The stall an access to `line_index`'s sub-array sees at `now`, with
    /// the refresh engine yielding after at most `window` line refreshes.
    fn access_delay(&self, now: Cycle, line_index: u64, window: Cycle) -> Cycle {
        let spacing = self.spacing();
        let phase = now % spacing;
        let burst_len = Cycle::new(self.lines_per_group);
        if phase >= burst_len {
            return Cycle::ZERO;
        }
        let busy_group = (now % self.retention).div_span(spacing) % self.groups;
        if busy_group == line_index % self.groups {
            (burst_len - phase).min(window)
        } else {
            Cycle::ZERO
        }
    }
}

/// Refresh machinery of one physical cache (an L1, an L2, or one L3 bank).
#[derive(Debug, Clone)]
pub struct OracleRefresh {
    decay: Option<OracleDecay>,
    burst: Option<OracleBurst>,
    /// Deterministic interrupt-contention accumulator (Refrint timing):
    /// fractional expected stalls accumulate until a whole cycle is
    /// charged.
    contention: f64,
    lines: u64,
    bulk_all: bool,
}

impl OracleRefresh {
    /// Binds `policy` to the cache level `cfg` describes. SRAM gets inert
    /// machinery; eDRAM gets the replay decay plus, for Periodic timing,
    /// the group-burst blocking model.
    ///
    /// # Errors
    ///
    /// [`OracleError::InvalidConfig`] if a Periodic burst period is too
    /// short to refresh the whole array — the same rule the optimized
    /// simulator enforces.
    pub fn new(
        cfg: &CacheLevelConfig,
        policy: RefreshPolicy,
        retention: RetentionConfig,
        cells: CellTech,
        phase_offset: Cycle,
    ) -> Result<Self, OracleError> {
        let lines = cfg.geometry.num_lines();
        if !cells.needs_refresh() {
            return Ok(OracleRefresh {
                decay: None,
                burst: None,
                contention: 0.0,
                lines,
                bulk_all: false,
            });
        }
        let retention_cycles = retention.line_retention_cycles();
        // The paper's conservative sentry margin: one cycle per line.
        let margin = Cycle::new(lines.min(retention_cycles.raw().saturating_sub(1)));
        let decay = OracleDecay::new(policy, retention_cycles, margin, phase_offset);
        let burst = match policy.time {
            TimePolicy::Periodic => {
                let work = u64::from(cfg.subarrays) * cfg.lines_per_refresh_group();
                if retention_cycles.raw() < work.max(1) {
                    return Err(OracleError::InvalidConfig(format!(
                        "periodic burst period of {} cycles cannot cover {work} cycles of \
                         refresh work",
                        retention_cycles.raw()
                    )));
                }
                Some(OracleBurst {
                    retention: retention_cycles,
                    groups: u64::from(cfg.subarrays),
                    lines_per_group: cfg.lines_per_refresh_group(),
                })
            }
            TimePolicy::Refrint => None,
        };
        Ok(OracleRefresh {
            decay: Some(decay),
            burst,
            contention: 0.0,
            lines,
            bulk_all: policy.data.refreshes_invalid_lines(),
        })
    }

    /// Enables the injected decay off-by-one (validation aid).
    pub(crate) fn inject_clean_budget_off_by_one(&mut self) {
        if let Some(decay) = &mut self.decay {
            decay.inject_clean_budget_off_by_one();
        }
    }

    /// Whether this cache refreshes at all (i.e. is eDRAM).
    #[must_use]
    pub fn is_edram(&self) -> bool {
        self.decay.is_some()
    }

    /// Whether the refresh engine runs globally scheduled group bursts.
    #[must_use]
    pub fn is_globally_bursting(&self) -> bool {
        self.burst.is_some()
    }

    /// Whether refresh energy is accounted in bulk (the `All` data policy).
    #[must_use]
    pub fn is_bulk_all(&self) -> bool {
        self.bulk_all
    }

    /// Extra access latency at `now` for an access to `line_index`: the
    /// remaining (preemptible) burst time under Periodic, the expected
    /// interrupt contention under Refrint.
    pub fn access_penalty(&mut self, now: Cycle, line_index: u64) -> Cycle {
        if let Some(burst) = self.burst {
            // The refresh engine yields to demand accesses after at most
            // 256 line refreshes, exactly as in the optimized model.
            return burst.access_delay(now, line_index, Cycle::new(256));
        }
        let Some(decay) = &self.decay else {
            return Cycle::ZERO;
        };
        // Expected pending interrupts overlapping this access:
        // lines / (64 * opportunity period), accumulated into whole stall
        // cycles at the correct long-run rate.
        let window = decay.opportunity_period() * 64;
        if window == Cycle::ZERO || self.lines == 0 {
            return Cycle::ZERO;
        }
        self.contention += self.lines as f64 / window.raw() as f64;
        if self.contention >= 1.0 {
            let whole = self.contention.floor();
            self.contention -= whole;
            Cycle::new(whole as u64)
        } else {
            Cycle::ZERO
        }
    }

    /// Settles an idle line between `touch` and `now` by replay. Inert for
    /// SRAM and for bulk-accounted `All` policies.
    #[must_use]
    pub fn settle(&self, kind: LineKind, touch: Cycle, now: Cycle) -> Settlement {
        if self.bulk_all {
            return Settlement::nothing(kind);
        }
        match &self.decay {
            Some(decay) => decay.settle(kind, touch, now),
            None => Settlement::nothing(kind),
        }
    }

    /// When the policy will invalidate an idle line of `kind` touched at
    /// `touch`, if ever.
    #[must_use]
    pub fn invalidation_time(&self, kind: LineKind, touch: Cycle) -> Option<Cycle> {
        self.decay
            .as_ref()
            .and_then(|d| d.invalidation_time(kind, touch))
    }

    /// Bulk refresh count for the whole cache over `(0, end]`.
    #[must_use]
    pub fn bulk_refreshes(&self, end: Cycle) -> u64 {
        match &self.decay {
            Some(decay) => self.lines * decay.opportunities_between(Cycle::ZERO, end),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_edram::policy::DataPolicy;

    fn l3() -> CacheLevelConfig {
        CacheLevelConfig::paper_l3_bank()
    }

    #[test]
    fn sram_is_inert() {
        let mut r = OracleRefresh::new(
            &l3(),
            RefreshPolicy::recommended(),
            RetentionConfig::microseconds_50(),
            CellTech::Sram,
            Cycle::ZERO,
        )
        .unwrap();
        assert!(!r.is_edram());
        assert_eq!(r.access_penalty(Cycle::new(5), 0), Cycle::ZERO);
        assert_eq!(r.bulk_refreshes(Cycle::new(1_000_000)), 0);
    }

    #[test]
    fn periodic_bursts_block_their_own_subarray() {
        let mut r = OracleRefresh::new(
            &l3(),
            RefreshPolicy::edram_baseline(),
            RetentionConfig::microseconds_50(),
            CellTech::Edram,
            Cycle::ZERO,
        )
        .unwrap();
        assert!(r.is_globally_bursting());
        assert!(r.access_penalty(Cycle::ZERO, 0) > Cycle::ZERO);
        assert_eq!(r.access_penalty(Cycle::ZERO, 1), Cycle::ZERO);
    }

    #[test]
    fn all_policy_uses_bulk_accounting() {
        let r = OracleRefresh::new(
            &l3(),
            RefreshPolicy::edram_baseline(),
            RetentionConfig::microseconds_50(),
            CellTech::Edram,
            Cycle::ZERO,
        )
        .unwrap();
        assert!(r.is_bulk_all());
        assert_eq!(
            r.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(1_000_000)),
            Settlement::nothing(LineKind::Clean)
        );
        assert_eq!(r.bulk_refreshes(Cycle::new(500_000)), 16 * 1024 * 10);
    }

    #[test]
    fn overcommitted_burst_period_is_a_typed_error() {
        // 10 ns retention cannot cover the paper L3 bank's 16K cycles of
        // refresh work per period.
        let retention = RetentionConfig::new(
            refrint_engine::time::SimDuration::from_nanos(10),
            refrint_engine::time::Freq::gigahertz(1),
        )
        .unwrap();
        let err = OracleRefresh::new(
            &l3(),
            RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Dirty),
            retention,
            CellTech::Edram,
            Cycle::ZERO,
        )
        .unwrap_err();
        assert!(err.to_string().contains("burst period"), "{err}");
    }
}
