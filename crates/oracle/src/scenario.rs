//! Seeded random conformance scenarios.
//!
//! A [`Scenario`] is one fully concrete differential test case: a chip
//! shape (core count × cache geometry class), a cell technology, a
//! retention point, a refresh policy, a workload, and whether the run goes
//! through a trace capture/replay round trip. Scenarios deliberately
//! include the degenerate shapes the optimized code paths are most likely
//! to get wrong: one core, single-set caches, and retention at the
//! `RetentionTooShort` boundary (a one-cycle sentry period).
//!
//! Every scenario serialises to a compact `key=value` spec string, so a
//! failing (possibly shrunk) case reproduces with a ready-to-paste
//! `refrint-cli check --scenario "…"` command.

use std::fmt;
use std::str::FromStr;

use refrint::config::SystemConfig;
use refrint::{CoherenceProtocol, RetentionProfile};
use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
use refrint_edram::retention::RetentionConfig;
use refrint_energy::tech::CellTech;
use refrint_engine::rng::DeterministicRng;
use refrint_engine::time::{Freq, SimDuration};
use refrint_mem::config::CacheGeometry;
use refrint_workloads::apps::AppPreset;

/// The cache-geometry shape of a scenario's chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryClass {
    /// The paper's Table 5.1 hierarchy (32 KB L1s, 256 KB L2, 1 MB banks).
    Paper,
    /// A scaled-down hierarchy (1 KB / 4 KB / 16 KB) that fills and evicts
    /// quickly.
    Small,
    /// Degenerate single-set caches (2-line DL1, 8-line L2 and L3 bank).
    Mini,
}

impl GeometryClass {
    /// All classes, smallest state last (the shrink direction).
    pub const ALL: [GeometryClass; 3] = [
        GeometryClass::Paper,
        GeometryClass::Small,
        GeometryClass::Mini,
    ];

    /// The spec-string label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GeometryClass::Paper => "paper",
            GeometryClass::Small => "small",
            GeometryClass::Mini => "mini",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|g| g.label() == s)
    }

    /// Overwrites `cfg`'s cache geometries with this class's shape.
    fn apply(self, cfg: &mut SystemConfig) {
        let geom = |size: u64, ways: u8| {
            CacheGeometry::new(size, ways, 64).expect("scenario geometries are valid")
        };
        match self {
            GeometryClass::Paper => {}
            GeometryClass::Small => {
                cfg.il1.geometry = geom(1024, 2);
                cfg.dl1.geometry = geom(1024, 2);
                cfg.l2.geometry = geom(4 * 1024, 4);
                cfg.l3_bank.geometry = geom(16 * 1024, 8);
            }
            GeometryClass::Mini => {
                cfg.il1.geometry = geom(128, 2);
                cfg.dl1.geometry = geom(128, 2);
                cfg.l2.geometry = geom(512, 8);
                cfg.l3_bank.geometry = geom(512, 8);
            }
        }
    }

    /// The retention points (in cycles at 1 GHz, i.e. nanoseconds) swept
    /// for this geometry. The first is the `RetentionTooShort` boundary:
    /// one cycle more than the L3 bank's sentry margin.
    fn retention_points(self) -> [u64; 4] {
        match self {
            // Paper L3 bank: 16K lines -> margin 16384.
            GeometryClass::Paper => [16_385, 50_000, 100_000, 200_000],
            // Small L3 bank: 256 lines -> margin 256.
            GeometryClass::Small => [257, 1_000, 5_000, 50_000],
            // Mini L3 bank: 8 lines -> margin 8.
            GeometryClass::Mini => [9, 64, 1_000, 50_000],
        }
    }
}

/// One concrete conformance scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Workload (and cache-seed) base.
    pub seed: u64,
    /// Core / L3-bank count.
    pub cores: usize,
    /// References per thread.
    pub refs_per_thread: u64,
    /// Application preset driving the synthetic streams.
    pub app: AppPreset,
    /// Cell technology.
    pub cells: CellTech,
    /// L3 refresh policy descriptor (ignored for SRAM).
    pub policy: RefreshPolicy,
    /// Retention period in nanoseconds at 1 GHz (= cycles).
    pub retention_ns: u64,
    /// Cache geometry class.
    pub geometry: GeometryClass,
    /// Whether the run goes through a trace capture/replay round trip.
    pub via_trace: bool,
    /// Coherence protocol (MESI or Dragon).
    pub protocol: CoherenceProtocol,
    /// Per-bank retention-variation profile (always `Uniform` on SRAM).
    pub profile: RetentionProfile,
}

impl Scenario {
    /// Generates the `index`-th scenario of the stream seeded by
    /// `master_seed`. The same `(master_seed, index)` always yields the
    /// same scenario.
    #[must_use]
    pub fn generate(master_seed: u64, index: u64) -> Self {
        let mut rng = DeterministicRng::from_seed(master_seed).fork(index + 1);
        let geometry = GeometryClass::ALL[rng.weighted_index(&[0.2, 0.4, 0.4])];
        let cells = if rng.chance(0.12) {
            CellTech::Sram
        } else {
            CellTech::Edram
        };
        let time = if rng.chance(0.5) {
            TimePolicy::Periodic
        } else {
            TimePolicy::Refrint
        };
        let data = match rng.below(8) {
            0 => DataPolicy::All,
            1 => DataPolicy::Valid,
            2 => DataPolicy::Dirty,
            3 => DataPolicy::write_back(0, 0),
            4 => DataPolicy::write_back(1, 1),
            5 => DataPolicy::write_back(4, 4),
            6 => DataPolicy::write_back(32, 32),
            _ => DataPolicy::write_back(rng.below(8) as u32, rng.below(8) as u32),
        };
        let retention_ns =
            geometry.retention_points()[rng.weighted_index(&[0.25, 0.25, 0.25, 0.25])];
        let cores = *[1usize, 2, 4, 8, 16]
            .get(rng.weighted_index(&[0.2, 0.3, 0.3, 0.1, 0.1]))
            .expect("weight count matches");
        let boundary = retention_ns == geometry.retention_points()[0];
        let refs_cap = if boundary || cores >= 8 { 300 } else { 1_200 };
        let refs_per_thread = (120 + rng.below(1_081)).min(refs_cap);
        let app = AppPreset::ALL[rng.below(AppPreset::ALL.len() as u64) as usize];
        let seed = rng.next_u64();
        let via_trace = rng.chance(0.25);
        let protocol = if rng.chance(0.4) {
            CoherenceProtocol::Dragon
        } else {
            CoherenceProtocol::Mesi
        };
        // Retention variation only exists on decaying cells; SRAM scenarios
        // stay on the uniform (identity) profile.
        let profile = match rng.below(4) {
            _ if cells == CellTech::Sram => RetentionProfile::Uniform,
            0 | 1 => RetentionProfile::Uniform,
            2 => RetentionProfile::Normal {
                sigma_pct: 1 + rng.below(30) as u8,
            },
            _ => RetentionProfile::Bimodal {
                weak_pct: 1 + rng.below(99) as u8,
                weak_retention_pct: 30 + rng.below(70) as u8,
            },
        };
        Scenario {
            seed,
            cores,
            refs_per_thread,
            app,
            cells,
            policy: RefreshPolicy::new(time, data),
            retention_ns,
            geometry,
            via_trace,
            protocol,
            profile,
        }
    }

    /// The [`SystemConfig`] this scenario describes.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::sram_baseline()
            .with_cells(self.cells)
            .with_policy(self.policy)
            .with_cores(self.cores)
            .with_seed(self.seed)
            .with_scale(self.refs_per_thread)
            .with_protocol(self.protocol)
            .with_retention_profile(self.profile);
        cfg = cfg.with_retention(
            RetentionConfig::new(
                SimDuration::from_nanos(self.retention_ns),
                Freq::gigahertz(1),
            )
            .expect("scenario retention points are at least one cycle"),
        );
        self.geometry.apply(&mut cfg);
        cfg
    }

    /// The compact spec string this scenario round-trips through
    /// ([`Scenario::from_spec`]); whitespace-separated `key=value` pairs.
    #[must_use]
    pub fn spec(&self) -> String {
        format!(
            "app={} cores={} refs={} cells={} policy={} retention-ns={} geom={} trace={} \
             protocol={} profile={} seed={}",
            self.app.name(),
            self.cores,
            self.refs_per_thread,
            match self.cells {
                CellTech::Sram => "sram",
                CellTech::Edram => "edram",
            },
            self.policy.label(),
            self.retention_ns,
            self.geometry.label(),
            self.via_trace,
            self.protocol.label(),
            self.profile.label(),
            self.seed,
        )
    }

    /// Parses a spec string produced by [`Scenario::spec`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed pair.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        // Defaults for omitted keys: the smallest interesting scenario.
        let mut s = Scenario {
            seed: 1,
            cores: 2,
            refs_per_thread: 400,
            app: AppPreset::Lu,
            cells: CellTech::Edram,
            policy: RefreshPolicy::recommended(),
            retention_ns: 50_000,
            geometry: GeometryClass::Small,
            via_trace: false,
            protocol: CoherenceProtocol::Mesi,
            profile: RetentionProfile::Uniform,
        };
        for pair in spec.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("`{pair}` is not a key=value pair"))?;
            let bad = |what: &str| format!("bad {what} `{value}` in `{pair}`");
            match key {
                "app" => s.app = AppPreset::from_str(value).map_err(|_| bad("app"))?,
                "cores" => s.cores = value.parse().map_err(|_| bad("core count"))?,
                "refs" => s.refs_per_thread = value.parse().map_err(|_| bad("ref count"))?,
                "cells" => {
                    s.cells = match value {
                        "sram" => CellTech::Sram,
                        "edram" => CellTech::Edram,
                        _ => return Err(bad("cell technology")),
                    }
                }
                "policy" => s.policy = value.parse().map_err(|_| bad("policy label"))?,
                "retention-ns" => s.retention_ns = value.parse().map_err(|_| bad("retention"))?,
                "geom" => {
                    s.geometry = GeometryClass::parse(value).ok_or_else(|| bad("geometry"))?
                }
                "trace" => s.via_trace = value.parse().map_err(|_| bad("trace flag"))?,
                "protocol" => s.protocol = value.parse().map_err(|_| bad("protocol"))?,
                "profile" => s.profile = value.parse().map_err(|_| bad("retention profile"))?,
                "seed" => s.seed = value.parse().map_err(|_| bad("seed"))?,
                other => return Err(format!("unknown scenario key `{other}`")),
            }
        }
        Ok(s)
    }

    /// The ready-to-paste command that re-runs exactly this scenario.
    #[must_use]
    pub fn repro_command(&self) -> String {
        format!("refrint-cli check --scenario \"{}\"", self.spec())
    }

    /// Candidate simplifications, most aggressive first. Each changes one
    /// axis; the shrinker keeps a candidate only if it still diverges.
    #[must_use]
    pub fn shrink_candidates(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        if self.refs_per_thread > 100 {
            out.push(Scenario {
                refs_per_thread: (self.refs_per_thread / 2).max(50),
                ..self.clone()
            });
        }
        if self.cores > 1 {
            out.push(Scenario {
                cores: match self.cores {
                    16 | 8 => 4,
                    4 => 2,
                    _ => 1,
                },
                ..self.clone()
            });
        }
        if self.via_trace {
            out.push(Scenario {
                via_trace: false,
                ..self.clone()
            });
        }
        match self.geometry {
            GeometryClass::Paper => out.push(Scenario {
                geometry: GeometryClass::Small,
                retention_ns: self.retention_ns.max(257),
                ..self.clone()
            }),
            GeometryClass::Small => out.push(Scenario {
                geometry: GeometryClass::Mini,
                ..self.clone()
            }),
            GeometryClass::Mini => {}
        }
        if self.protocol != CoherenceProtocol::Mesi {
            out.push(Scenario {
                protocol: CoherenceProtocol::Mesi,
                ..self.clone()
            });
        }
        if !self.profile.is_default() {
            out.push(Scenario {
                profile: RetentionProfile::Uniform,
                ..self.clone()
            });
        }
        if self.app != AppPreset::Lu {
            out.push(Scenario {
                app: AppPreset::Lu,
                ..self.clone()
            });
        }
        out
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for i in 0..64 {
            let a = Scenario::generate(0xC0FFEE, i);
            let b = Scenario::generate(0xC0FFEE, i);
            assert_eq!(a, b);
            a.config().validate_typed().expect("scenario must be valid");
        }
    }

    #[test]
    fn spec_round_trips() {
        for i in 0..64 {
            let s = Scenario::generate(42, i);
            let parsed = Scenario::from_spec(&s.spec()).unwrap();
            assert_eq!(parsed, s, "spec `{}`", s.spec());
        }
    }

    #[test]
    fn degenerate_shapes_are_reachable() {
        let scenarios: Vec<Scenario> = (0..256).map(|i| Scenario::generate(7, i)).collect();
        assert!(scenarios.iter().any(|s| s.cores == 1), "1-core scenarios");
        assert!(
            scenarios.iter().any(|s| s.geometry == GeometryClass::Mini),
            "single-set caches"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.retention_ns == s.geometry.retention_points()[0]),
            "retention at the RetentionTooShort boundary"
        );
        assert!(scenarios.iter().any(|s| s.via_trace), "trace round trips");
        assert!(
            scenarios.iter().any(|s| s.cells == CellTech::Sram),
            "SRAM scenarios"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.protocol == CoherenceProtocol::Dragon),
            "Dragon scenarios"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| matches!(s.profile, RetentionProfile::Normal { .. })),
            "normal retention profiles"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| matches!(s.profile, RetentionProfile::Bimodal { .. })),
            "bimodal retention profiles"
        );
        assert!(
            scenarios
                .iter()
                .all(|s| s.cells != CellTech::Sram || s.profile.is_default()),
            "SRAM scenarios never carry a variation profile"
        );
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler() {
        let s = Scenario::generate(1, 3);
        for c in s.shrink_candidates() {
            assert_ne!(c, s);
            c.config().validate_typed().expect("shrunk scenario valid");
        }
    }

    #[test]
    fn malformed_specs_are_described() {
        assert!(Scenario::from_spec("nonsense").is_err());
        assert!(Scenario::from_spec("cores=zero").is_err());
        assert!(Scenario::from_spec("planet=mars").is_err());
        assert!(Scenario::from_spec("protocol=moesi").is_err());
        assert!(Scenario::from_spec("profile=normal(0)").is_err());
    }

    #[test]
    fn old_specs_default_to_mesi_uniform() {
        let s = Scenario::from_spec("app=lu cores=2 seed=9").unwrap();
        assert_eq!(s.protocol, CoherenceProtocol::Mesi);
        assert_eq!(s.profile, RetentionProfile::Uniform);
    }
}
