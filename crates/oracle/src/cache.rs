//! A naive set-associative cache with explicit true-LRU bookkeeping.
//!
//! Ways are `Vec<Option<OracleLine>>`; each set keeps a separate MRU-first
//! recency list that is linearly rebuilt on every access. Victim selection
//! scans for the lowest-numbered free way, then falls back to the back of
//! the recency list. Counters live in a `BTreeMap` keyed by name. Nothing
//! here is shared with `refrint-mem` except the [`MesiState`] vocabulary
//! and the [`Cycle`] clock.

use std::collections::BTreeMap;

use refrint_engine::stats::StatRegistry;
use refrint_engine::time::Cycle;
use refrint_mem::line::MesiState;

/// One cache line as the oracle tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleLine {
    /// The line address stored in this way.
    pub addr: u64,
    /// MESI state.
    pub state: MesiState,
    /// Cycle of the last normal access (fill, read hit, write hit).
    pub last_touch: Cycle,
}

impl OracleLine {
    /// Whether the line holds valid data.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.state.is_valid()
    }

    /// Whether the line is dirty (MESI Modified).
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.state.is_dirty()
    }
}

/// One set: ways plus an MRU-first recency list.
#[derive(Debug, Clone)]
struct OracleSet {
    ways: Vec<Option<OracleLine>>,
    /// Way indices from most- to least-recently used.
    recency: Vec<usize>,
}

impl OracleSet {
    fn new(ways: usize) -> Self {
        OracleSet {
            ways: vec![None; ways],
            recency: (0..ways).collect(),
        }
    }

    /// The way holding a valid copy of `addr`, searching ways in order.
    fn find(&self, addr: u64) -> Option<usize> {
        self.ways
            .iter()
            .position(|w| w.is_some_and(|l| l.addr == addr && l.is_valid()))
    }

    /// Moves `way` to the front of the recency list.
    fn touch_way(&mut self, way: usize) {
        let pos = self
            .recency
            .iter()
            .position(|&w| w == way)
            .expect("every way is in the recency list");
        self.recency.remove(pos);
        self.recency.insert(0, way);
    }

    /// The fill victim: the lowest-numbered way without a valid line, or
    /// the least-recently-used way if every way is valid.
    fn pick_victim(&self) -> usize {
        if let Some(free) = self
            .ways
            .iter()
            .position(|w| !w.is_some_and(|l| l.is_valid()))
        {
            return free;
        }
        *self.recency.last().expect("associativity is non-zero")
    }
}

/// A naive set-associative cache array.
#[derive(Debug, Clone)]
pub struct OracleCache {
    sets: Vec<OracleSet>,
    num_sets: u64,
    counters: BTreeMap<&'static str, u64>,
}

impl OracleCache {
    /// Creates an empty cache of `num_sets` sets × `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero (geometry validation upstream
    /// guarantees this).
    #[must_use]
    pub fn new(num_sets: u64, ways: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "degenerate geometry");
        OracleCache {
            sets: (0..num_sets).map(|_| OracleSet::new(ways)).collect(),
            num_sets,
            counters: BTreeMap::new(),
        }
    }

    fn bump(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    fn set_of(&self, addr: u64) -> usize {
        // Same mapping as the optimized array: low line-address bits.
        (addr % self.num_sets) as usize
    }

    /// Looks up `addr` as a normal access at `now`: counts a hit or miss,
    /// updates recency and last-touch, and returns the line *as it was
    /// before this access touched it*.
    pub fn lookup_prev(&mut self, addr: u64, now: Cycle) -> Option<OracleLine> {
        let set = self.set_of(addr);
        match self.sets[set].find(addr) {
            Some(way) => {
                self.sets[set].touch_way(way);
                let line = self.sets[set].ways[way]
                    .as_mut()
                    .expect("found way is occupied");
                let prev = *line;
                line.last_touch = now;
                self.bump("hits", 1);
                Some(prev)
            }
            None => {
                self.bump("misses", 1);
                None
            }
        }
    }

    /// Reads a resident line: recency + touch + read counter.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn read_hit(&mut self, addr: u64, now: Cycle) {
        let set = self.set_of(addr);
        let way = self.sets[set].find(addr).expect("read_hit on missing line");
        self.sets[set].touch_way(way);
        let line = self.sets[set].ways[way]
            .as_mut()
            .expect("found way is occupied");
        line.last_touch = now;
        self.bump("reads", 1);
    }

    /// Writes a resident line: upgrades it to Modified (Dragon's
    /// SharedModified stays put — writes there keep broadcasting updates),
    /// recency + touch + write counter.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn write_hit(&mut self, addr: u64, now: Cycle) {
        let set = self.set_of(addr);
        let way = self.sets[set]
            .find(addr)
            .expect("write_hit on missing line");
        self.sets[set].touch_way(way);
        let line = self.sets[set].ways[way]
            .as_mut()
            .expect("found way is occupied");
        if line.state != MesiState::SharedModified {
            line.state = MesiState::Modified;
        }
        line.last_touch = now;
        self.bump("writes", 1);
    }

    /// Fills `addr` in `state` at `now`, returning any valid line displaced.
    pub fn fill(&mut self, addr: u64, state: MesiState, now: Cycle) -> Option<OracleLine> {
        let set = self.set_of(addr);
        debug_assert!(self.sets[set].find(addr).is_none(), "double fill");
        let way = self.sets[set].pick_victim();
        let evicted = self.sets[set].ways[way].filter(OracleLine::is_valid);
        self.sets[set].ways[way] = Some(OracleLine {
            addr,
            state,
            last_touch: now,
        });
        self.sets[set].touch_way(way);
        self.bump("fills", 1);
        if let Some(victim) = evicted {
            self.bump("evictions", 1);
            if victim.is_dirty() {
                self.bump("dirty_evictions", 1);
            }
        }
        evicted
    }

    /// Changes a resident line's state (coherence downgrades/upgrades);
    /// silently does nothing when the line is absent.
    pub fn set_state(&mut self, addr: u64, state: MesiState) {
        let set = self.set_of(addr);
        if let Some(way) = self.sets[set].find(addr) {
            self.sets[set].ways[way]
                .as_mut()
                .expect("found way is occupied")
                .state = state;
        }
    }

    /// Applies a Dragon update broadcast to a resident line: it becomes a
    /// clean Shared replica touched at `now`. Recency is deliberately left
    /// alone — the optimized simulator rewrites the line in place without
    /// an LRU access. Silently does nothing when the line is absent.
    pub fn apply_update(&mut self, addr: u64, now: Cycle) {
        let set = self.set_of(addr);
        if let Some(way) = self.sets[set].find(addr) {
            let line = self.sets[set].ways[way]
                .as_mut()
                .expect("found way is occupied");
            line.state = MesiState::Shared;
            line.last_touch = now;
        }
    }

    /// Invalidates `addr` if present, returning the line as it was.
    pub fn invalidate(&mut self, addr: u64) -> Option<OracleLine> {
        let set = self.set_of(addr);
        let way = self.sets[set].find(addr)?;
        let line = self.sets[set].ways[way].expect("found way is occupied");
        self.sets[set].ways[way]
            .as_mut()
            .expect("found way is occupied")
            .state = MesiState::Invalid;
        self.bump("invalidations", 1);
        Some(line)
    }

    /// A copy of the resident line at `addr` (no recency or touch update).
    #[must_use]
    pub fn line(&self, addr: u64) -> Option<OracleLine> {
        let set = self.set_of(addr);
        self.sets[set]
            .find(addr)
            .map(|way| self.sets[set].ways[way].expect("found way is occupied"))
    }

    /// Marks a resident line dirty at `now` (the absorbed-writeback path).
    /// Silently does nothing when the line is absent.
    pub fn write_resident(&mut self, addr: u64, now: Cycle) {
        let set = self.set_of(addr);
        if let Some(way) = self.sets[set].find(addr) {
            let line = self.sets[set].ways[way]
                .as_mut()
                .expect("found way is occupied");
            line.state = MesiState::Modified;
            line.last_touch = now;
        }
    }

    /// Applies a refresh-engine write-back to a resident line: Modified
    /// becomes Shared, touch metadata untouched.
    pub fn write_back_resident(&mut self, addr: u64) {
        let set = self.set_of(addr);
        if let Some(way) = self.sets[set].find(addr) {
            let line = self.sets[set].ways[way]
                .as_mut()
                .expect("found way is occupied");
            if line.state == MesiState::Modified {
                line.state = MesiState::Shared;
            }
        }
    }

    /// Every valid resident line, in set order then way order (a fresh
    /// allocation per call — the oracle does not reuse scratch buffers).
    #[must_use]
    pub fn valid_lines(&self) -> Vec<OracleLine> {
        self.sets
            .iter()
            .flat_map(|s| s.ways.iter().flatten().filter(|l| l.is_valid()))
            .copied()
            .collect()
    }

    /// The cache's counters as a [`StatRegistry`], mirroring the optimized
    /// array's shape: only counters that have fired appear.
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        let mut out = StatRegistry::new();
        for (name, value) in &self.counters {
            if *value > 0 {
                out.add(name, *value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_prefers_free_ways_then_evicts_oldest() {
        let mut c = OracleCache::new(1, 2);
        assert!(c.fill(0, MesiState::Shared, Cycle::new(1)).is_none());
        assert!(c.fill(1, MesiState::Shared, Cycle::new(2)).is_none());
        // Touch line 0 so line 1 is LRU.
        assert!(c.lookup_prev(0, Cycle::new(3)).is_some());
        let evicted = c.fill(2, MesiState::Shared, Cycle::new(4)).unwrap();
        assert_eq!(evicted.addr, 1);
    }

    #[test]
    fn invalidated_way_is_refilled_first() {
        let mut c = OracleCache::new(1, 2);
        c.fill(0, MesiState::Shared, Cycle::ZERO);
        c.fill(1, MesiState::Modified, Cycle::ZERO);
        let removed = c.invalidate(0).unwrap();
        assert_eq!(removed.addr, 0);
        assert!(c.fill(2, MesiState::Shared, Cycle::ZERO).is_none());
        assert_eq!(c.valid_lines().len(), 2);
        assert_eq!(c.stats().get("invalidations"), 1);
    }

    #[test]
    fn lookup_prev_returns_pre_touch_metadata() {
        let mut c = OracleCache::new(4, 2);
        c.fill(9, MesiState::Exclusive, Cycle::new(5));
        let prev = c.lookup_prev(9, Cycle::new(50)).unwrap();
        assert_eq!(prev.last_touch, Cycle::new(5));
        assert_eq!(c.line(9).unwrap().last_touch, Cycle::new(50));
    }
}
