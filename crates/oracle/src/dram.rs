//! A naive re-derivation of the off-chip DRAM model: fixed 40-cycle access
//! latency, line-interleaved channels, and a minimum inter-command gap per
//! channel that turns bursts of traffic into queueing delay.
//!
//! Matching the optimized simulator, only LLC miss *fetches* are issued to
//! the channel model; write-backs are counted in the energy accounting but
//! never occupy a channel.

use refrint_engine::stats::StatRegistry;
use refrint_engine::time::Cycle;

/// Naive fixed-latency, bandwidth-limited DRAM.
#[derive(Debug, Clone)]
pub struct OracleDram {
    access_latency: Cycle,
    min_gap: Cycle,
    channel_free_at: Vec<Cycle>,
    reads: u64,
    queue_delay_cycles: u64,
}

impl OracleDram {
    /// The paper's parameters: 40-cycle access, 4 channels, 4-cycle gap.
    #[must_use]
    pub fn paper_default() -> Self {
        OracleDram {
            access_latency: Cycle::new(40),
            min_gap: Cycle::new(4),
            channel_free_at: vec![Cycle::ZERO; 4],
            reads: 0,
            queue_delay_cycles: 0,
        }
    }

    /// Issues a line fetch of `line_addr` at `now`; returns the completion
    /// cycle including any queueing delay on the line's channel.
    pub fn read(&mut self, line_addr: u64, now: Cycle) -> Cycle {
        self.reads += 1;
        let ch = (line_addr % self.channel_free_at.len() as u64) as usize;
        let start = if now >= self.channel_free_at[ch] {
            now
        } else {
            self.channel_free_at[ch]
        };
        self.queue_delay_cycles += (start - now).raw();
        self.channel_free_at[ch] = start + self.min_gap;
        start + self.access_latency
    }

    /// DRAM counters as a [`StatRegistry`] (fired counters only).
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        let mut out = StatRegistry::new();
        if self.reads > 0 {
            out.add("reads", self.reads);
            out.add("queue_delay_cycles", self.queue_delay_cycles);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_complete_after_the_fixed_latency() {
        let mut d = OracleDram::paper_default();
        assert_eq!(d.read(0, Cycle::new(100)), Cycle::new(140));
    }

    #[test]
    fn same_channel_back_to_back_queues() {
        let mut d = OracleDram::paper_default();
        let first = d.read(4, Cycle::ZERO);
        let second = d.read(8, Cycle::ZERO); // lines 4 and 8 share channel 0
        assert_eq!(first, Cycle::new(40));
        assert_eq!(second, Cycle::new(44));
        assert_eq!(d.stats().get("queue_delay_cycles"), 4);
    }
}
