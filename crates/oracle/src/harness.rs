//! The differential-conformance harness: run oracle and optimized
//! simulator side by side on seeded scenarios, diff the reports field by
//! field, and shrink any divergence to a minimal repro.

use std::fmt;
use std::path::PathBuf;

use refrint::replay;
use refrint::report::SimReport;
use refrint::system::CmpSystem;
use refrint_trace::{TraceFile, TraceFormat};
use refrint_workloads::trace::MemRef;

use crate::diff::{diff_reports, FieldDiff};
use crate::scenario::Scenario;
use crate::system::{Fault, OracleError, OracleSystem};

/// A confirmed oracle/simulator disagreement, with its shrunk minimal
/// repro.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The scenario that first diverged.
    pub scenario: Scenario,
    /// The fields it diverged on.
    pub diffs: Vec<FieldDiff>,
    /// The smallest still-diverging scenario the shrinker found.
    pub shrunk: Scenario,
    /// The fields the shrunk scenario diverges on.
    pub shrunk_diffs: Vec<FieldDiff>,
    /// How many shrink steps were applied.
    pub shrink_steps: usize,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "oracle and simulator disagree")?;
        writeln!(f, "  first divergence : {}", self.scenario.spec())?;
        for d in &self.diffs {
            writeln!(f, "    {d}")?;
        }
        writeln!(
            f,
            "  minimal repro    : {} ({} shrink steps)",
            self.shrunk.spec(),
            self.shrink_steps
        )?;
        for d in &self.shrunk_diffs {
            writeln!(f, "    {d}")?;
        }
        write!(f, "  reproduce with   : {}", self.shrunk.repro_command())
    }
}

/// The result of a conformance run.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// How many scenarios ran (stops at the first divergence).
    pub scenarios_run: u64,
    /// The first divergence found, shrunk — `None` means full agreement.
    pub divergence: Option<Divergence>,
}

/// Runs one scenario through both implementations and returns the field
/// diffs (empty = agreement).
///
/// # Errors
///
/// [`OracleError`] if the scenario cannot be built or a trace round trip
/// fails — never a report mismatch, which is data, not an error.
pub fn run_scenario(scenario: &Scenario) -> Result<Vec<FieldDiff>, OracleError> {
    run_scenario_with(scenario, None)
}

/// Like [`run_scenario`], optionally with a [`Fault`] injected into the
/// oracle (validation aid).
///
/// # Errors
///
/// See [`run_scenario`].
pub fn run_scenario_with(
    scenario: &Scenario,
    fault: Option<Fault>,
) -> Result<Vec<FieldDiff>, OracleError> {
    let (oracle, simulator) = run_pair(scenario, fault)?;
    Ok(diff_reports(&oracle, &simulator))
}

/// Runs `count` scenarios seeded from `master_seed`; on the first
/// divergence, shrinks it and stops. `progress` is called before each
/// scenario with its index.
///
/// # Errors
///
/// See [`run_scenario`].
pub fn run_check(
    master_seed: u64,
    count: u64,
    fault: Option<Fault>,
    progress: impl FnMut(u64, &Scenario),
) -> Result<CheckOutcome, OracleError> {
    run_check_pinned(master_seed, count, None, fault, progress)
}

/// Like [`run_check`], with every generated scenario's coherence protocol
/// optionally pinned — the hook behind `refrint-cli check --protocol` and
/// the per-protocol CI conformance matrix, which needs each leg to
/// exercise one transition table over the full scenario stream rather
/// than the generator's random protocol mix.
///
/// # Errors
///
/// See [`run_scenario`].
pub fn run_check_pinned(
    master_seed: u64,
    count: u64,
    protocol: Option<refrint::CoherenceProtocol>,
    fault: Option<Fault>,
    mut progress: impl FnMut(u64, &Scenario),
) -> Result<CheckOutcome, OracleError> {
    for index in 0..count {
        let mut scenario = Scenario::generate(master_seed, index);
        if let Some(protocol) = protocol {
            scenario.protocol = protocol;
        }
        progress(index, &scenario);
        let diffs = run_scenario_with(&scenario, fault)?;
        if !diffs.is_empty() {
            let divergence = shrink(scenario, diffs, fault)?;
            return Ok(CheckOutcome {
                scenarios_run: index + 1,
                divergence: Some(divergence),
            });
        }
    }
    Ok(CheckOutcome {
        scenarios_run: count,
        divergence: None,
    })
}

/// Greedily simplifies a diverging scenario: repeatedly applies the first
/// shrink candidate that still diverges, until none does.
fn shrink(
    scenario: Scenario,
    diffs: Vec<FieldDiff>,
    fault: Option<Fault>,
) -> Result<Divergence, OracleError> {
    let mut current = scenario.clone();
    let mut current_diffs = diffs.clone();
    let mut steps = 0;
    // Each accepted step strictly simplifies one axis; 64 steps bounds
    // even the most gradual descent.
    'outer: for _ in 0..64 {
        for candidate in current.shrink_candidates() {
            // A candidate that errors (e.g. an unsupported shrink) is
            // skipped, not fatal — the original repro is already in hand.
            let Ok(d) = run_scenario_with(&candidate, fault) else {
                continue;
            };
            if !d.is_empty() {
                current = candidate;
                current_diffs = d;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    Ok(Divergence {
        scenario,
        diffs,
        shrunk: current,
        shrunk_diffs: current_diffs,
        shrink_steps: steps,
    })
}

/// Runs the scenario through both implementations.
fn run_pair(
    scenario: &Scenario,
    fault: Option<Fault>,
) -> Result<(SimReport, SimReport), OracleError> {
    let cfg = scenario.config();
    let mut oracle = match fault {
        None => OracleSystem::new(cfg.clone())?,
        Some(fault) => OracleSystem::with_fault(cfg.clone(), fault)?,
    };
    let mut simulator =
        CmpSystem::new(cfg.clone()).map_err(|e| OracleError::InvalidConfig(e.to_string()))?;
    let model = scenario.app.model();

    if !scenario.via_trace {
        let oracle_report = oracle.run_model(&model)?;
        let sim_report = simulator.run_model(&model);
        return Ok((oracle_report, sim_report));
    }

    // Trace round trip: capture once, replay the file through the
    // simulator's streaming decoder, and feed the oracle the same records.
    let path = trace_path(scenario);
    let result = (|| {
        replay::capture_to_path(&cfg, &model, &path, TraceFormat::Binary)
            .map_err(|e| OracleError::Trace(e.to_string()))?;
        let trace = TraceFile::open(&path).map_err(|e| OracleError::Trace(e.to_string()))?;
        let meta = trace.meta().clone();
        let streams = (0..meta.threads)
            .map(|t| {
                trace
                    .thread(t)
                    .and_then(|refs| refs.collect::<Result<Vec<MemRef>, _>>())
                    .map(Vec::into_iter)
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| OracleError::Trace(e.to_string()))?;
        let oracle_report = oracle.run_streams(&meta.workload, streams)?;
        let sim_report = replay::replay(&mut simulator, &trace)
            .map_err(|e| OracleError::Trace(e.to_string()))?;
        Ok((oracle_report, sim_report))
    })();
    std::fs::remove_file(&path).ok();
    result
}

fn trace_path(scenario: &Scenario) -> PathBuf {
    // Parallel tests in one process can run the same scenario (same seed)
    // concurrently; a per-call counter keeps their capture files disjoint.
    use std::sync::atomic::{AtomicU64, Ordering};
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "refrint-oracle-{}-{}-{}.rft",
        std::process::id(),
        scenario.seed,
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_scenarios_agree() {
        let outcome = run_check(0xFEED, 8, None, |_, _| {}).unwrap();
        assert_eq!(outcome.scenarios_run, 8);
        assert!(
            outcome.divergence.is_none(),
            "{}",
            outcome.divergence.unwrap()
        );
    }

    #[test]
    fn injected_fault_is_caught_and_shrunk() {
        let outcome =
            run_check(0xFEED, 64, Some(Fault::DecayCleanBudgetOffByOne), |_, _| {}).unwrap();
        let divergence = outcome.divergence.expect("the fault must be caught");
        assert!(divergence.shrunk.cores <= 4, "{}", divergence.shrunk.spec());
        assert!(
            divergence.shrunk.refs_per_thread <= 1_000,
            "{}",
            divergence.shrunk.spec()
        );
        assert!(!divergence.shrunk_diffs.is_empty());
        let text = divergence.to_string();
        assert!(text.contains("refrint-cli check --scenario"), "{text}");
    }

    #[test]
    fn pinned_protocol_reaches_every_scenario() {
        for protocol in [
            refrint::CoherenceProtocol::Mesi,
            refrint::CoherenceProtocol::Dragon,
        ] {
            let mut seen = 0;
            let outcome = run_check_pinned(0xFEED, 8, Some(protocol), None, |_, scenario| {
                assert_eq!(scenario.protocol, protocol, "{}", scenario.spec());
                seen += 1;
            })
            .unwrap();
            assert_eq!(seen, 8);
            assert!(
                outcome.divergence.is_none(),
                "{}",
                outcome.divergence.unwrap()
            );
        }
    }

    #[test]
    fn dragon_fault_is_caught_and_shrinks_to_a_dragon_repro() {
        // The planted update-vs-invalidate divergence only fires under
        // Dragon, so the harness must (a) find a Dragon scenario that
        // exposes it and (b) never shrink the protocol axis away.
        let outcome =
            run_check(0xFEED, 64, Some(Fault::DragonUpdateInvalidates), |_, _| {}).unwrap();
        let divergence = outcome.divergence.expect("the Dragon fault must be caught");
        assert_eq!(
            divergence.shrunk.protocol,
            refrint::CoherenceProtocol::Dragon,
            "{}",
            divergence.shrunk.spec()
        );
        assert!(!divergence.shrunk_diffs.is_empty());
        let command = divergence.shrunk.repro_command();
        assert!(
            command.contains("refrint-cli check --scenario"),
            "{command}"
        );
        assert!(command.contains("protocol=dragon"), "{command}");
        // The repro really is minimal: every further shrink agrees.
        for candidate in divergence.shrunk.shrink_candidates() {
            if let Ok(d) = run_scenario_with(&candidate, Some(Fault::DragonUpdateInvalidates)) {
                assert!(d.is_empty(), "shrink was not minimal: {}", candidate.spec());
            }
        }
    }
}
