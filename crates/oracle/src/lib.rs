//! `refrint-oracle`: an independent, deliberately naive reference model of
//! the Refrint simulator, plus a randomized differential-conformance
//! harness.
//!
//! Every other correctness test in the workspace checks the optimized
//! simulator against *itself* (determinism, trace-replay byte-identity,
//! serve byte-compares), so a semantic bug that predates those tests — or
//! is introduced by a future hot-path optimisation — would be invisible.
//! This crate closes that hole the way CounterPoint/AnICA-style work
//! validates microarchitectural models: by refutation against a second,
//! independently written implementation.
//!
//! # The oracle
//!
//! [`OracleSystem`] consumes the same inputs as the optimized simulator
//! (a [`SystemConfig`](refrint::config::SystemConfig) plus per-thread
//! reference streams) and produces the same
//! [`SimReport`](refrint::report::SimReport) — but it is written for
//! obviousness, not speed:
//!
//! * **Retention decay / refresh settlement** walks refresh opportunities
//!   one at a time through the Figure 4.1 state machine
//!   ([`decay::OracleDecay`]) instead of the O(1) lazy algebra.
//! * **Caches** are per-set `Vec<Option<Line>>` with an explicit MRU list
//!   and a linear-scan LRU victim search ([`cache::OracleCache`]).
//! * **The directory protocol** keeps owner/sharer state in a
//!   `HashMap` + `BTreeSet` ([`coherence::OracleDirectory`]).
//! * **DRAM and energy accounting** are re-derived from first principles
//!   ([`dram::OracleDram`] and the counter accumulation in
//!   [`system::OracleSystem`]); only the final counts → joules conversion
//!   reuses the shared pure function, so diffing the counts covers the
//!   accounting.
//! * **NoC hop counts** come from a breadth-first search over the torus
//!   links rather than closed-form ring distances.
//!
//! # The harness
//!
//! [`scenario`] generates seeded random scenarios (core count × cache
//! geometry × cell technology × retention × policy × workload × optional
//! trace round-trip, including degenerate shapes: one core, single-set
//! caches, retention at the `RetentionTooShort` boundary). [`harness`]
//! runs oracle and simulator side by side, diffs the reports field by
//! field ([`diff`]), and on divergence *shrinks* the scenario (fewer
//! refs, fewer cores, synthetic instead of trace, smaller caches) to a
//! minimal repro printed as a ready-to-paste `refrint-cli check
//! --scenario "…"` command.
//!
//! The harness is wired into `tests/conformance.rs` (quick mode, ≥200
//! scenarios in CI), the `refrint-cli check` subcommand (deep local
//! runs), and the `conformance` CI job. See `docs/testing.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod coherence;
pub mod decay;
pub mod diff;
pub mod dram;
pub mod harness;
pub mod refresh;
pub mod scenario;
pub mod system;

pub use diff::{diff_reports, FieldDiff};
pub use harness::{run_check, CheckOutcome, Divergence};
pub use scenario::{GeometryClass, Scenario};
pub use system::{Fault, OracleError, OracleSystem};
