//! Naive, opportunity-by-opportunity refresh settlement.
//!
//! The optimized simulator settles an idle line in O(1) with the lazy
//! decay-schedule algebra (`refrint-edram::schedule`). The oracle instead
//! walks every refresh opportunity in the interval and applies the paper's
//! Figure 4.1 state machine one step at a time — slower, allocation-happy,
//! and obviously correct. Both consume the same policy *descriptor*
//! ([`RefreshPolicy`], which is configuration input, not implementation);
//! everything about what the descriptor *means* over time is re-derived
//! here.

use refrint_edram::policy::{RefreshPolicy, TimePolicy};
use refrint_edram::schedule::{LineKind, Settlement};
use refrint_engine::time::Cycle;

/// What the data policy does to a line at one refresh opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Refresh,
    WriteBack,
    Invalidate,
    Skip,
}

/// A refresh policy bound to one cache, evaluated by replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleDecay {
    policy: RefreshPolicy,
    /// Line retention period (the Periodic opportunity interval).
    retention: Cycle,
    /// Sentry-bit period (the Refrint opportunity interval):
    /// retention minus the safety margin.
    sentry_period: Cycle,
    /// Phase offset of the Periodic boundaries.
    offset: Cycle,
    /// Validation aid: grant clean lines one extra refresh before
    /// invalidation (see [`crate::system::Fault`]).
    extra_clean_refresh: bool,
}

impl OracleDecay {
    /// Binds `policy` to a cache with the given retention period, sentry
    /// margin and Periodic phase offset.
    ///
    /// # Panics
    ///
    /// Panics if the margin is not smaller than the (non-zero) retention
    /// period — the same contract as the optimized schedule.
    #[must_use]
    pub fn new(policy: RefreshPolicy, retention: Cycle, margin: Cycle, offset: Cycle) -> Self {
        assert!(retention > Cycle::ZERO, "retention must be non-zero");
        assert!(margin < retention, "margin must be smaller than retention");
        OracleDecay {
            policy,
            retention,
            sentry_period: retention - margin,
            offset: offset % retention,
            extra_clean_refresh: false,
        }
    }

    /// Enables the injected off-by-one in clean-budget settlement.
    pub(crate) fn inject_clean_budget_off_by_one(&mut self) {
        self.extra_clean_refresh = true;
    }

    /// The interval between successive opportunities for an idle line.
    #[must_use]
    pub fn opportunity_period(&self) -> Cycle {
        match self.policy.time {
            TimePolicy::Periodic => self.retention,
            TimePolicy::Refrint => self.sentry_period,
        }
    }

    /// The `k`-th (1-based) refresh opportunity strictly after `touch`,
    /// found by stepping: Refrint sentries follow the touch, Periodic
    /// boundaries are the global grid `offset + j * retention` for `j >= 1`.
    #[must_use]
    pub fn opportunity(&self, touch: Cycle, k: u64) -> Cycle {
        debug_assert!(k >= 1, "opportunities are 1-based");
        match self.policy.time {
            TimePolicy::Refrint => touch + self.sentry_period * k,
            TimePolicy::Periodic => {
                let mut boundary = self.offset + self.retention;
                while boundary <= touch {
                    boundary += self.retention;
                }
                boundary + self.retention * (k - 1)
            }
        }
    }

    /// Number of refresh opportunities in `(touch, until]`, counted one by
    /// one.
    #[must_use]
    pub fn opportunities_between(&self, touch: Cycle, until: Cycle) -> u64 {
        let mut count = 0;
        let mut k = 1;
        while self.opportunity(touch, k) <= until {
            count += 1;
            k += 1;
        }
        count
    }

    /// The action the data policy takes on a line of `kind` that has already
    /// received `consecutive` refreshes since its last touch or state
    /// change.
    fn step(&self, kind: LineKind, consecutive: u64) -> Step {
        let data = self.policy.data;
        match kind {
            LineKind::Invalid => {
                if data.refreshes_invalid_lines() {
                    Step::Refresh
                } else {
                    Step::Skip
                }
            }
            LineKind::Dirty => match data.dirty_budget() {
                Some(n) if consecutive >= u64::from(n) => Step::WriteBack,
                _ => Step::Refresh,
            },
            LineKind::Clean => match data.clean_budget() {
                Some(m) => {
                    let budget = u64::from(m) + u64::from(self.extra_clean_refresh);
                    if consecutive >= budget {
                        Step::Invalidate
                    } else {
                        Step::Refresh
                    }
                }
                None => Step::Refresh,
            },
        }
    }

    /// Settles a line of `kind`, last touched at `touch`, over
    /// `(touch, until]` by replaying every opportunity.
    #[must_use]
    pub fn settle(&self, kind: LineKind, touch: Cycle, until: Cycle) -> Settlement {
        let mut refreshes = 0;
        let mut writeback_at = None;
        let mut invalidated_at = None;
        let mut current = kind;
        let mut consecutive = 0;

        let mut k = 1;
        loop {
            let at = self.opportunity(touch, k);
            if at > until {
                break;
            }
            k += 1;
            match self.step(current, consecutive) {
                Step::Refresh => {
                    refreshes += 1;
                    consecutive += 1;
                }
                Step::WriteBack => {
                    writeback_at = Some(at);
                    current = LineKind::Clean;
                    consecutive = 0;
                }
                Step::Invalidate | Step::Skip => {
                    if current == LineKind::Invalid {
                        // Nothing will ever change for this line again.
                        break;
                    }
                    invalidated_at = Some(at);
                    current = LineKind::Invalid;
                    consecutive = 0;
                }
            }
        }

        Settlement {
            refreshes,
            writeback_at,
            invalidated_at,
            final_kind: current,
        }
    }

    /// The cycle at which an idle line of `kind` touched at `touch` loses
    /// its data, found by walking opportunities until the state machine
    /// invalidates it — or `None` if the policy refreshes it forever.
    #[must_use]
    pub fn invalidation_time(&self, kind: LineKind, touch: Cycle) -> Option<Cycle> {
        match kind {
            LineKind::Invalid => None,
            LineKind::Clean => self.policy.data.clean_budget().map(|_| {
                self.walk_to_invalidation(LineKind::Clean, touch)
                    .expect("a finite clean budget always expires")
            }),
            LineKind::Dirty => {
                // A dirty line only ever dies if it is first written back
                // (finite dirty budget) and then decays (finite clean
                // budget).
                if self.policy.data.dirty_budget().is_none()
                    || self.policy.data.clean_budget().is_none()
                {
                    return None;
                }
                Some(
                    self.walk_to_invalidation(LineKind::Dirty, touch)
                        .expect("finite budgets always expire"),
                )
            }
        }
    }

    fn walk_to_invalidation(&self, kind: LineKind, touch: Cycle) -> Option<Cycle> {
        let mut current = kind;
        let mut consecutive = 0;
        let mut k = 1;
        // Budgets are u32; a walk of dirty + clean budget + 2 write-back /
        // invalidate steps always terminates.
        loop {
            let at = self.opportunity(touch, k);
            k += 1;
            match self.step(current, consecutive) {
                Step::Refresh => consecutive += 1,
                Step::WriteBack => {
                    current = LineKind::Clean;
                    consecutive = 0;
                }
                Step::Invalidate | Step::Skip => return Some(at),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_edram::policy::DataPolicy;
    use refrint_edram::schedule::DecaySchedule;

    /// The oracle's replay must agree with the optimized algebra for every
    /// built-in policy — this is the in-crate sanity check; the real
    /// assurance is the system-level conformance suite.
    #[test]
    fn replay_matches_optimized_algebra() {
        let datas = [
            DataPolicy::All,
            DataPolicy::Valid,
            DataPolicy::Dirty,
            DataPolicy::write_back(0, 0),
            DataPolicy::write_back(2, 3),
            DataPolicy::write_back(32, 32),
        ];
        for time in TimePolicy::ALL {
            for data in datas {
                let policy = RefreshPolicy::new(time, data);
                let oracle =
                    OracleDecay::new(policy, Cycle::new(1000), Cycle::new(100), Cycle::new(37));
                let fast =
                    DecaySchedule::new(policy, Cycle::new(1000), Cycle::new(100), Cycle::new(37));
                for kind in [LineKind::Dirty, LineKind::Clean, LineKind::Invalid] {
                    for touch in [0u64, 1, 999, 1000, 12_345] {
                        let touch = Cycle::new(touch);
                        for span in [0u64, 1, 900, 1000, 5_000, 100_000] {
                            let until = touch + Cycle::new(span);
                            assert_eq!(
                                oracle.settle(kind, touch, until),
                                fast.settle(kind, touch, until),
                                "{policy} {kind:?} touch {touch} until {until}"
                            );
                        }
                        assert_eq!(
                            oracle.invalidation_time(kind, touch),
                            fast.invalidation_time(kind, touch),
                            "{policy} {kind:?} touch {touch}"
                        );
                        assert_eq!(oracle.opportunity(touch, 1), fast.opportunity(touch, 1));
                        assert_eq!(oracle.opportunity(touch, 7), fast.opportunity(touch, 7));
                        assert_eq!(
                            oracle.opportunities_between(touch, touch + Cycle::new(12_345)),
                            fast.opportunities_between(touch, touch + Cycle::new(12_345)),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn injected_off_by_one_grants_an_extra_clean_refresh() {
        let policy = RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::write_back(0, 2));
        let mut faulty = OracleDecay::new(policy, Cycle::new(1000), Cycle::new(100), Cycle::ZERO);
        faulty.inject_clean_budget_off_by_one();
        let honest = OracleDecay::new(policy, Cycle::new(1000), Cycle::new(100), Cycle::ZERO);
        let h = honest.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(100_000));
        let f = faulty.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(100_000));
        assert_eq!(f.refreshes, h.refreshes + 1);
        assert!(f.invalidated_at.unwrap() > h.invalidated_at.unwrap());
    }
}
