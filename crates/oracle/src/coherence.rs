//! Naive directory protocols: owner/sharer state in a `HashMap` of
//! `BTreeSet`s, transitions written out longhand for both MESI
//! (invalidation-based) and Dragon (update-based).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use refrint::CoherenceProtocol;
use refrint_engine::stats::StatRegistry;
use refrint_mem::line::MesiState;

/// The directory's view of one line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Entry {
    /// One or more tiles hold the line in a clean state.
    Shared(BTreeSet<usize>),
    /// Exactly one tile owns the line with write permission.
    Owned(usize),
    /// Dragon only: `owner` holds a dirty `Sm` copy, `sharers` hold clean
    /// replicas (`sharers` never contains the owner and is never empty).
    OwnedShared(usize, BTreeSet<usize>),
}

/// What the directory decided for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleOutcome {
    /// State the requester's private caches install the line in.
    pub fill_state: MesiState,
    /// Tiles whose private copies must be invalidated (ascending order,
    /// excluding the requester).
    pub invalidate: Vec<usize>,
    /// Tile whose Modified copy must be downgraded first.
    pub downgrade_owner: Option<usize>,
    /// Whether the previous owner's dirty data lands in the L3. Under
    /// Dragon downgrades this is `false`: the owner keeps its dirty copy
    /// (`Sm`) and forwards the data cache-to-cache.
    pub owner_writeback: bool,
    /// Dragon only: tiles whose copies receive the written word and stay
    /// valid clean sharers (ascending, excluding the requester). Always
    /// empty under MESI.
    pub update: Vec<usize>,
}

/// The request kinds a private hierarchy issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleRequest {
    /// A load that missed privately (GetS).
    Read,
    /// A store that missed or lacked write permission (GetX / upgrade).
    Write,
    /// A clean private eviction (PutS).
    EvictClean,
    /// A dirty private eviction with write-back (PutM).
    EvictDirty,
}

/// Naive directory + protocol engine.
#[derive(Debug, Clone, Default)]
pub struct OracleDirectory {
    protocol: CoherenceProtocol,
    entries: HashMap<u64, Entry>,
    counters: BTreeMap<&'static str, u64>,
}

impl OracleDirectory {
    /// Creates an empty MESI directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty directory running `protocol`.
    #[must_use]
    pub fn with_protocol(protocol: CoherenceProtocol) -> Self {
        OracleDirectory {
            protocol,
            ..Self::default()
        }
    }

    fn bump(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Resolves `request` from `tile` for `line`, updating directory state
    /// and counters exactly as the optimized protocol specifies.
    pub fn access(&mut self, line: u64, tile: usize, request: OracleRequest) -> OracleOutcome {
        let (outcome, messages) = match (self.protocol, request) {
            (_, OracleRequest::EvictClean) => (self.evict(line, tile, false), 1),
            (_, OracleRequest::EvictDirty) => (self.evict(line, tile, true), 1),
            (CoherenceProtocol::Mesi, OracleRequest::Read) => self.read(line, tile),
            (CoherenceProtocol::Mesi, OracleRequest::Write) => self.write(line, tile),
            (CoherenceProtocol::Dragon, OracleRequest::Read) => self.dragon_read(line, tile),
            (CoherenceProtocol::Dragon, OracleRequest::Write) => self.dragon_write(line, tile),
        };
        self.bump("messages", messages);
        outcome
    }

    fn blank(fill_state: MesiState) -> OracleOutcome {
        OracleOutcome {
            fill_state,
            invalidate: Vec::new(),
            downgrade_owner: None,
            owner_writeback: false,
            update: Vec::new(),
        }
    }

    fn read(&mut self, line: u64, tile: usize) -> (OracleOutcome, u64) {
        self.bump("reads", 1);
        let mut out = Self::blank(MesiState::Shared);
        // Request to the home node plus the data reply.
        let mut messages = 2;
        match self.entries.get(&line).cloned() {
            None => {
                out.fill_state = MesiState::Exclusive;
                self.entries.insert(line, Entry::Owned(tile));
            }
            Some(Entry::Shared(mut sharers)) => {
                if sharers.contains(&tile) {
                    self.bump("redundant_reads", 1);
                } else {
                    sharers.insert(tile);
                }
                self.entries.insert(line, Entry::Shared(sharers));
            }
            Some(Entry::Owned(owner)) if owner == tile => {
                out.fill_state = MesiState::Exclusive;
                self.bump("redundant_reads", 1);
            }
            Some(Entry::Owned(owner)) => {
                self.bump("owner_downgrades", 1);
                out.downgrade_owner = Some(owner);
                out.owner_writeback = true;
                messages += 2; // forwarded downgrade + ack
                let sharers: BTreeSet<usize> = [owner, tile].into_iter().collect();
                self.entries.insert(line, Entry::Shared(sharers));
            }
            Some(Entry::OwnedShared(..)) => unreachable!("MESI never creates OwnedShared entries"),
        }
        (out, messages)
    }

    fn write(&mut self, line: u64, tile: usize) -> (OracleOutcome, u64) {
        self.bump("writes", 1);
        let mut out = Self::blank(MesiState::Modified);
        let mut messages = 2;
        match self.entries.get(&line).cloned() {
            None => {}
            Some(Entry::Shared(sharers)) => {
                let targets: Vec<usize> = sharers.iter().copied().filter(|&t| t != tile).collect();
                self.bump("invalidations_sent", targets.len() as u64);
                messages += 2 * targets.len() as u64; // inval + ack each
                out.invalidate = targets;
            }
            Some(Entry::Owned(owner)) if owner == tile => {
                self.bump("silent_upgrades", 1);
            }
            Some(Entry::Owned(owner)) => {
                self.bump("owner_transfers", 1);
                out.downgrade_owner = Some(owner);
                out.owner_writeback = true;
                out.invalidate = vec![owner];
                messages += 2; // forwarded invalidation + ack
            }
            Some(Entry::OwnedShared(..)) => unreachable!("MESI never creates OwnedShared entries"),
        }
        self.entries.insert(line, Entry::Owned(tile));
        (out, messages)
    }

    fn dragon_read(&mut self, line: u64, tile: usize) -> (OracleOutcome, u64) {
        self.bump("reads", 1);
        let mut out = Self::blank(MesiState::Shared);
        let mut messages = 2;
        match self.entries.get(&line).cloned() {
            None => {
                out.fill_state = MesiState::Exclusive;
                self.entries.insert(line, Entry::Owned(tile));
            }
            Some(Entry::Shared(mut sharers)) => {
                if sharers.contains(&tile) {
                    self.bump("redundant_reads", 1);
                } else {
                    sharers.insert(tile);
                }
                self.entries.insert(line, Entry::Shared(sharers));
            }
            Some(Entry::Owned(owner)) if owner == tile => {
                out.fill_state = MesiState::Exclusive;
                self.bump("redundant_reads", 1);
            }
            Some(Entry::Owned(owner)) => {
                // The owner forwards cache-to-cache and keeps its dirty
                // copy in Sm: no write-back into the L3.
                self.bump("owner_downgrades", 1);
                out.downgrade_owner = Some(owner);
                out.owner_writeback = false;
                messages += 2; // forwarded request + data reply
                self.entries.insert(
                    line,
                    Entry::OwnedShared(owner, [tile].into_iter().collect()),
                );
            }
            Some(Entry::OwnedShared(owner, _)) if owner == tile => {
                out.fill_state = MesiState::SharedModified;
                self.bump("redundant_reads", 1);
            }
            Some(Entry::OwnedShared(owner, mut sharers)) => {
                if sharers.contains(&tile) {
                    self.bump("redundant_reads", 1);
                } else {
                    sharers.insert(tile);
                    messages += 2; // forwarded request + data reply
                    self.entries
                        .insert(line, Entry::OwnedShared(owner, sharers));
                }
            }
        }
        (out, messages)
    }

    fn dragon_write(&mut self, line: u64, tile: usize) -> (OracleOutcome, u64) {
        self.bump("writes", 1);
        let mut out = Self::blank(MesiState::Modified);
        let mut messages = 2;
        match self.entries.get(&line).cloned() {
            None => {
                self.entries.insert(line, Entry::Owned(tile));
            }
            Some(Entry::Shared(sharers)) => {
                let targets: BTreeSet<usize> =
                    sharers.iter().copied().filter(|&t| t != tile).collect();
                if targets.is_empty() {
                    self.entries.insert(line, Entry::Owned(tile));
                } else {
                    self.bump("updates_sent", targets.len() as u64);
                    messages += 2 * targets.len() as u64; // update + ack each
                    out.update = targets.iter().copied().collect();
                    out.fill_state = MesiState::SharedModified;
                    self.entries.insert(line, Entry::OwnedShared(tile, targets));
                }
            }
            Some(Entry::Owned(owner)) if owner == tile => {
                self.bump("silent_upgrades", 1);
            }
            Some(Entry::Owned(owner)) => {
                // Ownership migrates cache-to-cache; the old owner stays
                // as a clean sharer after receiving the update.
                self.bump("owner_transfers", 1);
                self.bump("updates_sent", 1);
                out.update = vec![owner];
                out.fill_state = MesiState::SharedModified;
                messages += 2; // forwarded update + ack
                self.entries.insert(
                    line,
                    Entry::OwnedShared(tile, [owner].into_iter().collect()),
                );
            }
            Some(Entry::OwnedShared(owner, sharers)) if owner == tile => {
                self.bump("updates_sent", sharers.len() as u64);
                messages += 2 * sharers.len() as u64;
                out.update = sharers.iter().copied().collect();
                out.fill_state = MesiState::SharedModified;
            }
            Some(Entry::OwnedShared(owner, sharers)) => {
                let mut targets: BTreeSet<usize> =
                    sharers.iter().copied().filter(|&t| t != tile).collect();
                targets.insert(owner);
                self.bump("owner_transfers", 1);
                self.bump("updates_sent", targets.len() as u64);
                messages += 2 * targets.len() as u64;
                out.update = targets.iter().copied().collect();
                out.fill_state = MesiState::SharedModified;
                self.entries.insert(line, Entry::OwnedShared(tile, targets));
            }
        }
        (out, messages)
    }

    fn evict(&mut self, line: u64, tile: usize, dirty: bool) -> OracleOutcome {
        if dirty {
            self.bump("dirty_evictions_absorbed", 1);
        } else {
            self.bump("clean_evictions", 1);
        }
        match self.entries.get(&line).cloned() {
            None => {}
            Some(Entry::Owned(owner)) if owner == tile => {
                self.entries.remove(&line);
            }
            Some(Entry::Owned(_)) => {}
            Some(Entry::Shared(mut sharers)) => {
                sharers.remove(&tile);
                if sharers.is_empty() {
                    self.entries.remove(&line);
                } else {
                    self.entries.insert(line, Entry::Shared(sharers));
                }
            }
            Some(Entry::OwnedShared(owner, sharers)) if owner == tile => {
                // The Sm owner leaves; the replicas become plain sharers.
                self.entries.insert(line, Entry::Shared(sharers));
            }
            Some(Entry::OwnedShared(owner, mut sharers)) => {
                sharers.remove(&tile);
                if sharers.is_empty() {
                    self.entries.insert(line, Entry::Owned(owner));
                } else {
                    self.entries
                        .insert(line, Entry::OwnedShared(owner, sharers));
                }
            }
        }
        let mut out = Self::blank(MesiState::Invalid);
        out.owner_writeback = dirty;
        out
    }

    /// Invalidates a line everywhere on behalf of the L3: returns the
    /// holding tiles (ascending) and forgets the entry.
    pub fn invalidate_all(&mut self, line: u64) -> Vec<usize> {
        let holders: Vec<usize> = match self.entries.remove(&line) {
            None => Vec::new(),
            Some(Entry::Owned(owner)) => vec![owner],
            Some(Entry::Shared(sharers)) => sharers.into_iter().collect(),
            Some(Entry::OwnedShared(owner, mut sharers)) => {
                sharers.insert(owner);
                sharers.into_iter().collect()
            }
        };
        self.bump("inclusive_invalidations", holders.len() as u64);
        holders
    }

    /// Protocol counters as a [`StatRegistry`] (fired counters only).
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        let mut out = StatRegistry::new();
        for (name, value) in &self.counters {
            if *value > 0 {
                out.add(name, *value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_grants_exclusive_then_downgrades() {
        let mut d = OracleDirectory::new();
        let out = d.access(7, 0, OracleRequest::Read);
        assert_eq!(out.fill_state, MesiState::Exclusive);
        let out = d.access(7, 1, OracleRequest::Read);
        assert_eq!(out.fill_state, MesiState::Shared);
        assert_eq!(out.downgrade_owner, Some(0));
        assert!(out.owner_writeback);
    }

    #[test]
    fn writes_invalidate_other_sharers_in_ascending_order() {
        let mut d = OracleDirectory::new();
        for t in [2, 0, 1] {
            d.access(9, t, OracleRequest::Read);
        }
        let out = d.access(9, 3, OracleRequest::Write);
        assert_eq!(out.invalidate, vec![0, 1, 2]);
        assert_eq!(d.stats().get("invalidations_sent"), 3);
        // reads: 2 (uncached) + 4 (owner downgrade) + 2 (shared join);
        // write: 2 + 2 per invalidated sharer.
        assert_eq!(d.stats().get("messages"), 2 + 4 + 2 + (2 + 2 * 3));
    }

    #[test]
    fn invalidate_all_reports_holders() {
        let mut d = OracleDirectory::new();
        d.access(4, 1, OracleRequest::Read);
        d.access(4, 3, OracleRequest::Read);
        assert_eq!(d.invalidate_all(4), vec![1, 3]);
        assert_eq!(d.invalidate_all(4), Vec::<usize>::new());
    }

    #[test]
    fn dragon_write_updates_sharers() {
        let mut d = OracleDirectory::with_protocol(CoherenceProtocol::Dragon);
        for t in [2, 0, 1] {
            d.access(9, t, OracleRequest::Read);
        }
        let out = d.access(9, 3, OracleRequest::Write);
        assert!(out.invalidate.is_empty());
        assert_eq!(out.update, vec![0, 1, 2]);
        assert_eq!(out.fill_state, MesiState::SharedModified);
        assert_eq!(d.stats().get("updates_sent"), 3);
        assert_eq!(d.stats().get("invalidations_sent"), 0);
        // Everyone is still a holder.
        assert_eq!(d.invalidate_all(9), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dragon_read_of_owned_skips_writeback() {
        let mut d = OracleDirectory::with_protocol(CoherenceProtocol::Dragon);
        d.access(5, 0, OracleRequest::Write);
        let out = d.access(5, 1, OracleRequest::Read);
        assert_eq!(out.downgrade_owner, Some(0));
        assert!(!out.owner_writeback, "Dragon keeps the dirty copy in Sm");
        // The Sm owner evicting dirty leaves the sharer behind.
        let out = d.access(5, 0, OracleRequest::EvictDirty);
        assert!(out.owner_writeback);
        assert_eq!(d.invalidate_all(5), vec![1]);
    }

    #[test]
    fn dragon_ownership_transfer_keeps_old_owner_valid() {
        let mut d = OracleDirectory::with_protocol(CoherenceProtocol::Dragon);
        d.access(6, 0, OracleRequest::Write);
        let out = d.access(6, 1, OracleRequest::Write);
        assert_eq!(out.update, vec![0]);
        assert_eq!(out.fill_state, MesiState::SharedModified);
        assert!(out.invalidate.is_empty());
        // Old owner still holds the line as a sharer.
        assert_eq!(d.invalidate_all(6), vec![0, 1]);
    }
}
