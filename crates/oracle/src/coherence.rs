//! A naive directory MESI protocol: owner/sharer state in a `HashMap` of
//! `BTreeSet`s, transitions written out longhand.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use refrint_engine::stats::StatRegistry;
use refrint_mem::line::MesiState;

/// The directory's view of one line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Entry {
    /// One or more tiles hold the line in a clean state.
    Shared(BTreeSet<usize>),
    /// Exactly one tile owns the line with write permission.
    Owned(usize),
}

/// What the directory decided for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleOutcome {
    /// State the requester's private caches install the line in.
    pub fill_state: MesiState,
    /// Tiles whose private copies must be invalidated (ascending order,
    /// excluding the requester).
    pub invalidate: Vec<usize>,
    /// Tile whose Modified copy must be downgraded first.
    pub downgrade_owner: Option<usize>,
    /// Whether the previous owner's dirty data lands in the L3.
    pub owner_writeback: bool,
}

/// The request kinds a private hierarchy issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleRequest {
    /// A load that missed privately (GetS).
    Read,
    /// A store that missed or lacked write permission (GetX / upgrade).
    Write,
    /// A clean private eviction (PutS).
    EvictClean,
    /// A dirty private eviction with write-back (PutM).
    EvictDirty,
}

/// Naive directory + protocol engine.
#[derive(Debug, Clone, Default)]
pub struct OracleDirectory {
    entries: HashMap<u64, Entry>,
    counters: BTreeMap<&'static str, u64>,
}

impl OracleDirectory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Resolves `request` from `tile` for `line`, updating directory state
    /// and counters exactly as the optimized protocol specifies.
    pub fn access(&mut self, line: u64, tile: usize, request: OracleRequest) -> OracleOutcome {
        let (outcome, messages) = match request {
            OracleRequest::Read => self.read(line, tile),
            OracleRequest::Write => self.write(line, tile),
            OracleRequest::EvictClean => (self.evict(line, tile, false), 1),
            OracleRequest::EvictDirty => (self.evict(line, tile, true), 1),
        };
        self.bump("messages", messages);
        outcome
    }

    fn read(&mut self, line: u64, tile: usize) -> (OracleOutcome, u64) {
        self.bump("reads", 1);
        let mut out = OracleOutcome {
            fill_state: MesiState::Shared,
            invalidate: Vec::new(),
            downgrade_owner: None,
            owner_writeback: false,
        };
        // Request to the home node plus the data reply.
        let mut messages = 2;
        match self.entries.get(&line).cloned() {
            None => {
                out.fill_state = MesiState::Exclusive;
                self.entries.insert(line, Entry::Owned(tile));
            }
            Some(Entry::Shared(mut sharers)) => {
                if sharers.contains(&tile) {
                    self.bump("redundant_reads", 1);
                } else {
                    sharers.insert(tile);
                }
                self.entries.insert(line, Entry::Shared(sharers));
            }
            Some(Entry::Owned(owner)) if owner == tile => {
                out.fill_state = MesiState::Exclusive;
                self.bump("redundant_reads", 1);
            }
            Some(Entry::Owned(owner)) => {
                self.bump("owner_downgrades", 1);
                out.downgrade_owner = Some(owner);
                out.owner_writeback = true;
                messages += 2; // forwarded downgrade + ack
                let sharers: BTreeSet<usize> = [owner, tile].into_iter().collect();
                self.entries.insert(line, Entry::Shared(sharers));
            }
        }
        (out, messages)
    }

    fn write(&mut self, line: u64, tile: usize) -> (OracleOutcome, u64) {
        self.bump("writes", 1);
        let mut out = OracleOutcome {
            fill_state: MesiState::Modified,
            invalidate: Vec::new(),
            downgrade_owner: None,
            owner_writeback: false,
        };
        let mut messages = 2;
        match self.entries.get(&line).cloned() {
            None => {}
            Some(Entry::Shared(sharers)) => {
                let targets: Vec<usize> = sharers.iter().copied().filter(|&t| t != tile).collect();
                self.bump("invalidations_sent", targets.len() as u64);
                messages += 2 * targets.len() as u64; // inval + ack each
                out.invalidate = targets;
            }
            Some(Entry::Owned(owner)) if owner == tile => {
                self.bump("silent_upgrades", 1);
            }
            Some(Entry::Owned(owner)) => {
                self.bump("owner_transfers", 1);
                out.downgrade_owner = Some(owner);
                out.owner_writeback = true;
                out.invalidate = vec![owner];
                messages += 2; // forwarded invalidation + ack
            }
        }
        self.entries.insert(line, Entry::Owned(tile));
        (out, messages)
    }

    fn evict(&mut self, line: u64, tile: usize, dirty: bool) -> OracleOutcome {
        if dirty {
            self.bump("dirty_evictions_absorbed", 1);
        } else {
            self.bump("clean_evictions", 1);
        }
        match self.entries.get(&line).cloned() {
            None => {}
            Some(Entry::Owned(owner)) if owner == tile => {
                self.entries.remove(&line);
            }
            Some(Entry::Owned(_)) => {}
            Some(Entry::Shared(mut sharers)) => {
                sharers.remove(&tile);
                if sharers.is_empty() {
                    self.entries.remove(&line);
                } else {
                    self.entries.insert(line, Entry::Shared(sharers));
                }
            }
        }
        OracleOutcome {
            fill_state: MesiState::Invalid,
            invalidate: Vec::new(),
            downgrade_owner: None,
            owner_writeback: dirty,
        }
    }

    /// Invalidates a line everywhere on behalf of the L3: returns the
    /// holding tiles (ascending) and forgets the entry.
    pub fn invalidate_all(&mut self, line: u64) -> Vec<usize> {
        let holders: Vec<usize> = match self.entries.remove(&line) {
            None => Vec::new(),
            Some(Entry::Owned(owner)) => vec![owner],
            Some(Entry::Shared(sharers)) => sharers.into_iter().collect(),
        };
        self.bump("inclusive_invalidations", holders.len() as u64);
        holders
    }

    /// Protocol counters as a [`StatRegistry`] (fired counters only).
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        let mut out = StatRegistry::new();
        for (name, value) in &self.counters {
            if *value > 0 {
                out.add(name, *value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_grants_exclusive_then_downgrades() {
        let mut d = OracleDirectory::new();
        let out = d.access(7, 0, OracleRequest::Read);
        assert_eq!(out.fill_state, MesiState::Exclusive);
        let out = d.access(7, 1, OracleRequest::Read);
        assert_eq!(out.fill_state, MesiState::Shared);
        assert_eq!(out.downgrade_owner, Some(0));
        assert!(out.owner_writeback);
    }

    #[test]
    fn writes_invalidate_other_sharers_in_ascending_order() {
        let mut d = OracleDirectory::new();
        for t in [2, 0, 1] {
            d.access(9, t, OracleRequest::Read);
        }
        let out = d.access(9, 3, OracleRequest::Write);
        assert_eq!(out.invalidate, vec![0, 1, 2]);
        assert_eq!(d.stats().get("invalidations_sent"), 3);
        // reads: 2 (uncached) + 4 (owner downgrade) + 2 (shared join);
        // write: 2 + 2 per invalidated sharer.
        assert_eq!(d.stats().get("messages"), 2 + 4 + 2 + (2 + 2 * 3));
    }

    #[test]
    fn invalidate_all_reports_holders() {
        let mut d = OracleDirectory::new();
        d.access(4, 1, OracleRequest::Read);
        d.access(4, 3, OracleRequest::Read);
        assert_eq!(d.invalidate_all(4), vec![1, 3]);
        assert_eq!(d.invalidate_all(4), Vec::<usize>::new());
    }
}
