//! Field-by-field comparison of two [`SimReport`]s.

use std::fmt;

use refrint::report::SimReport;

/// One field on which oracle and simulator disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDiff {
    /// Dotted path of the disagreeing field (e.g. `counts.l3_refreshes`).
    pub field: String,
    /// The oracle's value, rendered.
    pub oracle: String,
    /// The simulator's value, rendered.
    pub simulator: String,
}

impl fmt::Display for FieldDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: oracle {} vs simulator {}",
            self.field, self.oracle, self.simulator
        )
    }
}

fn push(
    diffs: &mut Vec<FieldDiff>,
    field: &str,
    oracle: impl fmt::Display,
    sim: impl fmt::Display,
) {
    let (oracle, simulator) = (oracle.to_string(), sim.to_string());
    if oracle != simulator {
        diffs.push(FieldDiff {
            field: field.to_owned(),
            oracle,
            simulator,
        });
    }
}

/// Diffs every field of the two reports: identity strings, execution time,
/// every event count, the energy breakdown (bit-exact — both sides derive
/// it from their counts through the same pure arithmetic), and the full
/// per-structure statistics registry in both directions.
#[must_use]
pub fn diff_reports(oracle: &SimReport, simulator: &SimReport) -> Vec<FieldDiff> {
    let mut diffs = Vec::new();
    push(
        &mut diffs,
        "config_label",
        &oracle.config_label,
        &simulator.config_label,
    );
    push(
        &mut diffs,
        "workload",
        &oracle.workload,
        &simulator.workload,
    );
    push(
        &mut diffs,
        "execution_cycles",
        oracle.execution_cycles,
        simulator.execution_cycles,
    );

    let (a, b) = (&oracle.counts, &simulator.counts);
    push(
        &mut diffs,
        "counts.instructions",
        a.instructions,
        b.instructions,
    );
    push(&mut diffs, "counts.cycles", a.cycles, b.cycles);
    push(
        &mut diffs,
        "counts.il1_accesses",
        a.il1_accesses,
        b.il1_accesses,
    );
    push(
        &mut diffs,
        "counts.dl1_accesses",
        a.dl1_accesses,
        b.dl1_accesses,
    );
    push(
        &mut diffs,
        "counts.l2_accesses",
        a.l2_accesses,
        b.l2_accesses,
    );
    push(
        &mut diffs,
        "counts.l3_accesses",
        a.l3_accesses,
        b.l3_accesses,
    );
    push(
        &mut diffs,
        "counts.l1_refreshes",
        a.l1_refreshes,
        b.l1_refreshes,
    );
    push(
        &mut diffs,
        "counts.l2_refreshes",
        a.l2_refreshes,
        b.l2_refreshes,
    );
    push(
        &mut diffs,
        "counts.l3_refreshes",
        a.l3_refreshes,
        b.l3_refreshes,
    );
    push(&mut diffs, "counts.dram_reads", a.dram_reads, b.dram_reads);
    push(
        &mut diffs,
        "counts.dram_writes",
        a.dram_writes,
        b.dram_writes,
    );
    push(
        &mut diffs,
        "counts.noc_flit_hops",
        a.noc_flit_hops,
        b.noc_flit_hops,
    );

    // The breakdown is a pure function of (tech, cells, counts, cores,
    // banks); compare bit patterns so float rendering cannot hide drift.
    for (name, x, y) in [
        (
            "breakdown.memory_total",
            oracle.breakdown.memory_total(),
            simulator.breakdown.memory_total(),
        ),
        (
            "breakdown.total_system",
            oracle.breakdown.total_system(),
            simulator.breakdown.total_system(),
        ),
        (
            "breakdown.refresh_total",
            oracle.breakdown.refresh_total(),
            simulator.breakdown.refresh_total(),
        ),
        (
            "breakdown.on_chip_leakage",
            oracle.breakdown.on_chip_leakage(),
            simulator.breakdown.on_chip_leakage(),
        ),
        (
            "breakdown.on_chip_dynamic",
            oracle.breakdown.on_chip_dynamic(),
            simulator.breakdown.on_chip_dynamic(),
        ),
        (
            "breakdown.dram",
            oracle.breakdown.dram,
            simulator.breakdown.dram,
        ),
    ] {
        if x.to_bits() != y.to_bits() {
            diffs.push(FieldDiff {
                field: name.to_owned(),
                oracle: format!("{x:e}"),
                simulator: format!("{y:e}"),
            });
        }
    }

    // Statistics: every key either side reports must agree exactly.
    for (k, v) in oracle.stats.iter() {
        let other = simulator.stats.get(k);
        if v != other {
            diffs.push(FieldDiff {
                field: format!("stats.{k}"),
                oracle: v.to_string(),
                simulator: other.to_string(),
            });
        }
    }
    for (k, v) in simulator.stats.iter() {
        if oracle.stats.get(k) == 0 && v != 0 {
            // Keys only the simulator has (the loop above covers the rest).
            diffs.push(FieldDiff {
                field: format!("stats.{k}"),
                oracle: "0".to_owned(),
                simulator: v.to_string(),
            });
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_energy::accounting::EnergyCounts;
    use refrint_energy::breakdown::EnergyBreakdown;
    use refrint_engine::stats::StatRegistry;

    fn report(cycles: u64) -> SimReport {
        let mut stats = StatRegistry::new();
        stats.add("dl1.0.hits", 3);
        SimReport {
            config_label: "test".into(),
            workload: "w".into(),
            execution_cycles: cycles,
            counts: EnergyCounts {
                cycles,
                ..EnergyCounts::default()
            },
            breakdown: EnergyBreakdown::default(),
            stats,
        }
    }

    #[test]
    fn identical_reports_have_no_diffs() {
        assert!(diff_reports(&report(100), &report(100)).is_empty());
    }

    #[test]
    fn every_divergent_field_is_named() {
        let mut other = report(100);
        other.execution_cycles = 101;
        other.counts.l3_refreshes = 7;
        other.stats.add("dl1.0.hits", 1);
        other.stats.add("coherence.messages", 5);
        let diffs = diff_reports(&report(100), &other);
        let fields: Vec<&str> = diffs.iter().map(|d| d.field.as_str()).collect();
        assert!(fields.contains(&"execution_cycles"));
        assert!(fields.contains(&"counts.l3_refreshes"));
        assert!(fields.contains(&"stats.dl1.0.hits"));
        assert!(fields.contains(&"stats.coherence.messages"));
    }
}
