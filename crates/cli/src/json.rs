//! Machine-readable output for the CLI — a thin façade over the shared
//! emitters.
//!
//! The implementations live in [`refrint::json`] (document shapes) and
//! [`refrint_engine::json`] (escaping and parsing) so that the CLI, the
//! bench suite and `refrint-serve` render byte-identical documents from one
//! code path. This module only re-exports them under the CLI's historical
//! `refrint_cli::json::*` paths.

pub use refrint::json::{report, sweep, sweep_tuned, trace_summary};
pub use refrint_engine::json::escape;

#[cfg(test)]
mod tests {
    use super::*;
    use refrint::prelude::*;

    #[test]
    fn reexports_resolve_and_agree_with_the_shared_emitters() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        let mut sim = Simulation::builder()
            .cores(2)
            .refs_per_thread(400)
            .build()
            .unwrap();
        let outcome = sim.run(AppPreset::Lu);
        // The CLI path and the shared path are literally the same function.
        assert_eq!(
            report(&outcome.report),
            refrint::json::report(&outcome.report)
        );
    }
}
