//! Minimal JSON rendering for reports and sweep results.
//!
//! The workspace builds without external dependencies, so instead of a
//! serde derive this module hand-emits the small, stable document shapes
//! the CLI needs. Strings are escaped per RFC 8259; non-finite floats
//! (which the energy model never produces) render as `null`.

use refrint::experiment::SweepResults;
use refrint::report::SimReport;

/// Escapes `s` as the contents of a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number (`null` for non-finite values).
fn num(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting is valid JSON.
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders one [`SimReport`] as a JSON object.
#[must_use]
pub fn report(r: &SimReport) -> String {
    let c = &r.counts;
    let b = &r.breakdown;
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"config\":\"{}\",\"execution_cycles\":{},",
            "\"counts\":{{\"instructions\":{},\"il1_accesses\":{},\"dl1_accesses\":{},",
            "\"l2_accesses\":{},\"l3_accesses\":{},\"l1_refreshes\":{},",
            "\"l2_refreshes\":{},\"l3_refreshes\":{},\"dram_reads\":{},",
            "\"dram_writes\":{},\"noc_flit_hops\":{}}},",
            "\"energy_j\":{{\"memory_total\":{},\"system_total\":{},",
            "\"on_chip_dynamic\":{},\"on_chip_leakage\":{},\"refresh\":{},\"dram\":{}}},",
            "\"l3_miss_rate_per_mille\":{},\"refreshes_per_kilocycle\":{}}}"
        ),
        escape(&r.workload),
        escape(&r.config_label),
        r.execution_cycles,
        c.instructions,
        c.il1_accesses,
        c.dl1_accesses,
        c.l2_accesses,
        c.l3_accesses,
        c.l1_refreshes,
        c.l2_refreshes,
        c.l3_refreshes,
        c.dram_reads,
        c.dram_writes,
        c.noc_flit_hops,
        num(b.memory_total()),
        num(b.total_system()),
        num(b.on_chip_dynamic()),
        num(b.on_chip_leakage()),
        num(b.refresh_total()),
        num(b.dram),
        num(r.l3_miss_rate_per_mille()),
        num(r.refreshes_per_kilocycle()),
    )
}

/// Renders full [`SweepResults`] as a JSON object: the swept axes plus one
/// entry per run. Map iteration is ordered, so the output is deterministic.
#[must_use]
pub fn sweep(results: &SweepResults) -> String {
    let mut runs = Vec::with_capacity(results.sram.len() + results.edram.len());
    for (workload, r) in &results.sram {
        runs.push(format!(
            "{{\"workload\":\"{}\",\"retention_us\":null,\"policy\":null,\"report\":{}}}",
            escape(workload),
            report(r)
        ));
    }
    for ((workload, retention_us, label), r) in &results.edram {
        runs.push(format!(
            "{{\"workload\":\"{}\",\"retention_us\":{retention_us},\"policy\":\"{}\",\"report\":{}}}",
            escape(workload),
            escape(label),
            report(r)
        ));
    }
    let workloads: Vec<String> = results
        .apps
        .iter()
        .map(|a| format!("\"{}\"", escape(a.name())))
        .chain(
            results
                .traces
                .iter()
                .map(|t| format!("\"{}\"", escape(&t.name))),
        )
        .collect();
    let retentions: Vec<String> = results.retentions_us.iter().map(u64::to_string).collect();
    format!(
        "{{\"workloads\":[{}],\"retentions_us\":[{}],\"runs\":[{}]}}",
        workloads.join(","),
        retentions.join(","),
        runs.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint::prelude::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\t"), "x\\ny\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_json_is_balanced_and_complete() {
        let mut sim = Simulation::builder()
            .cores(2)
            .refs_per_thread(500)
            .build()
            .unwrap();
        let outcome = sim.run(AppPreset::Lu);
        let doc = report(&outcome.report);
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced braces in {doc}"
        );
        for key in [
            "\"workload\":\"lu\"",
            "\"execution_cycles\":",
            "\"dram_reads\":",
            "\"memory_total\":",
            "\"refreshes_per_kilocycle\":",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn sweep_json_lists_every_run() {
        let config = ExperimentConfig {
            apps: vec![AppPreset::Lu],
            retentions_us: vec![50],
            policies: vec![RefreshPolicy::recommended()],
            refs_per_thread: 600,
            cores: 2,
            ..ExperimentConfig::default()
        };
        let results = SweepRunner::new(config).sequential().run().unwrap();
        let doc = sweep(&results);
        assert!(doc.contains("\"workloads\":[\"lu\"]"));
        assert!(doc.contains("\"retention_us\":null"));
        assert!(doc.contains("\"retention_us\":50"));
        assert!(doc.contains("R.WB(32,32)"));
        assert_eq!(doc.matches("\"report\":").count(), 2);
    }
}
