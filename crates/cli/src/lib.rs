//! Argument parsing and command plumbing for `refrint-cli`, kept in a
//! library so every parser is unit-testable.
//!
//! The CLI is a thin shell over [`refrint::simulation::Simulation`] (single
//! runs) and [`refrint::sweep::SweepRunner`] (policy sweeps); everything
//! user-facing — flag parsing, policy-label resolution with helpful errors,
//! sweep sizing — lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

use refrint::experiment::ExperimentConfig;
use refrint::simulation::{ObsConfig, Simulation, SimulationBuilder};
use refrint::{CoherenceProtocol, RetentionProfile};
use refrint_edram::model::PolicyRegistry;
use refrint_edram::policy::RefreshPolicy;
use refrint_obs::anomaly::AnomalyTuning;
use refrint_obs::log::LogFormat;
use refrint_trace::TraceFormat;
use refrint_workloads::apps::AppPreset;

pub mod json;

/// Returns the value following `name` in `args`, if present.
#[must_use]
pub fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether the bare flag `name` is present.
#[must_use]
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Returns every value following an occurrence of `name` in `args`
/// (for repeatable options such as `--trace`).
#[must_use]
pub fn opt_values(args: &[String], name: &str) -> Vec<String> {
    args.windows(2)
        .filter(|w| w[0] == name)
        .map(|w| w[1].clone())
        .collect()
}

/// Parses a `--policy` label, round-tripping every label
/// [`RefreshPolicy::label`] can emit (`P.all`, `R.valid`, `R.WB(32,32)`,
/// long forms like `periodic.dirty`, …). On mismatch the error lists every
/// valid label so the user can fix the invocation without reading the
/// source.
///
/// # Errors
///
/// Returns a human-readable message enumerating the valid labels.
pub fn parse_policy(label: &str) -> Result<RefreshPolicy, String> {
    match label.parse::<RefreshPolicy>() {
        Ok(policy) => Ok(policy),
        Err(_) => Err(PolicyRegistry::new()
            .resolve(label)
            .expect_err("label failed to parse as a descriptor")
            .to_string()),
    }
}

/// Parses a comma-separated `--apps` list.
///
/// # Errors
///
/// Returns the underlying parse error for the first unknown application.
pub fn parse_apps(list: &str) -> Result<Vec<AppPreset>, String> {
    list.split(',')
        .map(|name| name.trim().parse::<AppPreset>().map_err(|e| e.to_string()))
        .collect()
}

/// Parses a `--protocol` label (`mesi` or `dragon`).
///
/// # Errors
///
/// Returns a message listing the valid protocol labels.
pub fn parse_protocol(label: &str) -> Result<CoherenceProtocol, String> {
    label.parse::<CoherenceProtocol>()
}

/// Parses a `--retention-profile` label — exactly what
/// [`RetentionProfile::label`] prints: `uniform`, `normal(SIGMA)`, or
/// `bimodal(WEAK,RETENTION)`.
///
/// # Errors
///
/// Returns the profile grammar error as a string.
pub fn parse_retention_profile(label: &str) -> Result<RetentionProfile, String> {
    label.parse::<RetentionProfile>().map_err(|e| e.to_string())
}

/// Parses the optional `--anomaly-threshold <z>` and `--min-slice <n>`
/// flags into an [`AnomalyTuning`], rejecting non-finite or negative
/// thresholds and a zero minimum slice with the tuning's typed error.
///
/// # Errors
///
/// Returns a usage message for unparsable values and the
/// [`refrint_obs::anomaly::TuningError`] rendering for invalid ones.
pub fn parse_anomaly_tuning(args: &[String]) -> Result<AnomalyTuning, String> {
    let defaults = AnomalyTuning::default();
    let threshold = match opt_value(args, "--anomaly-threshold") {
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| format!("bad --anomaly-threshold `{v}`"))?,
        None => defaults.threshold,
    };
    let min_slice = match opt_value(args, "--min-slice") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad --min-slice `{v}`"))?,
        None => defaults.min_slice,
    };
    AnomalyTuning::new(threshold, min_slice).map_err(|e| e.to_string())
}

/// How a report is rendered to stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// The human-readable report (default).
    #[default]
    Text,
    /// A machine-consumable JSON document.
    Json,
}

/// Parses the optional `--format text|json` flag.
///
/// # Errors
///
/// Returns a usage message for unknown formats.
pub fn parse_format(args: &[String]) -> Result<OutputFormat, String> {
    match opt_value(args, "--format").as_deref() {
        None | Some("text") => Ok(OutputFormat::Text),
        Some("json") => Ok(OutputFormat::Json),
        Some(other) => Err(format!(
            "unknown --format `{other}` (expected `text` or `json`)"
        )),
    }
}

/// Options of the `run` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// The application to run.
    pub app: AppPreset,
    /// Use SRAM cells (the no-refresh baseline).
    pub sram: bool,
    /// Refresh policy label, if overridden.
    pub policy: Option<RefreshPolicy>,
    /// Retention time in microseconds, if overridden.
    pub retention_us: Option<u64>,
    /// Per-bank retention distribution (`--retention-profile`), if
    /// overridden.
    pub retention_profile: Option<RetentionProfile>,
    /// Coherence protocol (`--protocol mesi|dragon`), if overridden.
    pub protocol: Option<CoherenceProtocol>,
    /// References per thread, if overridden.
    pub refs: Option<u64>,
    /// Workload seed, if overridden.
    pub seed: Option<u64>,
    /// Print the observability attribution table to stderr after the
    /// report (`--timing`; default sampling, stdout bytes unchanged).
    pub timing: bool,
    /// Output rendering.
    pub format: OutputFormat,
}

impl RunOptions {
    /// Parses `run` subcommand arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for missing/invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let app_name = opt_value(args, "--app").ok_or("run requires --app <name>")?;
        let app: AppPreset = app_name.parse().map_err(|e| format!("{e}"))?;
        let sram = has_flag(args, "--sram");
        let policy = match opt_value(args, "--policy") {
            Some(p) => Some(parse_policy(&p)?),
            None => None,
        };
        let retention_us = match opt_value(args, "--retention") {
            Some(r) => Some(r.parse().map_err(|_| format!("bad retention `{r}`"))?),
            None => None,
        };
        let retention_profile = match opt_value(args, "--retention-profile") {
            Some(p) => Some(parse_retention_profile(&p)?),
            None => None,
        };
        let protocol = match opt_value(args, "--protocol") {
            Some(p) => Some(parse_protocol(&p)?),
            None => None,
        };
        let refs = match opt_value(args, "--refs") {
            Some(n) => Some(n.parse().map_err(|_| format!("bad --refs `{n}`"))?),
            None => None,
        };
        let seed = match opt_value(args, "--seed") {
            Some(s) => Some(s.parse().map_err(|_| format!("bad --seed `{s}`"))?),
            None => None,
        };
        Ok(RunOptions {
            app,
            sram,
            policy,
            retention_us,
            retention_profile,
            protocol,
            refs,
            seed,
            timing: has_flag(args, "--timing"),
            format: parse_format(args)?,
        })
    }

    /// The simulation builder these options describe.
    #[must_use]
    pub fn builder(&self) -> SimulationBuilder {
        let mut builder = if self.sram {
            Simulation::builder().sram_baseline()
        } else {
            Simulation::builder().edram_recommended()
        };
        if let Some(policy) = self.policy {
            builder = builder.policy(policy);
        }
        if let Some(us) = self.retention_us {
            builder = builder.retention_us(us);
        }
        if let Some(profile) = self.retention_profile {
            builder = builder.retention_profile(profile);
        }
        if let Some(protocol) = self.protocol {
            builder = builder.protocol(protocol);
        }
        if let Some(refs) = self.refs {
            builder = builder.refs_per_thread(refs);
        }
        if let Some(seed) = self.seed {
            builder = builder.seed(seed);
        }
        if self.timing {
            builder = builder.observability(ObsConfig::default());
        }
        builder
    }
}

/// Options of the `obs` subcommand: one fully-sampled run whose product is
/// the observability export (OTLP-shaped JSON by default, the attribution
/// table with `--format text`) rather than the simulation report.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsOptions {
    /// The application to run.
    pub app: AppPreset,
    /// Use SRAM cells (the no-refresh baseline).
    pub sram: bool,
    /// Refresh policy label, if overridden.
    pub policy: Option<RefreshPolicy>,
    /// Retention time in microseconds, if overridden.
    pub retention_us: Option<u64>,
    /// Per-bank retention distribution, if overridden.
    pub retention_profile: Option<RetentionProfile>,
    /// Coherence protocol, if overridden.
    pub protocol: Option<CoherenceProtocol>,
    /// References per thread, if overridden.
    pub refs: Option<u64>,
    /// Workload seed, if overridden.
    pub seed: Option<u64>,
    /// Simulated cores, if overridden.
    pub cores: Option<usize>,
    /// Sample every Nth event (default 1: full sampling).
    pub sample_every: u32,
    /// Print the subsystem critical-path report instead of the export
    /// (`--critical-path`).
    pub critical_path: bool,
    /// Tuning of the span-duration anomaly scan printed to stderr.
    pub anomaly: AnomalyTuning,
    /// Output rendering (JSON by default, unlike `run`).
    pub format: OutputFormat,
}

impl ObsOptions {
    /// Parses `obs` subcommand arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for missing/invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let app: AppPreset = opt_value(args, "--app")
            .ok_or("obs requires --app <name>")?
            .parse()
            .map_err(|e| format!("{e}"))?;
        let sram = has_flag(args, "--sram");
        let policy = match opt_value(args, "--policy") {
            Some(p) => Some(parse_policy(&p)?),
            None => None,
        };
        let retention_us = match opt_value(args, "--retention") {
            Some(r) => Some(r.parse().map_err(|_| format!("bad retention `{r}`"))?),
            None => None,
        };
        let retention_profile = match opt_value(args, "--retention-profile") {
            Some(p) => Some(parse_retention_profile(&p)?),
            None => None,
        };
        let protocol = match opt_value(args, "--protocol") {
            Some(p) => Some(parse_protocol(&p)?),
            None => None,
        };
        let refs = match opt_value(args, "--refs") {
            Some(n) => Some(n.parse().map_err(|_| format!("bad --refs `{n}`"))?),
            None => None,
        };
        let seed = match opt_value(args, "--seed") {
            Some(s) => Some(s.parse().map_err(|_| format!("bad --seed `{s}`"))?),
            None => None,
        };
        let cores = match opt_value(args, "--cores") {
            Some(c) => Some(c.parse().map_err(|_| format!("bad --cores `{c}`"))?),
            None => None,
        };
        let sample_every = match opt_value(args, "--sample") {
            None => 1,
            Some(v) => {
                let n: u32 = v.parse().map_err(|_| format!("bad --sample `{v}`"))?;
                if n == 0 {
                    return Err("--sample must be at least 1".into());
                }
                n
            }
        };
        // The export is the point of this subcommand, so JSON is the
        // default; `--format text` prints the attribution table instead.
        let format = match opt_value(args, "--format").as_deref() {
            None | Some("json") => OutputFormat::Json,
            Some("text") => OutputFormat::Text,
            Some(other) => {
                return Err(format!(
                    "unknown --format `{other}` (expected `text` or `json`)"
                ))
            }
        };
        Ok(ObsOptions {
            app,
            sram,
            policy,
            retention_us,
            retention_profile,
            protocol,
            refs,
            seed,
            cores,
            sample_every,
            critical_path: has_flag(args, "--critical-path"),
            anomaly: parse_anomaly_tuning(args)?,
            format,
        })
    }

    /// The simulation builder these options describe, observability
    /// enabled at the requested sampling rate.
    #[must_use]
    pub fn builder(&self) -> SimulationBuilder {
        let mut builder = if self.sram {
            Simulation::builder().sram_baseline()
        } else {
            Simulation::builder().edram_recommended()
        };
        if let Some(policy) = self.policy {
            builder = builder.policy(policy);
        }
        if let Some(us) = self.retention_us {
            builder = builder.retention_us(us);
        }
        if let Some(profile) = self.retention_profile {
            builder = builder.retention_profile(profile);
        }
        if let Some(protocol) = self.protocol {
            builder = builder.protocol(protocol);
        }
        if let Some(refs) = self.refs {
            builder = builder.refs_per_thread(refs);
        }
        if let Some(seed) = self.seed {
            builder = builder.seed(seed);
        }
        if let Some(cores) = self.cores {
            builder = builder.cores(cores);
        }
        builder.observability(ObsConfig::sampled(self.sample_every))
    }
}

/// Options of the `sweep` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// References per thread, if overridden.
    pub refs: Option<u64>,
    /// Applications to sweep, if restricted.
    pub apps: Option<Vec<AppPreset>>,
    /// Worker threads (`--jobs`); `None` means one per CPU.
    pub jobs: Option<usize>,
    /// Cores per simulated chip (`--cores`); traces require a matching
    /// thread count.
    pub cores: Option<usize>,
    /// Print per-run progress to stderr.
    pub progress: bool,
    /// Coherence protocols to sweep (`--protocol`, repeatable); empty
    /// means MESI only.
    pub protocols: Vec<CoherenceProtocol>,
    /// Per-bank retention distributions to sweep (`--retention-profile`,
    /// repeatable; labels may contain commas, hence no comma-list form);
    /// empty means uniform only.
    pub retention_profiles: Vec<RetentionProfile>,
    /// Traces to sweep alongside the applications (`--trace`, repeatable).
    pub traces: Vec<PathBuf>,
    /// Tuning of the sweep's anomaly pass (`--anomaly-threshold`,
    /// `--min-slice`; the default reproduces PR-6 behaviour exactly).
    pub anomaly: AnomalyTuning,
    /// Output rendering.
    pub format: OutputFormat,
}

impl SweepOptions {
    /// Parses `sweep` subcommand arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let refs = match opt_value(args, "--refs") {
            Some(n) => Some(n.parse().map_err(|_| format!("bad --refs `{n}`"))?),
            None => None,
        };
        let apps = match opt_value(args, "--apps") {
            Some(list) => Some(parse_apps(&list)?),
            None => None,
        };
        let jobs = match opt_value(args, "--jobs") {
            Some(j) => {
                let jobs: usize = j.parse().map_err(|_| format!("bad --jobs `{j}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                Some(jobs)
            }
            None => None,
        };
        let cores = match opt_value(args, "--cores") {
            Some(c) => Some(c.parse().map_err(|_| format!("bad --cores `{c}`"))?),
            None => None,
        };
        let protocols = opt_values(args, "--protocol")
            .iter()
            .map(|p| parse_protocol(p))
            .collect::<Result<Vec<_>, _>>()?;
        let retention_profiles = opt_values(args, "--retention-profile")
            .iter()
            .map(|p| parse_retention_profile(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepOptions {
            refs,
            apps,
            jobs,
            cores,
            progress: has_flag(args, "--progress"),
            protocols,
            retention_profiles,
            traces: opt_values(args, "--trace")
                .into_iter()
                .map(Into::into)
                .collect(),
            anomaly: parse_anomaly_tuning(args)?,
            format: parse_format(args)?,
        })
    }

    /// The experiment configuration these options describe (based on the
    /// quick sweep). Each `--trace` file's header is read to key its
    /// reports by the recorded workload name.
    ///
    /// # Errors
    ///
    /// Returns the error message for an unreadable trace file.
    pub fn experiment(&self) -> Result<ExperimentConfig, String> {
        let mut cfg = ExperimentConfig::quick();
        if let Some(refs) = self.refs {
            cfg = cfg.with_refs_per_thread(refs);
        }
        if let Some(apps) = &self.apps {
            cfg = cfg.with_apps(apps.clone());
        }
        if let Some(cores) = self.cores {
            cfg.cores = cores;
        }
        if !self.protocols.is_empty() {
            cfg = cfg.with_protocols(self.protocols.clone());
        }
        if !self.retention_profiles.is_empty() {
            cfg = cfg.with_retention_profiles(self.retention_profiles.clone());
        }
        for path in &self.traces {
            let spec =
                refrint::experiment::TraceSpec::from_path(path).map_err(|e| e.to_string())?;
            cfg = cfg.with_trace(spec);
        }
        Ok(cfg)
    }
}

/// Options of the `trace record` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecordOptions {
    /// The application preset to record.
    pub app: AppPreset,
    /// Output trace path.
    pub out: PathBuf,
    /// On-disk format (`--text` selects the readable format).
    pub format: TraceFormat,
    /// Threads/cores to record, if overridden.
    pub cores: Option<usize>,
    /// References per thread, if overridden.
    pub refs: Option<u64>,
    /// Workload seed, if overridden.
    pub seed: Option<u64>,
}

impl TraceRecordOptions {
    /// Parses `trace record` arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for missing/invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let app: AppPreset = opt_value(args, "--app")
            .ok_or("trace record requires --app <name>")?
            .parse()
            .map_err(|e| format!("{e}"))?;
        let out = opt_value(args, "--out").ok_or("trace record requires --out <path>")?;
        let cores = match opt_value(args, "--cores") {
            Some(c) => Some(c.parse().map_err(|_| format!("bad --cores `{c}`"))?),
            None => None,
        };
        let refs = match opt_value(args, "--refs") {
            Some(n) => Some(n.parse().map_err(|_| format!("bad --refs `{n}`"))?),
            None => None,
        };
        let seed = match opt_value(args, "--seed") {
            Some(s) => Some(s.parse().map_err(|_| format!("bad --seed `{s}`"))?),
            None => None,
        };
        Ok(TraceRecordOptions {
            app,
            out: out.into(),
            format: if has_flag(args, "--text") {
                TraceFormat::Text
            } else {
                TraceFormat::Binary
            },
            cores,
            refs,
            seed,
        })
    }

    /// The builder describing the chip the trace is recorded for.
    #[must_use]
    pub fn builder(&self) -> SimulationBuilder {
        let mut builder = Simulation::builder();
        if let Some(cores) = self.cores {
            builder = builder.cores(cores);
        }
        if let Some(refs) = self.refs {
            builder = builder.refs_per_thread(refs);
        }
        if let Some(seed) = self.seed {
            builder = builder.seed(seed);
        }
        builder
    }
}

/// Options of the `trace replay` subcommand: the trace plus the same
/// configuration overrides as `run`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReplayOptions {
    /// The trace to replay.
    pub trace: PathBuf,
    /// Use SRAM cells (the no-refresh baseline).
    pub sram: bool,
    /// Refresh policy label, if overridden.
    pub policy: Option<RefreshPolicy>,
    /// Retention time in microseconds, if overridden.
    pub retention_us: Option<u64>,
    /// Output rendering.
    pub format: OutputFormat,
}

impl TraceReplayOptions {
    /// Parses `trace replay` arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for missing/invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let trace = opt_value(args, "--trace").ok_or("trace replay requires --trace <path>")?;
        let policy = match opt_value(args, "--policy") {
            Some(p) => Some(parse_policy(&p)?),
            None => None,
        };
        let retention_us = match opt_value(args, "--retention") {
            Some(r) => Some(r.parse().map_err(|_| format!("bad retention `{r}`"))?),
            None => None,
        };
        Ok(TraceReplayOptions {
            trace: trace.into(),
            sram: has_flag(args, "--sram"),
            policy,
            retention_us,
            format: parse_format(args)?,
        })
    }

    /// The simulation builder these options describe.
    #[must_use]
    pub fn builder(&self) -> SimulationBuilder {
        let mut builder = if self.sram {
            Simulation::builder().sram_baseline()
        } else {
            Simulation::builder().edram_recommended()
        };
        if let Some(policy) = self.policy {
            builder = builder.policy(policy);
        }
        if let Some(us) = self.retention_us {
            builder = builder.retention_us(us);
        }
        builder.trace(&self.trace)
    }
}

/// Options of the `trace info` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfoOptions {
    /// The trace to summarize.
    pub trace: PathBuf,
    /// Output rendering.
    pub format: OutputFormat,
}

impl TraceInfoOptions {
    /// Parses `trace info` arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message if `--trace` is missing or the format is
    /// unknown.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let trace = opt_value(args, "--trace").ok_or("trace info requires --trace <path>")?;
        Ok(TraceInfoOptions {
            trace: trace.into(),
            format: parse_format(args)?,
        })
    }
}

/// Options of the `serve` subcommand: the listen address plus the server
/// tunables worth exposing on the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Address to listen on (e.g. `127.0.0.1:7878`).
    pub addr: String,
    /// Simulation worker threads, if overridden.
    pub workers: Option<usize>,
    /// Job-queue capacity, if overridden.
    pub queue: Option<usize>,
    /// Result-cache capacity, if overridden.
    pub cache: Option<usize>,
    /// Request-body size limit in bytes, if overridden.
    pub max_body: Option<usize>,
    /// Directory trace workloads are served from.
    pub trace_dir: Option<PathBuf>,
    /// `/metrics` latency histogram bucket bounds in microseconds, if
    /// overridden (`--latency-buckets 1ms,10ms,...`).
    pub latency_buckets: Option<Vec<u64>>,
    /// Structured-log format (`--log-format json|text`), if overridden.
    pub log_format: Option<LogFormat>,
    /// Coordinator mode: dispatch jobs to backends instead of simulating
    /// locally (`--coordinator`).
    pub coordinator: bool,
    /// Backend addresses to register at startup (repeatable `--backend`).
    pub backends: Vec<String>,
    /// Directory of the persistent result cache (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
}

/// Parses one `--latency-buckets` bound — `250us`, `5ms`, `2s`, or a bare
/// number of microseconds — into microseconds.
#[must_use]
pub fn parse_bucket_micros(v: &str) -> Option<u64> {
    let v = v.trim();
    let (digits, scale) = if let Some(d) = v.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = v.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = v.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        (v, 1)
    };
    let n: u64 = digits.parse().ok()?;
    n.checked_mul(scale).filter(|&micros| micros > 0)
}

/// Parses a comma-separated `--latency-buckets` list into strictly
/// ascending microsecond bounds.
///
/// # Errors
///
/// Returns a usage message for unparsable, non-positive or non-ascending
/// bounds.
pub fn parse_latency_buckets(list: &str) -> Result<Vec<u64>, String> {
    let bounds: Vec<u64> = list
        .split(',')
        .map(|item| {
            parse_bucket_micros(item).ok_or_else(|| {
                format!("bad --latency-buckets bound `{item}` (expected e.g. 250us, 5ms, 2s)")
            })
        })
        .collect::<Result<_, _>>()?;
    if bounds.is_empty() {
        return Err("--latency-buckets needs at least one bound".into());
    }
    if !bounds.windows(2).all(|w| w[0] < w[1]) {
        return Err("--latency-buckets bounds must be strictly ascending".into());
    }
    Ok(bounds)
}

/// Parsed options of the `check` subcommand (differential conformance
/// against the `refrint-oracle` reference model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOptions {
    /// Master seed of the scenario stream.
    pub seed: u64,
    /// How many scenarios to run.
    pub scenarios: u64,
    /// A single explicit scenario spec (repro mode), overriding the
    /// seeded stream.
    pub scenario: Option<String>,
    /// Pin every generated scenario's coherence protocol (the CI
    /// conformance matrix runs one leg per protocol).
    pub protocol: Option<CoherenceProtocol>,
    /// Run with the off-by-one fault injected into the oracle and expect
    /// the harness to catch it (harness self-test).
    pub self_test: bool,
    /// Print a progress line per scenario.
    pub progress: bool,
}

impl CheckOptions {
    /// The seed `tests/conformance.rs` and the CI job use.
    pub const DEFAULT_SEED: u64 = 0xC0FFEE;

    /// Parses `check` arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let seed = match opt_value(args, "--seed") {
            None => Self::DEFAULT_SEED,
            Some(v) => parse_u64(&v).ok_or_else(|| format!("bad --seed `{v}`"))?,
        };
        let scenarios = match opt_value(args, "--scenarios") {
            None => 200,
            Some(v) => {
                let n = parse_u64(&v).ok_or_else(|| format!("bad --scenarios `{v}`"))?;
                if n == 0 {
                    return Err("--scenarios must be at least 1".into());
                }
                n
            }
        };
        let protocol = match opt_value(args, "--protocol") {
            Some(p) => Some(parse_protocol(&p)?),
            None => None,
        };
        Ok(CheckOptions {
            seed,
            scenarios,
            scenario: opt_value(args, "--scenario"),
            protocol,
            self_test: has_flag(args, "--self-test"),
            progress: has_flag(args, "--progress"),
        })
    }
}

/// Parses a decimal or `0x`-prefixed hexadecimal `u64`.
#[must_use]
pub fn parse_u64(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

impl ServeOptions {
    /// Parses `serve` arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for missing/invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let addr = opt_value(args, "--addr").ok_or("serve requires --addr HOST:PORT")?;
        let positive = |flag: &str| -> Result<Option<usize>, String> {
            match opt_value(args, flag) {
                None => Ok(None),
                Some(v) => {
                    let n: usize = v.parse().map_err(|_| format!("bad {flag} `{v}`"))?;
                    if n == 0 {
                        return Err(format!("{flag} must be at least 1"));
                    }
                    Ok(Some(n))
                }
            }
        };
        let latency_buckets = match opt_value(args, "--latency-buckets") {
            Some(list) => Some(parse_latency_buckets(&list)?),
            None => None,
        };
        let log_format = match opt_value(args, "--log-format").as_deref() {
            None => None,
            Some("text") => Some(LogFormat::Text),
            Some("json") => Some(LogFormat::Json),
            Some(other) => {
                return Err(format!(
                    "unknown --log-format `{other}` (expected `text` or `json`)"
                ))
            }
        };
        let coordinator = has_flag(args, "--coordinator");
        let backends = opt_values(args, "--backend");
        if !coordinator && !backends.is_empty() {
            return Err("--backend only makes sense with --coordinator".into());
        }
        Ok(ServeOptions {
            addr,
            workers: positive("--workers")?,
            queue: positive("--queue")?,
            cache: positive("--cache")?,
            max_body: positive("--max-body")?,
            trace_dir: opt_value(args, "--trace-dir").map(Into::into),
            latency_buckets,
            log_format,
            coordinator,
            backends,
            cache_dir: opt_value(args, "--cache-dir").map(Into::into),
        })
    }

    /// The server options these flags describe (defaults filled from
    /// [`refrint_serve::ServerOptions::default`]).
    #[must_use]
    pub fn server_options(&self) -> refrint_serve::ServerOptions {
        let mut options = refrint_serve::ServerOptions::default();
        if let Some(workers) = self.workers {
            options.workers = workers;
        }
        if let Some(queue) = self.queue {
            options.queue_capacity = queue;
        }
        if let Some(cache) = self.cache {
            options.cache_capacity = cache;
        }
        if let Some(max_body) = self.max_body {
            options.max_body_bytes = max_body;
        }
        options.trace_dir = self.trace_dir.clone();
        if let Some(bounds) = &self.latency_buckets {
            options.latency_bounds_micros.clone_from(bounds);
        }
        if let Some(format) = self.log_format {
            options.log_format = format;
        }
        if self.coordinator {
            options.coordinator = Some(refrint_serve::coordinator::CoordinatorOptions {
                backends: self.backends.clone(),
                ..refrint_serve::coordinator::CoordinatorOptions::default()
            });
        }
        options.disk_cache_dir = self.cache_dir.clone();
        options
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_edram::policy::{DataPolicy, TimePolicy};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn every_label_emitted_by_refresh_policy_round_trips() {
        // The 14 paper-sweep labels plus assorted WB budgets and the long
        // forms: `--policy` must accept exactly what `label()` prints.
        let mut policies = RefreshPolicy::paper_sweep();
        policies.push(RefreshPolicy::new(
            TimePolicy::Refrint,
            DataPolicy::write_back(0, 0),
        ));
        policies.push(RefreshPolicy::new(
            TimePolicy::Periodic,
            DataPolicy::write_back(7, 123),
        ));
        for policy in policies {
            let parsed = parse_policy(&policy.label())
                .unwrap_or_else(|e| panic!("{} did not round-trip: {e}", policy.label()));
            assert_eq!(parsed, policy, "{}", policy.label());
        }
        assert_eq!(
            parse_policy("periodic.dirty").unwrap(),
            RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Dirty)
        );
    }

    #[test]
    fn bad_policy_labels_list_the_valid_ones() {
        let err = parse_policy("R.sometimes").unwrap_err();
        assert!(err.contains("R.sometimes"));
        assert!(err.contains("P.all"), "error must list valid labels: {err}");
        assert!(
            err.contains("R.WB(32,32)"),
            "error must list valid labels: {err}"
        );
        assert!(
            err.contains("WB(n,m)"),
            "error must explain the grammar: {err}"
        );
    }

    #[test]
    fn run_options_parse_and_build() {
        let opts = RunOptions::parse(&args(&[
            "--app",
            "lu",
            "--policy",
            "R.WB(4,4)",
            "--retention",
            "100",
            "--refs",
            "500",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(opts.app, AppPreset::Lu);
        assert_eq!(
            opts.policy,
            Some(RefreshPolicy::new(
                TimePolicy::Refrint,
                DataPolicy::write_back(4, 4)
            ))
        );
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.label(), "eDRAM 100us R.WB(4,4)");
        assert_eq!(config.seed, 9);
        assert_eq!(config.refs_per_thread, Some(500));
    }

    #[test]
    fn run_options_require_an_app() {
        assert!(RunOptions::parse(&args(&["--policy", "P.all"]))
            .unwrap_err()
            .contains("--app"));
    }

    #[test]
    fn sram_run_builds_the_baseline() {
        let opts = RunOptions::parse(&args(&["--app", "fft", "--sram"])).unwrap();
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.label(), "SRAM");
    }

    #[test]
    fn sweep_options_parse_jobs_and_apps() {
        let opts = SweepOptions::parse(&args(&[
            "--refs",
            "2000",
            "--apps",
            "fft,lu",
            "--jobs",
            "4",
            "--progress",
        ]))
        .unwrap();
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.progress);
        let cfg = opts.experiment().unwrap();
        assert_eq!(cfg.refs_per_thread, 2_000);
        assert_eq!(cfg.apps, vec![AppPreset::Fft, AppPreset::Lu]);
        assert!(SweepOptions::parse(&args(&["--jobs", "0"])).is_err());
        assert!(SweepOptions::parse(&args(&["--apps", "quake3"])).is_err());
    }

    #[test]
    fn run_protocol_and_retention_profile_flags_parse_and_build() {
        let opts = RunOptions::parse(&args(&[
            "--app",
            "lu",
            "--protocol",
            "dragon",
            "--retention-profile",
            "bimodal(25,60)",
        ]))
        .unwrap();
        assert_eq!(opts.protocol, Some(CoherenceProtocol::Dragon));
        assert_eq!(
            opts.retention_profile,
            Some(RetentionProfile::Bimodal {
                weak_pct: 25,
                weak_retention_pct: 60
            })
        );
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.protocol, CoherenceProtocol::Dragon);
        assert_eq!(
            config.retention_profile,
            RetentionProfile::Bimodal {
                weak_pct: 25,
                weak_retention_pct: 60
            }
        );
        assert_eq!(
            config.label(),
            "eDRAM 50us R.WB(32,32) dragon bimodal(25,60)"
        );

        // Omitting the flags leaves the defaults untouched.
        let opts = RunOptions::parse(&args(&["--app", "lu"])).unwrap();
        assert_eq!(opts.protocol, None);
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.protocol, CoherenceProtocol::Mesi);
        assert_eq!(config.retention_profile, RetentionProfile::Uniform);

        // Unknown labels are usage errors that name the valid forms.
        let err = RunOptions::parse(&args(&["--app", "lu", "--protocol", "moesi"])).unwrap_err();
        assert!(err.contains("mesi"), "{err}");
        let err =
            RunOptions::parse(&args(&["--app", "lu", "--retention-profile", "zipf"])).unwrap_err();
        assert!(err.contains("uniform"), "{err}");
        // SRAM composes with --protocol but rejects a non-uniform profile.
        let opts =
            RunOptions::parse(&args(&["--app", "fft", "--sram", "--protocol", "dragon"])).unwrap();
        assert!(opts.builder().build_config().is_ok());
        let opts = RunOptions::parse(&args(&[
            "--app",
            "fft",
            "--sram",
            "--retention-profile",
            "normal(10)",
        ]))
        .unwrap();
        assert!(opts.builder().build_config().is_err());
    }

    #[test]
    fn sweep_protocol_and_retention_profile_axes_parse() {
        let opts = SweepOptions::parse(&args(&[
            "--apps",
            "lu",
            "--protocol",
            "mesi",
            "--protocol",
            "dragon",
            "--retention-profile",
            "uniform",
            "--retention-profile",
            "normal(15)",
        ]))
        .unwrap();
        assert_eq!(
            opts.protocols,
            vec![CoherenceProtocol::Mesi, CoherenceProtocol::Dragon]
        );
        assert_eq!(
            opts.retention_profiles,
            vec![
                RetentionProfile::Uniform,
                RetentionProfile::Normal { sigma_pct: 15 }
            ]
        );
        let cfg = opts.experiment().unwrap();
        assert_eq!(cfg.protocols.len(), 2);
        assert_eq!(cfg.retention_profiles.len(), 2);

        // Absent flags keep the experiment's default single-point axes, so
        // the default sweep stays byte-identical.
        let cfg = SweepOptions::parse(&args(&[]))
            .unwrap()
            .experiment()
            .unwrap();
        assert_eq!(cfg.protocols, vec![CoherenceProtocol::Mesi]);
        assert_eq!(cfg.retention_profiles, vec![RetentionProfile::Uniform]);

        assert!(SweepOptions::parse(&args(&["--protocol", "dragonfly"])).is_err());
        assert!(SweepOptions::parse(&args(&["--retention-profile", "normal(0)"])).is_err());
    }

    #[test]
    fn format_flag_parses_and_rejects_unknowns() {
        assert_eq!(parse_format(&args(&[])).unwrap(), OutputFormat::Text);
        assert_eq!(
            parse_format(&args(&["--format", "text"])).unwrap(),
            OutputFormat::Text
        );
        assert_eq!(
            parse_format(&args(&["--format", "json"])).unwrap(),
            OutputFormat::Json
        );
        assert!(parse_format(&args(&["--format", "xml"])).is_err());
        let opts = RunOptions::parse(&args(&["--app", "lu", "--format", "json"])).unwrap();
        assert_eq!(opts.format, OutputFormat::Json);
        let opts = SweepOptions::parse(&args(&["--format", "json"])).unwrap();
        assert_eq!(opts.format, OutputFormat::Json);
    }

    #[test]
    fn run_timing_flag_parses() {
        let opts = RunOptions::parse(&args(&["--app", "lu"])).unwrap();
        assert!(!opts.timing);
        let opts = RunOptions::parse(&args(&["--app", "lu", "--timing"])).unwrap();
        assert!(opts.timing);
        // --timing must not change the simulated configuration.
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.label(), "eDRAM 50us R.WB(32,32)");
    }

    #[test]
    fn obs_options_parse_and_build() {
        let opts = ObsOptions::parse(&args(&[
            "--app",
            "fft",
            "--policy",
            "P.all",
            "--retention",
            "200",
            "--refs",
            "800",
            "--seed",
            "11",
            "--cores",
            "4",
        ]))
        .unwrap();
        assert_eq!(opts.app, AppPreset::Fft);
        assert_eq!(opts.sample_every, 1, "obs defaults to full sampling");
        assert_eq!(opts.format, OutputFormat::Json, "obs defaults to JSON");
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.label(), "eDRAM 200us P.all");
        assert_eq!(config.cores, 4);
        assert_eq!(config.seed, 11);

        let opts = ObsOptions::parse(&args(&[
            "--app", "lu", "--sample", "64", "--format", "text",
        ]))
        .unwrap();
        assert_eq!(opts.sample_every, 64);
        assert_eq!(opts.format, OutputFormat::Text);

        // The axis flags mirror `run`: they reach the built config's label.
        let opts = ObsOptions::parse(&args(&[
            "--app",
            "lu",
            "--protocol",
            "dragon",
            "--retention-profile",
            "normal(10)",
        ]))
        .unwrap();
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.label(), "eDRAM 50us R.WB(32,32) dragon normal(10)");
        assert!(
            ObsOptions::parse(&args(&["--app", "lu", "--protocol", "moesi"]))
                .unwrap_err()
                .contains("moesi")
        );

        assert!(ObsOptions::parse(&args(&[])).unwrap_err().contains("--app"));
        assert!(ObsOptions::parse(&args(&["--app", "lu", "--sample", "0"]))
            .unwrap_err()
            .contains("--sample"));
        assert!(
            ObsOptions::parse(&args(&["--app", "lu", "--format", "xml"]))
                .unwrap_err()
                .contains("xml")
        );
    }

    #[test]
    fn check_options_protocol_pin_parses() {
        let opts =
            CheckOptions::parse(&args(&["--protocol", "dragon", "--scenarios", "5"])).unwrap();
        assert_eq!(opts.protocol, Some(CoherenceProtocol::Dragon));
        assert_eq!(opts.scenarios, 5);
        let opts = CheckOptions::parse(&args(&[])).unwrap();
        assert_eq!(opts.protocol, None, "unpinned by default");
        assert_eq!(opts.seed, CheckOptions::DEFAULT_SEED);
        assert!(CheckOptions::parse(&args(&["--protocol", "moesi"]))
            .unwrap_err()
            .contains("moesi"));
    }

    #[test]
    fn trace_record_options_parse() {
        let opts = TraceRecordOptions::parse(&args(&[
            "--app",
            "fft",
            "--out",
            "/tmp/x.rft",
            "--cores",
            "4",
            "--refs",
            "100",
            "--seed",
            "7",
            "--text",
        ]))
        .unwrap();
        assert_eq!(opts.app, AppPreset::Fft);
        assert_eq!(opts.out, PathBuf::from("/tmp/x.rft"));
        assert_eq!(opts.format, TraceFormat::Text);
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.cores, 4);
        assert_eq!(config.seed, 7);
        assert_eq!(config.refs_per_thread, Some(100));
        assert!(TraceRecordOptions::parse(&args(&["--app", "fft"]))
            .unwrap_err()
            .contains("--out"));
        assert!(TraceRecordOptions::parse(&args(&["--out", "x"]))
            .unwrap_err()
            .contains("--app"));
    }

    #[test]
    fn trace_replay_options_parse() {
        let opts = TraceReplayOptions::parse(&args(&[
            "--trace",
            "/tmp/x.rft",
            "--policy",
            "P.dirty",
            "--retention",
            "100",
            "--format",
            "json",
        ]))
        .unwrap();
        assert_eq!(opts.trace, PathBuf::from("/tmp/x.rft"));
        assert_eq!(opts.format, OutputFormat::Json);
        assert_eq!(
            opts.policy,
            Some(RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Dirty))
        );
        assert!(TraceReplayOptions::parse(&args(&[]))
            .unwrap_err()
            .contains("--trace"));
    }

    #[test]
    fn trace_info_options_parse_formats() {
        let opts = TraceInfoOptions::parse(&args(&["--trace", "x.rft"])).unwrap();
        assert_eq!(opts.format, OutputFormat::Text);
        let opts =
            TraceInfoOptions::parse(&args(&["--trace", "x.rft", "--format", "json"])).unwrap();
        assert_eq!(opts.format, OutputFormat::Json);
        assert!(TraceInfoOptions::parse(&args(&["--trace", "x.rft", "--format", "xml"])).is_err());
        assert!(TraceInfoOptions::parse(&args(&[]))
            .unwrap_err()
            .contains("--trace"));
    }

    #[test]
    fn serve_options_parse_and_build_server_options() {
        let opts = ServeOptions::parse(&args(&[
            "--addr",
            "127.0.0.1:7878",
            "--workers",
            "3",
            "--queue",
            "16",
            "--cache",
            "9",
            "--max-body",
            "4096",
            "--trace-dir",
            "/tmp/traces",
        ]))
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:7878");
        let server = opts.server_options();
        assert_eq!(server.workers, 3);
        assert_eq!(server.queue_capacity, 16);
        assert_eq!(server.cache_capacity, 9);
        assert_eq!(server.max_body_bytes, 4096);
        assert_eq!(server.trace_dir, Some(PathBuf::from("/tmp/traces")));

        assert!(ServeOptions::parse(&args(&[]))
            .unwrap_err()
            .contains("--addr"));
        assert!(
            ServeOptions::parse(&args(&["--addr", "x", "--workers", "0"]))
                .unwrap_err()
                .contains("--workers")
        );
        // Defaults pass straight through.
        let opts = ServeOptions::parse(&args(&["--addr", "127.0.0.1:0"])).unwrap();
        let defaults = refrint_serve::ServerOptions::default();
        assert_eq!(opts.server_options().workers, defaults.workers);
        assert_eq!(
            opts.server_options().queue_capacity,
            defaults.queue_capacity
        );
        assert!(opts.server_options().coordinator.is_none());
        assert_eq!(opts.server_options().disk_cache_dir, None);
    }

    #[test]
    fn serve_options_parse_coordinator_flags() {
        let opts = ServeOptions::parse(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--coordinator",
            "--backend",
            "127.0.0.1:7001",
            "--backend",
            "127.0.0.1:7002",
            "--cache-dir",
            "/tmp/refrint-cache",
        ]))
        .unwrap();
        assert!(opts.coordinator);
        assert_eq!(opts.backends, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
        let server = opts.server_options();
        let coordinator = server.coordinator.expect("coordinator options are set");
        assert_eq!(coordinator.backends.len(), 2);
        assert_eq!(
            server.disk_cache_dir,
            Some(PathBuf::from("/tmp/refrint-cache"))
        );

        // --backend without --coordinator is a usage error.
        assert!(ServeOptions::parse(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--backend",
            "127.0.0.1:7001"
        ]))
        .unwrap_err()
        .contains("--coordinator"));
    }

    #[test]
    fn anomaly_tuning_flags_parse_and_validate() {
        let opts = SweepOptions::parse(&args(&[])).unwrap();
        assert!(opts.anomaly.is_default());
        let opts = SweepOptions::parse(&args(&["--anomaly-threshold", "3.5", "--min-slice", "6"]))
            .unwrap();
        assert_eq!((opts.anomaly.threshold, opts.anomaly.min_slice), (3.5, 6));
        let opts = ObsOptions::parse(&args(&[
            "--app",
            "lu",
            "--critical-path",
            "--anomaly-threshold",
            "4.0",
        ]))
        .unwrap();
        assert!(opts.critical_path);
        assert_eq!(opts.anomaly.threshold, 4.0);

        for bad in [
            &["--anomaly-threshold", "-1"][..],
            &["--anomaly-threshold", "NaN"],
            &["--anomaly-threshold", "inf"],
            &["--min-slice", "0"],
            &["--min-slice", "many"],
        ] {
            assert!(
                SweepOptions::parse(&args(bad)).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn latency_bucket_flags_parse_suffixes_and_reject_disorder() {
        assert_eq!(parse_bucket_micros("250us"), Some(250));
        assert_eq!(parse_bucket_micros("5ms"), Some(5_000));
        assert_eq!(parse_bucket_micros("2s"), Some(2_000_000));
        assert_eq!(parse_bucket_micros("123"), Some(123));
        assert_eq!(parse_bucket_micros("0ms"), None);
        assert_eq!(parse_bucket_micros("fast"), None);

        let opts = ServeOptions::parse(&args(&[
            "--addr",
            "127.0.0.1:0",
            "--latency-buckets",
            "1ms,10ms,100ms,1s",
            "--log-format",
            "json",
        ]))
        .unwrap();
        let server = opts.server_options();
        assert_eq!(
            server.latency_bounds_micros,
            vec![1_000, 10_000, 100_000, 1_000_000]
        );
        assert_eq!(server.log_format, LogFormat::Json);

        // Defaults are untouched when the flags are absent.
        let opts = ServeOptions::parse(&args(&["--addr", "127.0.0.1:0"])).unwrap();
        let defaults = refrint_serve::ServerOptions::default();
        assert_eq!(
            opts.server_options().latency_bounds_micros,
            defaults.latency_bounds_micros
        );
        assert_eq!(opts.server_options().log_format, LogFormat::Text);

        assert!(parse_latency_buckets("10ms,1ms").is_err());
        assert!(parse_latency_buckets("1ms,1ms").is_err());
        assert!(parse_latency_buckets("soon").is_err());
        assert!(ServeOptions::parse(&args(&["--addr", "x", "--log-format", "yaml"])).is_err());
    }

    #[test]
    fn repeated_trace_flags_accumulate() {
        let opts = SweepOptions::parse(&args(&["--trace", "a.rft", "--trace", "b.rft"])).unwrap();
        assert_eq!(
            opts.traces,
            vec![PathBuf::from("a.rft"), PathBuf::from("b.rft")]
        );
        // Unreadable trace files surface through experiment().
        assert!(opts.experiment().is_err());
    }
}
