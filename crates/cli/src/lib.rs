//! Argument parsing and command plumbing for `refrint-cli`, kept in a
//! library so every parser is unit-testable.
//!
//! The CLI is a thin shell over [`refrint::simulation::Simulation`] (single
//! runs) and [`refrint::sweep::SweepRunner`] (policy sweeps); everything
//! user-facing — flag parsing, policy-label resolution with helpful errors,
//! sweep sizing — lives here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use refrint::experiment::ExperimentConfig;
use refrint::simulation::{Simulation, SimulationBuilder};
use refrint_edram::model::PolicyRegistry;
use refrint_edram::policy::RefreshPolicy;
use refrint_workloads::apps::AppPreset;

/// Returns the value following `name` in `args`, if present.
#[must_use]
pub fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether the bare flag `name` is present.
#[must_use]
pub fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parses a `--policy` label, round-tripping every label
/// [`RefreshPolicy::label`] can emit (`P.all`, `R.valid`, `R.WB(32,32)`,
/// long forms like `periodic.dirty`, …). On mismatch the error lists every
/// valid label so the user can fix the invocation without reading the
/// source.
///
/// # Errors
///
/// Returns a human-readable message enumerating the valid labels.
pub fn parse_policy(label: &str) -> Result<RefreshPolicy, String> {
    match label.parse::<RefreshPolicy>() {
        Ok(policy) => Ok(policy),
        Err(_) => Err(PolicyRegistry::new()
            .resolve(label)
            .expect_err("label failed to parse as a descriptor")
            .to_string()),
    }
}

/// Parses a comma-separated `--apps` list.
///
/// # Errors
///
/// Returns the underlying parse error for the first unknown application.
pub fn parse_apps(list: &str) -> Result<Vec<AppPreset>, String> {
    list.split(',')
        .map(|name| name.trim().parse::<AppPreset>().map_err(|e| e.to_string()))
        .collect()
}

/// Options of the `run` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// The application to run.
    pub app: AppPreset,
    /// Use SRAM cells (the no-refresh baseline).
    pub sram: bool,
    /// Refresh policy label, if overridden.
    pub policy: Option<RefreshPolicy>,
    /// Retention time in microseconds, if overridden.
    pub retention_us: Option<u64>,
    /// References per thread, if overridden.
    pub refs: Option<u64>,
    /// Workload seed, if overridden.
    pub seed: Option<u64>,
}

impl RunOptions {
    /// Parses `run` subcommand arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for missing/invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let app_name = opt_value(args, "--app").ok_or("run requires --app <name>")?;
        let app: AppPreset = app_name.parse().map_err(|e| format!("{e}"))?;
        let sram = has_flag(args, "--sram");
        let policy = match opt_value(args, "--policy") {
            Some(p) => Some(parse_policy(&p)?),
            None => None,
        };
        let retention_us = match opt_value(args, "--retention") {
            Some(r) => Some(r.parse().map_err(|_| format!("bad retention `{r}`"))?),
            None => None,
        };
        let refs = match opt_value(args, "--refs") {
            Some(n) => Some(n.parse().map_err(|_| format!("bad --refs `{n}`"))?),
            None => None,
        };
        let seed = match opt_value(args, "--seed") {
            Some(s) => Some(s.parse().map_err(|_| format!("bad --seed `{s}`"))?),
            None => None,
        };
        Ok(RunOptions {
            app,
            sram,
            policy,
            retention_us,
            refs,
            seed,
        })
    }

    /// The simulation builder these options describe.
    #[must_use]
    pub fn builder(&self) -> SimulationBuilder {
        let mut builder = if self.sram {
            Simulation::builder().sram_baseline()
        } else {
            Simulation::builder().edram_recommended()
        };
        if let Some(policy) = self.policy {
            builder = builder.policy(policy);
        }
        if let Some(us) = self.retention_us {
            builder = builder.retention_us(us);
        }
        if let Some(refs) = self.refs {
            builder = builder.refs_per_thread(refs);
        }
        if let Some(seed) = self.seed {
            builder = builder.seed(seed);
        }
        builder
    }
}

/// Options of the `sweep` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// References per thread, if overridden.
    pub refs: Option<u64>,
    /// Applications to sweep, if restricted.
    pub apps: Option<Vec<AppPreset>>,
    /// Worker threads (`--jobs`); `None` means one per CPU.
    pub jobs: Option<usize>,
    /// Print per-run progress to stderr.
    pub progress: bool,
}

impl SweepOptions {
    /// Parses `sweep` subcommand arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message for invalid options.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let refs = match opt_value(args, "--refs") {
            Some(n) => Some(n.parse().map_err(|_| format!("bad --refs `{n}`"))?),
            None => None,
        };
        let apps = match opt_value(args, "--apps") {
            Some(list) => Some(parse_apps(&list)?),
            None => None,
        };
        let jobs = match opt_value(args, "--jobs") {
            Some(j) => {
                let jobs: usize = j.parse().map_err(|_| format!("bad --jobs `{j}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                Some(jobs)
            }
            None => None,
        };
        Ok(SweepOptions {
            refs,
            apps,
            jobs,
            progress: has_flag(args, "--progress"),
        })
    }

    /// The experiment configuration these options describe (based on the
    /// quick sweep).
    #[must_use]
    pub fn experiment(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        if let Some(refs) = self.refs {
            cfg = cfg.with_refs_per_thread(refs);
        }
        if let Some(apps) = &self.apps {
            cfg = cfg.with_apps(apps.clone());
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_edram::policy::{DataPolicy, TimePolicy};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn every_label_emitted_by_refresh_policy_round_trips() {
        // The 14 paper-sweep labels plus assorted WB budgets and the long
        // forms: `--policy` must accept exactly what `label()` prints.
        let mut policies = RefreshPolicy::paper_sweep();
        policies.push(RefreshPolicy::new(
            TimePolicy::Refrint,
            DataPolicy::write_back(0, 0),
        ));
        policies.push(RefreshPolicy::new(
            TimePolicy::Periodic,
            DataPolicy::write_back(7, 123),
        ));
        for policy in policies {
            let parsed = parse_policy(&policy.label())
                .unwrap_or_else(|e| panic!("{} did not round-trip: {e}", policy.label()));
            assert_eq!(parsed, policy, "{}", policy.label());
        }
        assert_eq!(
            parse_policy("periodic.dirty").unwrap(),
            RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Dirty)
        );
    }

    #[test]
    fn bad_policy_labels_list_the_valid_ones() {
        let err = parse_policy("R.sometimes").unwrap_err();
        assert!(err.contains("R.sometimes"));
        assert!(err.contains("P.all"), "error must list valid labels: {err}");
        assert!(
            err.contains("R.WB(32,32)"),
            "error must list valid labels: {err}"
        );
        assert!(
            err.contains("WB(n,m)"),
            "error must explain the grammar: {err}"
        );
    }

    #[test]
    fn run_options_parse_and_build() {
        let opts = RunOptions::parse(&args(&[
            "--app",
            "lu",
            "--policy",
            "R.WB(4,4)",
            "--retention",
            "100",
            "--refs",
            "500",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(opts.app, AppPreset::Lu);
        assert_eq!(
            opts.policy,
            Some(RefreshPolicy::new(
                TimePolicy::Refrint,
                DataPolicy::write_back(4, 4)
            ))
        );
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.label(), "eDRAM 100us R.WB(4,4)");
        assert_eq!(config.seed, 9);
        assert_eq!(config.refs_per_thread, Some(500));
    }

    #[test]
    fn run_options_require_an_app() {
        assert!(RunOptions::parse(&args(&["--policy", "P.all"]))
            .unwrap_err()
            .contains("--app"));
    }

    #[test]
    fn sram_run_builds_the_baseline() {
        let opts = RunOptions::parse(&args(&["--app", "fft", "--sram"])).unwrap();
        let config = opts.builder().build_config().unwrap();
        assert_eq!(config.label(), "SRAM");
    }

    #[test]
    fn sweep_options_parse_jobs_and_apps() {
        let opts = SweepOptions::parse(&args(&[
            "--refs",
            "2000",
            "--apps",
            "fft,lu",
            "--jobs",
            "4",
            "--progress",
        ]))
        .unwrap();
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.progress);
        let cfg = opts.experiment();
        assert_eq!(cfg.refs_per_thread, 2_000);
        assert_eq!(cfg.apps, vec![AppPreset::Fft, AppPreset::Lu]);
        assert!(SweepOptions::parse(&args(&["--jobs", "0"])).is_err());
        assert!(SweepOptions::parse(&args(&["--apps", "quake3"])).is_err());
    }
}
