#![allow(missing_docs)] //! placeholder
