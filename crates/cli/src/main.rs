//! `refrint-cli`: command-line front end for the Refrint reproduction.
//!
//! Subcommands:
//!
//! * `show-config` — print the paper's architecture configuration (Table 5.1).
//! * `classify` — classify the 11 applications into Class 1/2/3 (Table 6.1).
//! * `run` — run one application on one configuration and print the report.
//! * `sweep` — run a (reduced) policy sweep in parallel and print the
//!   headline numbers.
//! * `trace record` / `trace replay` / `trace info` — capture a workload to
//!   a trace file, replay it bit-for-bit, or summarize its contents.
//! * `check` — differential conformance: run seeded random scenarios
//!   through both the optimized simulator and the independent
//!   `refrint-oracle` reference model, diff the reports field by field,
//!   and shrink any divergence to a minimal repro.
//! * `serve` — run the `refrint-serve` HTTP service (job queue, worker
//!   pool, result cache) on a listen address.

use std::process::ExitCode;

use refrint::config::SystemConfig;
use refrint::figures::headline_summary;
use refrint::sweep::{SweepProgress, SweepRunner};
use refrint_cli::{
    json, ObsOptions, OutputFormat, RunOptions, ServeOptions, SweepOptions, TraceInfoOptions,
    TraceRecordOptions, TraceReplayOptions,
};
use refrint_trace::{TraceFile, TraceSummary};
use refrint_workloads::apps::AppPreset;
use refrint_workloads::classify::{classify, ClassifierConfig};

const USAGE: &str = "\
refrint-cli <command> [options]

Commands:
  show-config                      print the simulated architecture (paper Table 5.1)
  classify                         classify applications into Class 1/2/3 (paper Table 6.1)
  run --app <name> [--sram] [--policy P.all|R.WB(32,32)|...] [--retention 50|100|200]
      [--protocol mesi|dragon] [--retention-profile uniform|normal(S)|bimodal(W,R)]
      [--refs <n>] [--seed <n>] [--timing] [--format text|json]
                                   run one application and print the report
                                   (--timing adds the cycle/host-time table on stderr)
  obs --app <name> [--sram] [--policy <label>] [--retention <us>]
      [--protocol mesi|dragon] [--retention-profile <label>] [--refs <n>]
      [--seed <n>] [--cores <n>] [--sample <n>] [--critical-path]
      [--anomaly-threshold <z>] [--min-slice <n>] [--format json|text]
                                   run with full-sampling observability and print the
                                   OTLP-shaped span export (docs/observability.md);
                                   --critical-path prints the bounding-subsystem report
  sweep [--refs <n>] [--apps a,b] [--trace <file>]... [--cores <n>] [--jobs <n>]
        [--protocol mesi|dragon]... [--retention-profile <label>]...
        [--anomaly-threshold <z>] [--min-slice <n>] [--progress] [--format text|json]
                                   run the policy sweep across worker threads
                                   (repeat --protocol / --retention-profile to add
                                   coherence and per-bank retention axes)
  trace record --app <name> --out <file> [--cores <n>] [--refs <n>] [--seed <n>] [--text]
                                   capture a workload's reference streams to a trace
  trace replay --trace <file> [--sram] [--policy <label>] [--retention <us>]
               [--format text|json]
                                   replay a recorded trace through a configuration
  trace info --trace <file> [--format text|json]
                                   summarize a trace (threads, gaps, strides)
  check [--seed <n>] [--scenarios <n>] [--scenario \"<spec>\"] [--protocol mesi|dragon]
        [--self-test] [--progress]
                                   run the oracle conformance harness (docs/testing.md;
                                   --protocol pins every scenario's coherence protocol,
                                   which is how CI runs one conformance leg per protocol)
  serve --addr HOST:PORT [--workers <n>] [--queue <n>] [--cache <n>]
        [--max-body <bytes>] [--trace-dir <dir>] [--latency-buckets 1ms,10ms,...]
        [--log-format text|json] [--cache-dir <dir>]
        [--coordinator] [--backend HOST:PORT]...
                                   run the HTTP simulation service (see docs/serve.md);
                                   REFRINT_LOG=error|warn|info|debug sets log verbosity;
                                   --coordinator dispatches jobs to --backend servers
                                   instead of simulating locally (docs/coordinator.md);
                                   --cache-dir persists results across restarts
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "show-config" => show_config(),
        "classify" => classify_apps(),
        "run" => run_one(rest),
        "obs" => obs(rest),
        "sweep" => sweep(rest),
        "trace" => trace(rest),
        "check" => check(rest),
        "serve" => serve(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("refrint-cli: {e}");
            ExitCode::FAILURE
        }
    }
}

fn show_config() -> Result<(), String> {
    println!("== Full-SRAM baseline ==");
    println!("{}", SystemConfig::sram_baseline());
    println!();
    println!("== Recommended full-eDRAM configuration ==");
    println!("{}", SystemConfig::edram_recommended());
    Ok(())
}

fn classify_apps() -> Result<(), String> {
    println!("== Table 6.1: application binning ==");
    let config = ClassifierConfig::default();
    for app in AppPreset::ALL {
        let report = classify(&app.model(), &config);
        let marker = if report.class == app.paper_class() {
            ""
        } else {
            "  (differs from paper!)"
        };
        println!("{report}{marker}");
    }
    Ok(())
}

/// Prints a run report in the requested format.
fn print_report(report: &refrint::report::SimReport, format: OutputFormat) {
    match format {
        OutputFormat::Json => println!("{}", json::report(report)),
        OutputFormat::Text => {
            println!("{report}");
            println!();
            println!(
                "l3 miss rate    : {:.2} per 1000 data refs",
                report.l3_miss_rate_per_mille()
            );
            println!(
                "refresh rate    : {:.2} refreshes per kilo-cycle",
                report.refreshes_per_kilocycle()
            );
        }
    }
}

fn run_one(args: &[String]) -> Result<(), String> {
    let options = RunOptions::parse(args)?;
    let mut simulation = options.builder().build().map_err(|e| e.to_string())?;
    let outcome = simulation.run(options.app);
    print_report(&outcome.report, options.format);
    if options.timing {
        // Stderr, so stdout stays byte-identical with and without --timing.
        eprintln!("{}", simulation.obs_summary());
    }
    Ok(())
}

/// One fully-instrumented run whose product is the span export itself.
fn obs(args: &[String]) -> Result<(), String> {
    let options = ObsOptions::parse(args)?;
    let mut simulation = options.builder().build().map_err(|e| e.to_string())?;
    let outcome = simulation.run(options.app);
    let summary = simulation.obs_summary();
    anomaly_scan(&summary, options.anomaly);
    if options.critical_path {
        println!(
            "{}",
            refrint_obs::critical_path::subsystem_critical_path(&summary)
        );
        return Ok(());
    }
    match options.format {
        OutputFormat::Json => println!(
            "{}",
            refrint_obs::otlp::render(&summary, outcome.config_label(), outcome.workload())
        ),
        OutputFormat::Text => println!("{summary}"),
    }
    Ok(())
}

/// Scores the sampled span durations per (subsystem, kind) slice and
/// reports outliers on stderr, keeping stdout byte-identical whether or
/// not anything is flagged.
fn anomaly_scan(summary: &refrint_obs::ObsSummary, tuning: refrint_obs::anomaly::AnomalyTuning) {
    use std::collections::BTreeMap;
    let mut slices: BTreeMap<(&'static str, &'static str), Vec<f64>> = BTreeMap::new();
    for span in &summary.sampled {
        slices
            .entry((span.subsystem.name(), span.kind))
            .or_default()
            .push(span.dur as f64);
    }
    // Cap the per-outlier lines so a jittery slice cannot flood stderr;
    // the closing summary always carries the full count.
    const MAX_LINES: usize = 8;
    let mut flagged = 0usize;
    for ((subsystem, kind), values) in &slices {
        let flags =
            refrint_obs::anomaly::flag_outliers_with(values, tuning.threshold, tuning.min_slice);
        for f in &flags {
            flagged += 1;
            if flagged <= MAX_LINES {
                eprintln!(
                    "anomaly: {subsystem}/{kind} sample #{} dur {:.0} cycles (median {:.0}, robust z {:+.1})",
                    f.index, f.value, f.median, f.robust_z
                );
            }
        }
    }
    if flagged > MAX_LINES {
        eprintln!("anomaly: ... and {} more", flagged - MAX_LINES);
    }
    eprintln!(
        "anomaly scan: {flagged} outlier(s) in {} sampled span(s) across {} slice(s) (threshold {}, min slice {})",
        summary.sampled.len(),
        slices.len(),
        tuning.threshold,
        tuning.min_slice
    );
}

fn sweep(args: &[String]) -> Result<(), String> {
    let options = SweepOptions::parse(args)?;
    let cfg = options.experiment()?;
    let mut runner = SweepRunner::new(cfg);
    if let Some(jobs) = options.jobs {
        runner = runner.workers(jobs);
    }
    if options.progress {
        runner = runner.observer(|p: &SweepProgress| {
            eprintln!(
                "[{}/{}] {} on {}",
                p.completed, p.total, p.app, p.config_label
            );
        });
    }
    eprintln!(
        "running {} simulations ({} refs per thread)...",
        runner.config().total_runs(),
        runner.config().refs_per_thread
    );
    let results = runner.run().map_err(|e| e.to_string())?;
    if options.format == OutputFormat::Json {
        println!("{}", json::sweep_tuned(&results, options.anomaly));
        return Ok(());
    }
    for &retention in &results.retentions_us {
        if let Some(h) = headline_summary(&results, retention) {
            println!("== {retention} us ==");
            println!(
                "Periodic All     : memory {:.2}  system {:.2}  slowdown {:.2}",
                h.baseline_memory_energy, h.baseline_system_energy, h.baseline_slowdown
            );
            println!(
                "Refrint WB(32,32): memory {:.2}  system {:.2}  slowdown {:.2}",
                h.refrint_memory_energy, h.refrint_system_energy, h.refrint_slowdown
            );
        }
    }
    Ok(())
}

fn trace(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first() else {
        return Err(format!("trace requires a subcommand\n{USAGE}"));
    };
    let rest = &args[1..];
    match sub.as_str() {
        "record" => trace_record(rest),
        "replay" => trace_replay(rest),
        "info" => trace_info(rest),
        other => Err(format!("unknown trace subcommand `{other}`\n{USAGE}")),
    }
}

fn trace_record(args: &[String]) -> Result<(), String> {
    let options = TraceRecordOptions::parse(args)?;
    let simulation = options.builder().build().map_err(|e| e.to_string())?;
    let meta = simulation
        .capture_model_as(&options.app.model(), &options.out, options.format)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "recorded {} ({} threads, seed {:#x}) to {}",
        meta.workload,
        meta.threads,
        meta.seed,
        options.out.display()
    );
    Ok(())
}

fn trace_replay(args: &[String]) -> Result<(), String> {
    let options = TraceReplayOptions::parse(args)?;
    let mut simulation = options.builder().build().map_err(|e| e.to_string())?;
    let outcome = simulation.replay().map_err(|e| e.to_string())?;
    print_report(&outcome.report, options.format);
    Ok(())
}

fn trace_info(args: &[String]) -> Result<(), String> {
    let options = TraceInfoOptions::parse(args)?;
    let trace = TraceFile::open(&options.trace).map_err(|e| e.to_string())?;
    let summary = TraceSummary::collect(&trace).map_err(|e| e.to_string())?;
    match options.format {
        OutputFormat::Json => println!("{}", json::trace_summary(&summary)),
        OutputFormat::Text => {
            println!("trace           : {}", options.trace.display());
            println!("{summary}");
        }
    }
    Ok(())
}

/// Differential conformance against the independent oracle.
fn check(args: &[String]) -> Result<(), String> {
    use refrint_cli::CheckOptions;
    use refrint_oracle::harness::{run_check_pinned, run_scenario_with};
    use refrint_oracle::scenario::Scenario;
    use refrint_oracle::system::Fault;

    let options = CheckOptions::parse(args)?;
    let fault = options.self_test.then_some(Fault::DecayCleanBudgetOffByOne);

    // Repro mode: one explicit scenario, no shrinking needed (the spec is
    // already a minimal repro, or the user is bisecting by hand). The
    // --self-test fault applies here too, so a self-test divergence's
    // printed repro command stays reproducible.
    if let Some(spec) = &options.scenario {
        let scenario = Scenario::from_spec(spec)?;
        eprintln!("checking scenario: {scenario}");
        let diffs = run_scenario_with(&scenario, fault).map_err(|e| e.to_string())?;
        if diffs.is_empty() {
            println!("ok: oracle and simulator agree on `{scenario}`");
            return Ok(());
        }
        let mut out = format!("oracle and simulator disagree on `{scenario}`:\n");
        for d in &diffs {
            out.push_str(&format!("  {d}\n"));
        }
        return Err(out);
    }

    if options.self_test {
        eprintln!(
            "self-test: off-by-one injected into the oracle's decay settlement; \
             the harness must catch it"
        );
    }
    match options.protocol {
        Some(protocol) => eprintln!(
            "running {} scenarios (seed {:#x}, protocol pinned to {})...",
            options.scenarios,
            options.seed,
            protocol.label()
        ),
        None => eprintln!(
            "running {} scenarios (seed {:#x})...",
            options.scenarios, options.seed
        ),
    }
    let outcome = run_check_pinned(
        options.seed,
        options.scenarios,
        options.protocol,
        fault,
        |index, scenario| {
            if options.progress {
                eprintln!("[{}/{}] {scenario}", index + 1, options.scenarios);
            }
        },
    )
    .map_err(|e| e.to_string())?;

    match (outcome.divergence, options.self_test) {
        (None, false) => {
            println!(
                "ok: oracle and simulator agree field-for-field on {} scenarios",
                outcome.scenarios_run
            );
            Ok(())
        }
        (None, true) => Err(format!(
            "self-test FAILED: the injected fault survived {} scenarios undetected",
            outcome.scenarios_run
        )),
        (Some(divergence), true) => {
            println!(
                "self-test ok: injected fault caught after {} scenarios and shrunk in {} steps",
                outcome.scenarios_run, divergence.shrink_steps
            );
            println!("{divergence}");
            Ok(())
        }
        (Some(divergence), false) => Err(divergence.to_string()),
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let options = ServeOptions::parse(args)?;
    refrint_serve::install_sigterm_handler();
    let mut server_options = options.server_options();
    // The library default is quiet (errors only); the CLI serves humans, so
    // default to info and let REFRINT_LOG override in either direction.
    server_options.log_level =
        refrint_obs::log::Level::from_env("REFRINT_LOG", refrint_obs::log::Level::Info);
    let server = refrint_serve::Server::bind(options.addr.as_str(), server_options)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    if options.coordinator {
        eprintln!(
            "refrint-serve: coordinating {} backend(s) on http://{addr} \
             (POST /run, POST /sweep, POST /backends)",
            options.backends.len()
        );
    } else {
        eprintln!(
            "refrint-serve: listening on http://{addr} (POST /run, POST /sweep, GET /healthz)"
        );
    }
    server.run().map_err(|e| e.to_string())
}
