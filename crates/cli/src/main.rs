//! `refrint-cli`: command-line front end for the Refrint reproduction.
//!
//! Subcommands:
//!
//! * `show-config` — print the paper's architecture configuration (Table 5.1).
//! * `classify` — classify the 11 applications into Class 1/2/3 (Table 6.1).
//! * `run` — run one application on one configuration and print the report.
//! * `sweep` — run a (reduced) policy sweep in parallel and print the
//!   headline numbers.

use std::process::ExitCode;

use refrint::config::SystemConfig;
use refrint::figures::headline_summary;
use refrint::sweep::{SweepProgress, SweepRunner};
use refrint_cli::{RunOptions, SweepOptions};
use refrint_workloads::apps::AppPreset;
use refrint_workloads::classify::{classify, ClassifierConfig};

const USAGE: &str = "\
refrint-cli <command> [options]

Commands:
  show-config                      print the simulated architecture (paper Table 5.1)
  classify                         classify applications into Class 1/2/3 (paper Table 6.1)
  run --app <name> [--sram] [--policy P.all|R.WB(32,32)|...] [--retention 50|100|200]
      [--refs <n>] [--seed <n>]    run one application and print the report
  sweep [--refs <n>] [--apps a,b] [--jobs <n>] [--progress]
                                   run the policy sweep across worker threads
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "show-config" => show_config(),
        "classify" => classify_apps(),
        "run" => run_one(rest),
        "sweep" => sweep(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("refrint-cli: {e}");
            ExitCode::FAILURE
        }
    }
}

fn show_config() -> Result<(), String> {
    println!("== Full-SRAM baseline ==");
    println!("{}", SystemConfig::sram_baseline());
    println!();
    println!("== Recommended full-eDRAM configuration ==");
    println!("{}", SystemConfig::edram_recommended());
    Ok(())
}

fn classify_apps() -> Result<(), String> {
    println!("== Table 6.1: application binning ==");
    let config = ClassifierConfig::default();
    for app in AppPreset::ALL {
        let report = classify(&app.model(), &config);
        let marker = if report.class == app.paper_class() {
            ""
        } else {
            "  (differs from paper!)"
        };
        println!("{report}{marker}");
    }
    Ok(())
}

fn run_one(args: &[String]) -> Result<(), String> {
    let options = RunOptions::parse(args)?;
    let mut simulation = options.builder().build().map_err(|e| e.to_string())?;
    let outcome = simulation.run(options.app);
    println!("{outcome}");
    println!();
    println!(
        "l3 miss rate    : {:.2} per 1000 data refs",
        outcome.report.l3_miss_rate_per_mille()
    );
    println!(
        "refresh rate    : {:.2} refreshes per kilo-cycle",
        outcome.report.refreshes_per_kilocycle()
    );
    Ok(())
}

fn sweep(args: &[String]) -> Result<(), String> {
    let options = SweepOptions::parse(args)?;
    let cfg = options.experiment();
    let mut runner = SweepRunner::new(cfg);
    if let Some(jobs) = options.jobs {
        runner = runner.workers(jobs);
    }
    if options.progress {
        runner = runner.observer(|p: &SweepProgress| {
            eprintln!(
                "[{}/{}] {} on {}",
                p.completed, p.total, p.app, p.config_label
            );
        });
    }
    eprintln!(
        "running {} simulations ({} refs per thread)...",
        runner.config().total_runs(),
        runner.config().refs_per_thread
    );
    let results = runner.run().map_err(|e| e.to_string())?;
    for &retention in &results.retentions_us {
        if let Some(h) = headline_summary(&results, retention) {
            println!("== {retention} us ==");
            println!(
                "Periodic All     : memory {:.2}  system {:.2}  slowdown {:.2}",
                h.baseline_memory_energy, h.baseline_system_energy, h.baseline_slowdown
            );
            println!(
                "Refrint WB(32,32): memory {:.2}  system {:.2}  slowdown {:.2}",
                h.refrint_memory_energy, h.refrint_system_energy, h.refrint_slowdown
            );
        }
    }
    Ok(())
}
