//! `refrint-cli`: command-line front end for the Refrint reproduction.
//!
//! Subcommands:
//!
//! * `show-config` — print the paper's architecture configuration (Table 5.1).
//! * `classify` — classify the 11 applications into Class 1/2/3 (Table 6.1).
//! * `run` — run one application on one configuration and print the report.
//! * `sweep` — run a (reduced) policy sweep and print the headline numbers.

use std::process::ExitCode;

use refrint::config::SystemConfig;
use refrint::experiment::{run_sweep, ExperimentConfig};
use refrint::figures::headline_summary;
use refrint::system::CmpSystem;
use refrint_edram::policy::RefreshPolicy;
use refrint_edram::retention::RetentionConfig;
use refrint_energy::tech::CellTech;
use refrint_workloads::apps::AppPreset;
use refrint_workloads::classify::{classify, ClassifierConfig};

const USAGE: &str = "\
refrint-cli <command> [options]

Commands:
  show-config                      print the simulated architecture (paper Table 5.1)
  classify                         classify applications into Class 1/2/3 (paper Table 6.1)
  run --app <name> [--sram] [--policy P.all|R.WB(32,32)|...] [--retention 50|100|200]
      [--refs <n>] [--seed <n>]    run one application and print the report
  sweep [--refs <n>] [--apps a,b]  run the policy sweep and print headline numbers
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "show-config" => show_config(),
        "classify" => classify_apps(),
        "run" => run_one(rest),
        "sweep" => sweep(rest),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("refrint-cli: {e}");
            ExitCode::FAILURE
        }
    }
}

fn opt_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn show_config() -> Result<(), String> {
    println!("== Full-SRAM baseline ==");
    println!("{}", SystemConfig::sram_baseline());
    println!();
    println!("== Recommended full-eDRAM configuration ==");
    println!("{}", SystemConfig::edram_recommended());
    Ok(())
}

fn classify_apps() -> Result<(), String> {
    println!("== Table 6.1: application binning ==");
    let config = ClassifierConfig::default();
    for app in AppPreset::ALL {
        let report = classify(&app.model(), &config);
        let marker = if report.class == app.paper_class() { "" } else { "  (differs from paper!)" };
        println!("{report}{marker}");
    }
    Ok(())
}

fn run_one(args: &[String]) -> Result<(), String> {
    let app_name = opt_value(args, "--app").ok_or("run requires --app <name>")?;
    let app: AppPreset = app_name.parse().map_err(|e| format!("{e}"))?;

    let mut config = SystemConfig::edram_recommended();
    if has_flag(args, "--sram") {
        config = config.with_cells(CellTech::Sram);
    }
    if let Some(p) = opt_value(args, "--policy") {
        let policy: RefreshPolicy = p.parse().map_err(|e| format!("{e}"))?;
        config = config.with_policy(policy);
    }
    if let Some(r) = opt_value(args, "--retention") {
        let us: u64 = r.parse().map_err(|_| format!("bad retention `{r}`"))?;
        let retention = match us {
            50 => RetentionConfig::microseconds_50(),
            100 => RetentionConfig::microseconds_100(),
            200 => RetentionConfig::microseconds_200(),
            _ => return Err(format!("unsupported retention {us} (use 50, 100 or 200)")),
        };
        config = config.with_retention(retention);
    }
    if let Some(n) = opt_value(args, "--refs") {
        config = config.with_scale(n.parse().map_err(|_| format!("bad --refs `{n}`"))?);
    }
    if let Some(s) = opt_value(args, "--seed") {
        config = config.with_seed(s.parse().map_err(|_| format!("bad --seed `{s}`"))?);
    }

    let mut system = CmpSystem::new(config).map_err(|e| e.to_string())?;
    let report = system.run_app(app);
    println!("{report}");
    println!();
    println!(
        "l3 miss rate    : {:.2} per 1000 data refs",
        report.l3_miss_rate_per_mille()
    );
    println!(
        "refresh rate    : {:.2} refreshes per kilo-cycle",
        report.refreshes_per_kilocycle()
    );
    Ok(())
}

fn sweep(args: &[String]) -> Result<(), String> {
    let mut cfg = ExperimentConfig::quick();
    if let Some(n) = opt_value(args, "--refs") {
        cfg = cfg.with_refs_per_thread(n.parse().map_err(|_| format!("bad --refs `{n}`"))?);
    }
    if let Some(list) = opt_value(args, "--apps") {
        let mut apps = Vec::new();
        for name in list.split(',') {
            apps.push(name.parse::<AppPreset>().map_err(|e| format!("{e}"))?);
        }
        cfg = cfg.with_apps(apps);
    }
    eprintln!(
        "running {} simulations ({} refs per thread)...",
        cfg.total_runs(),
        cfg.refs_per_thread
    );
    let results = run_sweep(&cfg).map_err(|e| e.to_string())?;
    for &retention in &results.retentions_us {
        if let Some(h) = headline_summary(&results, retention) {
            println!("== {retention} us ==");
            println!(
                "Periodic All     : memory {:.2}  system {:.2}  slowdown {:.2}",
                h.baseline_memory_energy, h.baseline_system_energy, h.baseline_slowdown
            );
            println!(
                "Refrint WB(32,32): memory {:.2}  system {:.2}  slowdown {:.2}",
                h.refrint_memory_energy, h.refrint_system_energy, h.refrint_slowdown
            );
        }
    }
    Ok(())
}
