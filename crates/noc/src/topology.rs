//! Torus (k-ary 2-cube) topology.

use std::fmt;

use crate::error::NocError;

/// Identifier of a node (router) on the torus.
///
/// Node ids are assigned in row-major order: `id = y * width + x`.
/// In the paper's configuration a node hosts one core, its private L1/L2,
/// and one bank of the shared L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a raw index.
    #[must_use]
    pub const fn new(raw: usize) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    #[must_use]
    pub const fn raw(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(raw: usize) -> Self {
        NodeId(raw)
    }
}

/// A 2-D torus of `width × height` routers with wraparound links in both
/// dimensions (the paper's 4×4 torus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Torus {
    width: usize,
    height: usize,
}

impl Torus {
    /// Creates a torus.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::InvalidTopology`] if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, NocError> {
        if width == 0 || height == 0 {
            return Err(NocError::InvalidTopology {
                reason: format!("dimensions must be non-zero, got {width}x{height}"),
            });
        }
        Ok(Torus { width, height })
    }

    /// The paper's 4×4 torus.
    #[must_use]
    pub fn paper_4x4() -> Self {
        Torus {
            width: 4,
            height: 4,
        }
    }

    /// Width (number of columns).
    #[must_use]
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Height (number of rows).
    #[must_use]
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    #[must_use]
    pub const fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    /// The node at column `x`, row `y`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] if the coordinates are outside
    /// the torus.
    pub fn node(&self, x: usize, y: usize) -> Result<NodeId, NocError> {
        if x >= self.width || y >= self.height {
            return Err(NocError::NodeOutOfRange {
                index: y * self.width + x,
                nodes: self.num_nodes(),
            });
        }
        Ok(NodeId(y * self.width + x))
    }

    /// The `(x, y)` coordinates of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] if the node id is out of range.
    pub fn coords(&self, node: NodeId) -> Result<(usize, usize), NocError> {
        if node.raw() >= self.num_nodes() {
            return Err(NocError::NodeOutOfRange {
                index: node.raw(),
                nodes: self.num_nodes(),
            });
        }
        Ok((node.raw() % self.width, node.raw() / self.width))
    }

    /// Iterates over every node id.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }

    /// The shortest distance along one ring dimension of size `k`, taking the
    /// wraparound link when it is shorter.
    #[must_use]
    pub fn ring_distance(k: usize, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(k - d)
    }

    /// The four neighbours (±x, ±y with wraparound) of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`NocError::NodeOutOfRange`] if the node id is out of range.
    pub fn neighbours(&self, node: NodeId) -> Result<[NodeId; 4], NocError> {
        let (x, y) = self.coords(node)?;
        let xm = (x + self.width - 1) % self.width;
        let xp = (x + 1) % self.width;
        let ym = (y + self.height - 1) % self.height;
        let yp = (y + 1) % self.height;
        Ok([
            NodeId(y * self.width + xm),
            NodeId(y * self.width + xp),
            NodeId(ym * self.width + x),
            NodeId(yp * self.width + x),
        ])
    }
}

impl Default for Torus {
    fn default() -> Self {
        Torus::paper_4x4()
    }
}

impl fmt::Display for Torus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} torus", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_round_trip() {
        let t = Torus::paper_4x4();
        for id in t.nodes() {
            let (x, y) = t.coords(id).unwrap();
            assert_eq!(t.node(x, y).unwrap(), id);
        }
        assert_eq!(t.num_nodes(), 16);
    }

    #[test]
    fn out_of_range_rejected() {
        let t = Torus::paper_4x4();
        assert!(t.node(4, 0).is_err());
        assert!(t.node(0, 4).is_err());
        assert!(t.coords(NodeId::new(16)).is_err());
        assert!(Torus::new(0, 4).is_err());
        assert!(Torus::new(4, 0).is_err());
    }

    #[test]
    fn ring_distance_uses_wraparound() {
        assert_eq!(Torus::ring_distance(4, 0, 3), 1);
        assert_eq!(Torus::ring_distance(4, 0, 2), 2);
        assert_eq!(Torus::ring_distance(4, 1, 1), 0);
        assert_eq!(Torus::ring_distance(8, 0, 5), 3);
    }

    #[test]
    fn neighbours_are_four_distinct_nodes_on_4x4() {
        let t = Torus::paper_4x4();
        for id in t.nodes() {
            let n = t.neighbours(id).unwrap();
            assert!(n.iter().all(|&x| x != id));
            let mut uniq = n.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 4);
        }
    }

    #[test]
    fn corner_wraparound_neighbours() {
        let t = Torus::paper_4x4();
        let corner = t.node(0, 0).unwrap();
        let n = t.neighbours(corner).unwrap();
        // -x wraps to (3,0) = node 3, +x is node 1, -y wraps to (0,3) = node 12, +y is node 4.
        assert_eq!(
            n,
            [
                NodeId::new(3),
                NodeId::new(1),
                NodeId::new(12),
                NodeId::new(4)
            ]
        );
    }

    #[test]
    fn display_and_default() {
        assert_eq!(Torus::default().to_string(), "4x4 torus");
        assert_eq!(NodeId::new(3).to_string(), "node3");
        assert_eq!(NodeId::from(2usize).raw(), 2);
    }
}
