//! Torus network-on-chip model for the Refrint reproduction.
//!
//! The paper's 16 cores are connected by a 4×4 torus; each L3 bank sits at a
//! vertex of the torus and addresses are statically mapped to banks
//! (Chapter 5). This crate models:
//!
//! * [`topology`] — k-ary 2-cube (torus) coordinates and node identifiers,
//! * [`routing`] — dimension-ordered routing with wraparound links and the
//!   resulting hop counts,
//! * [`latency`] — per-hop router/link latency and message serialisation into
//!   flits,
//! * [`traffic`] — message classes, per-class counters and flit-hop energy
//!   accounting inputs.
//!
//! # Example
//!
//! ```
//! use refrint_noc::topology::Torus;
//! use refrint_noc::routing::hop_count;
//!
//! let torus = Torus::new(4, 4).unwrap();
//! // Opposite corners of a 4x4 torus are only 1+1 hops apart thanks to wraparound.
//! let a = torus.node(0, 0).unwrap();
//! let b = torus.node(3, 3).unwrap();
//! assert_eq!(hop_count(&torus, a, b), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod latency;
pub mod routing;
pub mod topology;
pub mod traffic;

pub use error::NocError;
pub use latency::LinkParams;
pub use routing::{hop_count, route};
pub use topology::{NodeId, Torus};
pub use traffic::{MessageClass, TrafficAccount};
