//! Dimension-ordered routing on the torus.

use crate::error::NocError;
use crate::topology::{NodeId, Torus};

/// The number of hops of the dimension-ordered (X-then-Y) minimal route from
/// `src` to `dst`, using wraparound links when they are shorter.
///
/// # Panics
///
/// Panics if either node is outside the torus (routing is on the hot path of
/// the simulator, so this is an assertion rather than a `Result`).
#[must_use]
pub fn hop_count(torus: &Torus, src: NodeId, dst: NodeId) -> u32 {
    let (sx, sy) = torus.coords(src).expect("src node out of range");
    let (dx, dy) = torus.coords(dst).expect("dst node out of range");
    (Torus::ring_distance(torus.width(), sx, dx) + Torus::ring_distance(torus.height(), sy, dy))
        as u32
}

/// The full dimension-ordered route from `src` to `dst`, inclusive of both
/// endpoints. X is routed first, then Y, always taking the shorter ring
/// direction (ties go to the increasing direction).
///
/// # Errors
///
/// Returns [`NocError::NodeOutOfRange`] if either endpoint is invalid.
pub fn route(torus: &Torus, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>, NocError> {
    let (mut x, mut y) = torus.coords(src)?;
    let (dx, dy) = torus.coords(dst)?;
    let mut path = vec![src];

    let step = |cur: usize, dst: usize, k: usize| -> usize {
        if cur == dst {
            return cur;
        }
        let forward = (dst + k - cur) % k;
        let backward = (cur + k - dst) % k;
        if forward <= backward {
            (cur + 1) % k
        } else {
            (cur + k - 1) % k
        }
    };

    while x != dx {
        x = step(x, dx, torus.width());
        path.push(torus.node(x, y)?);
    }
    while y != dy {
        y = step(y, dy, torus.height());
        path.push(torus.node(x, y)?);
    }
    Ok(path)
}

/// The average hop count over all (src, dst) pairs, including src == dst.
/// Useful as a sanity check and for analytic network-energy estimates.
#[must_use]
pub fn average_hops(torus: &Torus) -> f64 {
    let mut total = 0u64;
    let mut pairs = 0u64;
    for s in torus.nodes() {
        for d in torus.nodes() {
            total += u64::from(hop_count(torus, s, d));
            pairs += 1;
        }
    }
    total as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hops_to_self() {
        let t = Torus::paper_4x4();
        for n in t.nodes() {
            assert_eq!(hop_count(&t, n, n), 0);
            assert_eq!(route(&t, n, n).unwrap(), vec![n]);
        }
    }

    #[test]
    fn hop_count_is_symmetric() {
        let t = Torus::paper_4x4();
        for a in t.nodes() {
            for b in t.nodes() {
                assert_eq!(hop_count(&t, a, b), hop_count(&t, b, a));
            }
        }
    }

    #[test]
    fn max_distance_on_4x4_torus_is_4() {
        let t = Torus::paper_4x4();
        let max = t
            .nodes()
            .flat_map(|a| t.nodes().map(move |b| hop_count(&t, a, b)))
            .max()
            .unwrap();
        assert_eq!(max, 4);
    }

    #[test]
    fn route_length_matches_hop_count_and_steps_are_adjacent() {
        let t = Torus::paper_4x4();
        for a in t.nodes() {
            for b in t.nodes() {
                let r = route(&t, a, b).unwrap();
                assert_eq!(r.len() as u32, hop_count(&t, a, b) + 1);
                assert_eq!(*r.first().unwrap(), a);
                assert_eq!(*r.last().unwrap(), b);
                for w in r.windows(2) {
                    assert_eq!(hop_count(&t, w[0], w[1]), 1, "route steps must be links");
                }
            }
        }
    }

    #[test]
    fn wraparound_route_is_short() {
        let t = Torus::paper_4x4();
        let a = t.node(0, 0).unwrap();
        let b = t.node(3, 0).unwrap();
        assert_eq!(hop_count(&t, a, b), 1);
        assert_eq!(route(&t, a, b).unwrap().len(), 2);
    }

    #[test]
    fn average_hops_on_4x4() {
        // For a 4-ring, distances from any node are [0,1,2,1] -> mean 1.
        // Two independent dimensions -> mean total = 2.
        let t = Torus::paper_4x4();
        assert!((average_hops(&t) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_hops_on_asymmetric_torus() {
        let t = Torus::new(2, 8).unwrap();
        // 2-ring mean = 0.5; 8-ring mean = (0+1+2+3+4+3+2+1)/8 = 2.0.
        assert!((average_hops(&t) - 2.5).abs() < 1e-9);
    }
}
