//! Error types for the network-on-chip model.

use std::error::Error;
use std::fmt;

/// Errors produced by the NoC model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// The topology dimensions were invalid.
    InvalidTopology {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A node index was outside the topology.
    NodeOutOfRange {
        /// The offending node index.
        index: usize,
        /// The number of nodes in the topology.
        nodes: usize,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            NocError::NodeOutOfRange { index, nodes } => {
                write!(f, "node {index} is out of range for a {nodes}-node network")
            }
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(NocError::InvalidTopology {
            reason: "zero".into()
        }
        .to_string()
        .contains("zero"));
        assert!(NocError::NodeOutOfRange {
            index: 20,
            nodes: 16
        }
        .to_string()
        .contains("20"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NocError>();
    }
}
