//! Traffic classes and accounting.
//!
//! The coherence protocol generates several classes of messages (requests,
//! invalidations, acknowledgements, data transfers, write-backs). The energy
//! model charges a per-flit-hop energy, so this module records flit-hops per
//! class; the CMP simulator feeds it from resolved transactions.

use std::fmt;

use refrint_engine::stats::StatRegistry;

use crate::latency::LinkParams;

/// Classes of on-chip network messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Read/write requests from an L2 to an L3 bank (control-sized).
    Request,
    /// Data responses carrying a cache line.
    Data,
    /// Invalidation requests from the directory to sharers (control-sized).
    Invalidation,
    /// Invalidation/eviction acknowledgements (control-sized).
    Ack,
    /// Write-backs of dirty lines (carry a cache line).
    WriteBack,
}

impl MessageClass {
    /// All message classes.
    pub const ALL: [MessageClass; 5] = [
        MessageClass::Request,
        MessageClass::Data,
        MessageClass::Invalidation,
        MessageClass::Ack,
        MessageClass::WriteBack,
    ];

    /// Whether this message carries a full cache line as payload.
    #[must_use]
    pub const fn carries_data(self) -> bool {
        matches!(self, MessageClass::Data | MessageClass::WriteBack)
    }

    /// A short label for statistics keys.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            MessageClass::Request => "request",
            MessageClass::Data => "data",
            MessageClass::Invalidation => "invalidation",
            MessageClass::Ack => "ack",
            MessageClass::WriteBack => "writeback",
        }
    }

    /// Payload size in bytes given a cache line size.
    #[must_use]
    pub const fn payload_bytes(self, line_size: u64, params: &LinkParams) -> u64 {
        if self.carries_data() {
            line_size
        } else {
            params.control_bytes
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulates message and flit-hop counts per class.
#[derive(Debug, Clone, Default)]
pub struct TrafficAccount {
    stats: StatRegistry,
    flit_hops: u64,
}

impl TrafficAccount {
    /// Creates an empty account.
    #[must_use]
    pub fn new() -> Self {
        TrafficAccount::default()
    }

    /// Records one message of `class` travelling `hops` hops, for a cache
    /// line size of `line_size` bytes.
    pub fn record(&mut self, class: MessageClass, hops: u32, line_size: u64, params: &LinkParams) {
        let flits = params.flits_for(class.payload_bytes(line_size, params));
        let flit_hops = flits * u64::from(hops);
        self.flit_hops += flit_hops;
        self.stats.incr(&format!("messages.{}", class.label()));
        self.stats
            .add(&format!("flit_hops.{}", class.label()), flit_hops);
    }

    /// Total flit-hops across all classes (the energy model's input).
    #[must_use]
    pub fn total_flit_hops(&self) -> u64 {
        self.flit_hops
    }

    /// Number of messages recorded for `class`.
    #[must_use]
    pub fn messages(&self, class: MessageClass) -> u64 {
        self.stats.get(&format!("messages.{}", class.label()))
    }

    /// Flit-hops recorded for `class`.
    #[must_use]
    pub fn flit_hops(&self, class: MessageClass) -> u64 {
        self.stats.get(&format!("flit_hops.{}", class.label()))
    }

    /// Underlying statistics registry.
    #[must_use]
    pub fn stats(&self) -> &StatRegistry {
        &self.stats
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &TrafficAccount) {
        self.stats.merge(&other.stats);
        self.flit_hops += other.flit_hops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        let p = LinkParams::paper_default();
        assert_eq!(MessageClass::Request.payload_bytes(64, &p), 8);
        assert_eq!(MessageClass::Data.payload_bytes(64, &p), 64);
        assert_eq!(MessageClass::WriteBack.payload_bytes(64, &p), 64);
        assert!(MessageClass::Data.carries_data());
        assert!(!MessageClass::Ack.carries_data());
    }

    #[test]
    fn record_accumulates_flit_hops() {
        let p = LinkParams::paper_default();
        let mut t = TrafficAccount::new();
        // Control message over 2 hops = 1 flit * 2 hops.
        t.record(MessageClass::Request, 2, 64, &p);
        // Data message over 3 hops = 4 flits * 3 hops.
        t.record(MessageClass::Data, 3, 64, &p);
        assert_eq!(t.total_flit_hops(), 2 + 12);
        assert_eq!(t.messages(MessageClass::Request), 1);
        assert_eq!(t.messages(MessageClass::Data), 1);
        assert_eq!(t.flit_hops(MessageClass::Data), 12);
        assert_eq!(t.messages(MessageClass::Ack), 0);
    }

    #[test]
    fn zero_hop_messages_cost_nothing() {
        let p = LinkParams::paper_default();
        let mut t = TrafficAccount::new();
        t.record(MessageClass::Data, 0, 64, &p);
        assert_eq!(t.total_flit_hops(), 0);
        assert_eq!(t.messages(MessageClass::Data), 1);
    }

    #[test]
    fn merge_sums_accounts() {
        let p = LinkParams::paper_default();
        let mut a = TrafficAccount::new();
        let mut b = TrafficAccount::new();
        a.record(MessageClass::Invalidation, 1, 64, &p);
        b.record(MessageClass::Invalidation, 2, 64, &p);
        b.record(MessageClass::Ack, 2, 64, &p);
        a.merge(&b);
        assert_eq!(a.messages(MessageClass::Invalidation), 2);
        assert_eq!(a.messages(MessageClass::Ack), 1);
        assert_eq!(a.total_flit_hops(), 1 + 2 + 2);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = MessageClass::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
        assert_eq!(MessageClass::Data.to_string(), "data");
    }
}
