//! Link/router latency and flit serialisation.
//!
//! The CMP simulator charges a per-hop latency for every coherence message
//! that crosses the torus, plus serialisation latency for multi-flit (data)
//! messages. Defaults are conventional values for a low-frequency mesh/torus
//! router (1-cycle router + 1-cycle link per hop, 16-byte flits).

use refrint_engine::time::Cycle;

/// Latency and width parameters of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Pipeline latency through one router, in cycles.
    pub router_latency: Cycle,
    /// Traversal latency of one link, in cycles.
    pub link_latency: Cycle,
    /// Flit width in bytes (data messages are serialised into flits).
    pub flit_bytes: u64,
    /// Size of a header/control flit in bytes (control messages are 1 flit).
    pub control_bytes: u64,
}

impl LinkParams {
    /// Conventional defaults: 1-cycle router, 1-cycle link, 16-byte flits,
    /// 8-byte control messages.
    #[must_use]
    pub fn paper_default() -> Self {
        LinkParams {
            router_latency: Cycle::new(1),
            link_latency: Cycle::new(1),
            flit_bytes: 16,
            control_bytes: 8,
        }
    }

    /// Cycles per hop (router + link).
    #[must_use]
    pub fn per_hop(&self) -> Cycle {
        self.router_latency + self.link_latency
    }

    /// Number of flits needed to carry `payload_bytes` of data (at least 1).
    #[must_use]
    pub fn flits_for(&self, payload_bytes: u64) -> u64 {
        if payload_bytes == 0 {
            return 1;
        }
        payload_bytes.div_ceil(self.flit_bytes)
    }

    /// End-to-end latency for a message of `payload_bytes` over `hops` hops:
    /// head-flit pipeline latency plus serialisation of the remaining flits.
    /// Zero hops (bank local to the requesting tile) costs nothing.
    #[must_use]
    pub fn message_latency(&self, hops: u32, payload_bytes: u64) -> Cycle {
        if hops == 0 {
            return Cycle::ZERO;
        }
        let head = self.per_hop() * u64::from(hops);
        let serialisation = Cycle::new(self.flits_for(payload_bytes).saturating_sub(1));
        head + serialisation
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_hop_latency() {
        let p = LinkParams::paper_default();
        assert_eq!(p.per_hop(), Cycle::new(2));
    }

    #[test]
    fn flit_counts() {
        let p = LinkParams::paper_default();
        assert_eq!(p.flits_for(0), 1);
        assert_eq!(p.flits_for(8), 1);
        assert_eq!(p.flits_for(16), 1);
        assert_eq!(p.flits_for(17), 2);
        assert_eq!(p.flits_for(64), 4);
    }

    #[test]
    fn message_latency_scales_with_hops_and_size() {
        let p = LinkParams::paper_default();
        assert_eq!(p.message_latency(0, 64), Cycle::ZERO);
        // Control message, 2 hops: 2 * 2 cycles.
        assert_eq!(p.message_latency(2, 8), Cycle::new(4));
        // 64-byte data message, 2 hops: 4 + (4 - 1) serialisation cycles.
        assert_eq!(p.message_latency(2, 64), Cycle::new(7));
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(LinkParams::default(), LinkParams::paper_default());
    }
}
