//! Error types for the coherence protocol.

use std::error::Error;
use std::fmt;

/// Errors produced by the coherence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoherenceError {
    /// A tile index exceeded the configured tile count.
    TileOutOfRange {
        /// The offending tile index.
        tile: usize,
        /// The configured number of tiles.
        tiles: usize,
    },
    /// A protocol invariant was violated (indicates a simulator bug).
    InvariantViolated {
        /// Description of the violated invariant.
        description: String,
    },
}

impl fmt::Display for CoherenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceError::TileOutOfRange { tile, tiles } => {
                write!(f, "tile {tile} is out of range for {tiles} tiles")
            }
            CoherenceError::InvariantViolated { description } => {
                write!(f, "coherence invariant violated: {description}")
            }
        }
    }
}

impl Error for CoherenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoherenceError::TileOutOfRange {
            tile: 20,
            tiles: 16
        }
        .to_string()
        .contains("20"));
        assert!(CoherenceError::InvariantViolated {
            description: "two owners".into()
        }
        .to_string()
        .contains("two owners"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CoherenceError>();
    }
}
