//! Directory coherence protocols (MESI and Dragon) for the Refrint
//! reproduction.
//!
//! The paper employs a directory MESI protocol with the directory maintained
//! at the shared, inclusive L3 (Chapter 5); an update-based Dragon variant
//! is provided behind the same directory abstraction as an experiment axis.
//! This crate provides the protocol-level pieces:
//!
//! * [`directory`] — per-line directory entries (owner / sharer bit-vector)
//!   and the directory array kept alongside each L3 bank.
//! * [`protocol`] — the transaction-level transition logic: given a request
//!   (read / write / eviction / write-back) and the current directory entry,
//!   it computes the new states, the set of caches to invalidate, downgrade,
//!   or update, and the messages that must cross the network. The
//!   [`protocol::CoherenceEngine`] enum selects MESI or Dragon at
//!   construction time.
//! * [`msg`] — coherence message descriptors used for traffic/energy
//!   accounting.
//!
//! The protocol is evaluated *transactionally*: the CMP simulator resolves an
//! entire request in one call and derives its latency from the message
//! descriptors returned, which is the usual approach in one-outstanding-miss
//! timing models. The state machines nevertheless enforce the MESI
//! invariants (single writer, inclusive sharers) and are property-tested.
//!
//! # Example
//!
//! ```
//! use refrint_coherence::directory::Directory;
//! use refrint_coherence::protocol::{DirectoryProtocol, CoreRequest};
//! use refrint_mem::addr::LineAddr;
//!
//! let mut dir = Directory::new(16);
//! let mut proto = DirectoryProtocol::new(16);
//! let line = LineAddr::new(0x100);
//! let outcome = proto.access(&mut dir, line, 0, CoreRequest::Read);
//! assert!(outcome.fills_requester);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod directory;
pub mod error;
pub mod protocol;

pub use directory::{Directory, DirectoryEntry, SharerSet};
pub use error::CoherenceError;
pub use protocol::{
    AccessOutcome, CoherenceEngine, CoherenceProtocol, CoreRequest, DirectoryProtocol,
    DragonProtocol,
};
