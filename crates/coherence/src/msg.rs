//! Coherence message descriptors.
//!
//! A resolved transaction produces a list of messages; the CMP simulator maps
//! each to torus hops (via `refrint-noc`) for latency and energy accounting.

use std::fmt;

use refrint_mem::addr::LineAddr;

/// The endpoints a coherence message travels between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Requesting tile → home L3 bank (GetS / GetX / PutM).
    RequestToHome,
    /// Home L3 bank → requesting tile (data or grant).
    HomeToRequester,
    /// Home L3 bank → a holder tile (invalidation or downgrade).
    HomeToHolder,
    /// Holder tile → home L3 bank (acknowledgement or dirty data).
    HolderToHome,
    /// Home L3 bank → memory controller (off-chip fill or write-back).
    HomeToMemory,
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::RequestToHome => "req->home",
            MsgKind::HomeToRequester => "home->req",
            MsgKind::HomeToHolder => "home->holder",
            MsgKind::HolderToHome => "holder->home",
            MsgKind::HomeToMemory => "home->mem",
        };
        f.write_str(s)
    }
}

/// One coherence message generated while resolving a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceMsg {
    /// The line involved.
    pub line: LineAddr,
    /// Who talks to whom.
    pub kind: MsgKind,
    /// The tile at the non-home end of the message, when applicable
    /// (the requester for `RequestToHome`/`HomeToRequester`, the holder for
    /// `HomeToHolder`/`HolderToHome`, `None` for `HomeToMemory`).
    pub tile: Option<usize>,
    /// Whether the message carries a full cache line of data.
    pub carries_data: bool,
    /// Whether this message is on the critical path of the request (pure
    /// acknowledgements and background write-backs are not).
    pub on_critical_path: bool,
}

impl CoherenceMsg {
    /// A control request from `tile` to the home bank.
    #[must_use]
    pub fn request(line: LineAddr, tile: usize) -> Self {
        CoherenceMsg {
            line,
            kind: MsgKind::RequestToHome,
            tile: Some(tile),
            carries_data: false,
            on_critical_path: true,
        }
    }

    /// A data response from the home bank to `tile`.
    #[must_use]
    pub fn data_to_requester(line: LineAddr, tile: usize) -> Self {
        CoherenceMsg {
            line,
            kind: MsgKind::HomeToRequester,
            tile: Some(tile),
            carries_data: true,
            on_critical_path: true,
        }
    }

    /// An invalidation (or downgrade) from the home bank to a holder.
    #[must_use]
    pub fn invalidate(line: LineAddr, holder: usize, on_critical_path: bool) -> Self {
        CoherenceMsg {
            line,
            kind: MsgKind::HomeToHolder,
            tile: Some(holder),
            carries_data: false,
            on_critical_path,
        }
    }

    /// An acknowledgement (optionally with dirty data) from a holder back to
    /// the home bank.
    #[must_use]
    pub fn ack(line: LineAddr, holder: usize, carries_data: bool, on_critical_path: bool) -> Self {
        CoherenceMsg {
            line,
            kind: MsgKind::HolderToHome,
            tile: Some(holder),
            carries_data,
            on_critical_path,
        }
    }

    /// A transfer between the home bank and the memory controller.
    #[must_use]
    pub fn to_memory(line: LineAddr, carries_data: bool, on_critical_path: bool) -> Self {
        CoherenceMsg {
            line,
            kind: MsgKind::HomeToMemory,
            tile: None,
            carries_data,
            on_critical_path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let line = LineAddr::new(5);
        let m = CoherenceMsg::request(line, 3);
        assert_eq!(m.kind, MsgKind::RequestToHome);
        assert_eq!(m.tile, Some(3));
        assert!(!m.carries_data);
        assert!(m.on_critical_path);

        let m = CoherenceMsg::data_to_requester(line, 3);
        assert!(m.carries_data);
        assert_eq!(m.kind, MsgKind::HomeToRequester);

        let m = CoherenceMsg::invalidate(line, 9, true);
        assert_eq!(m.kind, MsgKind::HomeToHolder);
        assert_eq!(m.tile, Some(9));

        let m = CoherenceMsg::ack(line, 9, true, false);
        assert_eq!(m.kind, MsgKind::HolderToHome);
        assert!(m.carries_data);
        assert!(!m.on_critical_path);

        let m = CoherenceMsg::to_memory(line, true, false);
        assert_eq!(m.kind, MsgKind::HomeToMemory);
        assert_eq!(m.tile, None);
    }

    #[test]
    fn kind_display() {
        assert_eq!(MsgKind::RequestToHome.to_string(), "req->home");
        assert_eq!(MsgKind::HomeToMemory.to_string(), "home->mem");
    }
}
