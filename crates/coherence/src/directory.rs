//! Directory state: per-line owner and sharer tracking.
//!
//! The directory lives at the L3 (one slice per bank). Because the hierarchy
//! is inclusive, every line present in any private L1/L2 is also present in
//! the L3, and the directory entry for that L3 line records which tiles hold
//! it and whether one of them owns it in Modified state.

use std::collections::HashMap;
use std::fmt;

use refrint_mem::addr::LineAddr;

/// A compact bit-set of tiles (cores) sharing a line. Supports up to 64 tiles,
/// which comfortably covers the paper's 16-core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        SharerSet(0)
    }

    /// A set containing only `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `tile >= 64`.
    #[must_use]
    pub fn single(tile: usize) -> Self {
        assert!(tile < 64, "sharer sets support at most 64 tiles");
        SharerSet(1 << tile)
    }

    /// Whether `tile` is in the set.
    #[must_use]
    pub fn contains(self, tile: usize) -> bool {
        tile < 64 && (self.0 >> tile) & 1 == 1
    }

    /// Adds `tile` to the set.
    ///
    /// # Panics
    ///
    /// Panics if `tile >= 64`.
    pub fn insert(&mut self, tile: usize) {
        assert!(tile < 64, "sharer sets support at most 64 tiles");
        self.0 |= 1 << tile;
    }

    /// Removes `tile` from the set.
    pub fn remove(&mut self, tile: usize) {
        if tile < 64 {
            self.0 &= !(1 << tile);
        }
    }

    /// Number of tiles in the set.
    #[must_use]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the tiles in the set, in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let t = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(t)
            }
        })
    }

    /// The set with `tile` removed (non-mutating convenience).
    #[must_use]
    pub fn without(mut self, tile: usize) -> Self {
        self.remove(tile);
        self
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for t in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for SharerSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = SharerSet::empty();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

/// The directory's view of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectoryEntry {
    /// No on-chip private cache holds the line (it may still be in the L3).
    #[default]
    Uncached,
    /// One or more tiles hold the line in a clean state.
    Shared(SharerSet),
    /// Exactly one tile owns the line, possibly dirty, in M or E state.
    Owned {
        /// The owning tile.
        owner: usize,
    },
    /// One tile owns a dirty copy (Dragon `Sm`) while other tiles hold
    /// clean replicas that receive word updates on writes. Only the Dragon
    /// protocol creates this entry; MESI never does.
    OwnedShared {
        /// The tile responsible for the eventual write-back.
        owner: usize,
        /// The clean replicas (never contains `owner`).
        sharers: SharerSet,
    },
}

impl DirectoryEntry {
    /// The set of tiles that hold the line according to the directory.
    #[must_use]
    pub fn holders(self) -> SharerSet {
        match self {
            DirectoryEntry::Uncached => SharerSet::empty(),
            DirectoryEntry::Shared(s) => s,
            DirectoryEntry::Owned { owner } => SharerSet::single(owner),
            DirectoryEntry::OwnedShared { owner, sharers } => {
                let mut all = sharers;
                all.insert(owner);
                all
            }
        }
    }

    /// Whether any private cache holds the line.
    #[must_use]
    pub fn is_cached(self) -> bool {
        !self.holders().is_empty()
    }

    /// Whether some tile is responsible for a (possibly dirty) owned copy.
    #[must_use]
    pub fn is_owned(self) -> bool {
        matches!(
            self,
            DirectoryEntry::Owned { .. } | DirectoryEntry::OwnedShared { .. }
        )
    }
}

/// The directory array: entries for every line tracked by one (or all) L3
/// bank(s). Entries are stored sparsely; absent entries mean `Uncached`.
#[derive(Debug, Clone)]
pub struct Directory {
    entries: HashMap<LineAddr, DirectoryEntry>,
    num_tiles: usize,
}

impl Directory {
    /// Creates an empty directory for `num_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero or greater than 64.
    #[must_use]
    pub fn new(num_tiles: usize) -> Self {
        assert!(
            num_tiles > 0 && num_tiles <= 64,
            "directory supports 1..=64 tiles"
        );
        Directory {
            entries: HashMap::new(),
            num_tiles,
        }
    }

    /// The number of tiles this directory tracks.
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// The entry for `line` (Uncached if never recorded).
    #[must_use]
    pub fn entry(&self, line: LineAddr) -> DirectoryEntry {
        self.entries.get(&line).copied().unwrap_or_default()
    }

    /// Sets the entry for `line`, removing it when it becomes `Uncached` so
    /// the map stays sparse.
    pub fn set_entry(&mut self, line: LineAddr, entry: DirectoryEntry) {
        if matches!(entry, DirectoryEntry::Uncached) {
            self.entries.remove(&line);
        } else {
            self.entries.insert(line, entry);
        }
    }

    /// Removes the entry for `line` entirely (used when the L3 line itself is
    /// invalidated; inclusivity means no private copy may survive).
    pub fn forget(&mut self, line: LineAddr) {
        self.entries.remove(&line);
    }

    /// Removes `tile` from the entry for `line` (private eviction).
    pub fn remove_holder(&mut self, line: LineAddr, tile: usize) {
        let entry = self.entry(line);
        let new = match entry {
            DirectoryEntry::Uncached => DirectoryEntry::Uncached,
            DirectoryEntry::Owned { owner } if owner == tile => DirectoryEntry::Uncached,
            DirectoryEntry::Owned { owner } => DirectoryEntry::Owned { owner },
            DirectoryEntry::Shared(s) => {
                let s = s.without(tile);
                if s.is_empty() {
                    DirectoryEntry::Uncached
                } else {
                    DirectoryEntry::Shared(s)
                }
            }
            DirectoryEntry::OwnedShared { owner, sharers } if owner == tile => {
                // The owner leaves: the remaining replicas are clean
                // (the dirty data was written back by the eviction).
                if sharers.is_empty() {
                    DirectoryEntry::Uncached
                } else {
                    DirectoryEntry::Shared(sharers)
                }
            }
            DirectoryEntry::OwnedShared { owner, sharers } => {
                let sharers = sharers.without(tile);
                if sharers.is_empty() {
                    DirectoryEntry::Owned { owner }
                } else {
                    DirectoryEntry::OwnedShared { owner, sharers }
                }
            }
        };
        self.set_entry(line, new);
    }

    /// Number of lines with a non-`Uncached` entry.
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over all tracked `(line, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, DirectoryEntry)> + '_ {
        self.entries.iter().map(|(&l, &e)| (l, e))
    }

    /// Checks the directory invariants for `line`:
    /// an `Owned` entry names a valid tile; a `Shared` entry is non-empty and
    /// all its tiles are valid; an `OwnedShared` entry has a valid owner,
    /// non-empty valid sharers, and the owner is not among them.
    #[must_use]
    pub fn check_invariants(&self, line: LineAddr) -> bool {
        match self.entry(line) {
            DirectoryEntry::Uncached => true,
            DirectoryEntry::Owned { owner } => owner < self.num_tiles,
            DirectoryEntry::Shared(s) => !s.is_empty() && s.iter().all(|t| t < self.num_tiles),
            DirectoryEntry::OwnedShared { owner, sharers } => {
                owner < self.num_tiles
                    && !sharers.is_empty()
                    && !sharers.contains(owner)
                    && sharers.iter().all(|t| t < self.num_tiles)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(3);
        s.insert(15);
        assert!(s.contains(3));
        assert!(s.contains(15));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![15]);
        assert_eq!(SharerSet::single(5).len(), 1);
        assert_eq!(s.to_string(), "{15}");
    }

    #[test]
    fn sharer_set_from_iterator_and_without() {
        let s: SharerSet = [1usize, 2, 9].into_iter().collect();
        assert_eq!(s.len(), 3);
        let s2 = s.without(2);
        assert!(!s2.contains(2));
        assert!(s.contains(2), "without must not mutate the original");
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn sharer_set_rejects_large_tiles() {
        let _ = SharerSet::single(64);
    }

    #[test]
    fn entry_holders() {
        assert!(DirectoryEntry::Uncached.holders().is_empty());
        assert_eq!(
            DirectoryEntry::Owned { owner: 7 }
                .holders()
                .iter()
                .collect::<Vec<_>>(),
            vec![7]
        );
        let s: SharerSet = [0usize, 1].into_iter().collect();
        assert_eq!(DirectoryEntry::Shared(s).holders(), s);
        assert!(DirectoryEntry::Owned { owner: 1 }.is_owned());
        assert!(!DirectoryEntry::Shared(s).is_owned());
        assert!(DirectoryEntry::Shared(s).is_cached());
        assert!(!DirectoryEntry::Uncached.is_cached());
    }

    #[test]
    fn directory_set_get_forget() {
        let mut d = Directory::new(16);
        let line = LineAddr::new(0x10);
        assert_eq!(d.entry(line), DirectoryEntry::Uncached);
        d.set_entry(line, DirectoryEntry::Owned { owner: 2 });
        assert_eq!(d.entry(line), DirectoryEntry::Owned { owner: 2 });
        assert_eq!(d.tracked_lines(), 1);
        d.forget(line);
        assert_eq!(d.entry(line), DirectoryEntry::Uncached);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn setting_uncached_keeps_map_sparse() {
        let mut d = Directory::new(16);
        let line = LineAddr::new(0x10);
        d.set_entry(line, DirectoryEntry::Owned { owner: 2 });
        d.set_entry(line, DirectoryEntry::Uncached);
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn remove_holder_transitions() {
        let mut d = Directory::new(16);
        let line = LineAddr::new(0x20);
        // Owner evicts -> uncached.
        d.set_entry(line, DirectoryEntry::Owned { owner: 3 });
        d.remove_holder(line, 3);
        assert_eq!(d.entry(line), DirectoryEntry::Uncached);
        // Non-owner removal leaves the owner.
        d.set_entry(line, DirectoryEntry::Owned { owner: 3 });
        d.remove_holder(line, 5);
        assert_eq!(d.entry(line), DirectoryEntry::Owned { owner: 3 });
        // Shared shrink and collapse.
        let s: SharerSet = [1usize, 2].into_iter().collect();
        d.set_entry(line, DirectoryEntry::Shared(s));
        d.remove_holder(line, 1);
        assert_eq!(d.entry(line), DirectoryEntry::Shared(SharerSet::single(2)));
        d.remove_holder(line, 2);
        assert_eq!(d.entry(line), DirectoryEntry::Uncached);
    }

    #[test]
    fn invariants_hold_for_valid_entries() {
        let mut d = Directory::new(16);
        let line = LineAddr::new(1);
        assert!(d.check_invariants(line));
        d.set_entry(line, DirectoryEntry::Owned { owner: 15 });
        assert!(d.check_invariants(line));
        d.set_entry(line, DirectoryEntry::Owned { owner: 16 });
        assert!(!d.check_invariants(line));
        d.set_entry(line, DirectoryEntry::Shared(SharerSet::empty()));
        // An explicitly-stored empty Shared set violates the invariant...
        // ...but set_entry stores it, so check_invariants flags it.
        assert!(!d.check_invariants(line) || d.entry(line) == DirectoryEntry::Uncached);
    }

    #[test]
    fn owned_shared_holders_and_removal() {
        let mut d = Directory::new(16);
        let line = LineAddr::new(0x30);
        let sharers: SharerSet = [1usize, 4].into_iter().collect();
        d.set_entry(line, DirectoryEntry::OwnedShared { owner: 2, sharers });
        assert_eq!(
            d.entry(line).holders().iter().collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert!(d.entry(line).is_owned());
        assert!(d.check_invariants(line));
        // A sharer leaves: the owner keeps the dirty copy.
        d.remove_holder(line, 4);
        assert_eq!(
            d.entry(line),
            DirectoryEntry::OwnedShared {
                owner: 2,
                sharers: SharerSet::single(1)
            }
        );
        // The last sharer leaves: collapse to a plain owner.
        d.remove_holder(line, 1);
        assert_eq!(d.entry(line), DirectoryEntry::Owned { owner: 2 });
        // The owner leaves while replicas remain: they stay as clean sharers.
        d.set_entry(line, DirectoryEntry::OwnedShared { owner: 2, sharers });
        d.remove_holder(line, 2);
        assert_eq!(d.entry(line), DirectoryEntry::Shared(sharers));
    }

    #[test]
    fn owned_shared_invariants() {
        let mut d = Directory::new(4);
        let line = LineAddr::new(0x31);
        // Owner inside the sharer set is a violation.
        d.set_entry(
            line,
            DirectoryEntry::OwnedShared {
                owner: 1,
                sharers: SharerSet::single(1),
            },
        );
        assert!(!d.check_invariants(line));
        // Empty sharer set is a violation (it should be Owned instead).
        d.set_entry(
            line,
            DirectoryEntry::OwnedShared {
                owner: 1,
                sharers: SharerSet::empty(),
            },
        );
        assert!(!d.check_invariants(line));
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn directory_rejects_zero_tiles() {
        let _ = Directory::new(0);
    }
}
