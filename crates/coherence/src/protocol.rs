//! Transaction-level directory coherence protocols.
//!
//! [`DirectoryProtocol::access`] resolves one core request against the
//! directory: it computes the new directory entry, which private copies must
//! be invalidated or downgraded (inclusivity and single-writer invariants),
//! what state the requester fills in, and how many messages were exchanged.
//! The caller (the CMP simulator) applies the corresponding changes to the
//! actual cache arrays and converts the outcome into latency and energy;
//! cumulative message traffic is reported via the protocol's statistics.
//!
//! [`DragonProtocol`] is the update-based alternative: writes to shared
//! lines broadcast word updates to the other holders instead of
//! invalidating them, using the [`MesiState::SharedModified`] (`Sm`) state
//! and the [`DirectoryEntry::OwnedShared`] directory entry. Both engines
//! sit behind the [`CoherenceEngine`] dispatcher, selected by a
//! [`CoherenceProtocol`] axis value.

use std::fmt;
use std::str::FromStr;

use refrint_engine::stats::StatRegistry;
use refrint_mem::addr::LineAddr;
use refrint_mem::line::MesiState;

use crate::directory::{Directory, DirectoryEntry, SharerSet};

/// The coherence protocol a simulated chip runs. The invalidation-based
/// directory MESI protocol is the default (and the paper's baseline); the
/// update-based Dragon protocol is the alternative sweep axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoherenceProtocol {
    /// Invalidation-based directory MESI (the default).
    #[default]
    Mesi,
    /// Update-based Dragon: writes to shared lines broadcast updates.
    Dragon,
}

impl CoherenceProtocol {
    /// Every protocol, default first.
    pub const ALL: [CoherenceProtocol; 2] = [CoherenceProtocol::Mesi, CoherenceProtocol::Dragon];

    /// The canonical lower-case label (`mesi` / `dragon`) used by CLI
    /// flags, scenario specs and sweep config fields.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            CoherenceProtocol::Mesi => "mesi",
            CoherenceProtocol::Dragon => "dragon",
        }
    }

    /// Whether this is the default protocol (labels and cache keys omit
    /// the axis entirely for the default, keeping them byte-identical to
    /// their pre-Dragon form).
    #[must_use]
    pub fn is_default(self) -> bool {
        self == CoherenceProtocol::default()
    }
}

impl fmt::Display for CoherenceProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for CoherenceProtocol {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::ALL
            .into_iter()
            .find(|p| p.label() == s)
            .ok_or_else(|| format!("unknown coherence protocol `{s}` (expected mesi or dragon)"))
    }
}

/// A request from a core's private hierarchy to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreRequest {
    /// A load that missed in the private caches (GetS).
    Read,
    /// A store that missed or lacked write permission (GetX / upgrade).
    Write,
    /// The private hierarchy evicted a clean copy (PutS — silent in many
    /// protocols, explicit here so the directory stays precise).
    EvictClean,
    /// The private hierarchy evicted a dirty copy and writes it back (PutM).
    EvictDirty,
}

/// What the directory decided for one request.
///
/// The outcome is a small `Copy` value — the invalidation targets are a
/// [`SharerSet`] bitmask rather than a `Vec`, so resolving a request never
/// allocates. (Per-message accounting lives in the protocol's statistics;
/// the simulator derives latency and traffic from the outcome fields.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// State the requester's private caches should install the line in
    /// (meaningless for evictions).
    pub fill_state: MesiState,
    /// Whether the requester receives data (i.e. this was a read or write).
    pub fills_requester: bool,
    /// Tiles whose private copies must be invalidated, excluding the
    /// requester.
    pub invalidate: SharerSet,
    /// Tile whose owned copy must be downgraded before the request
    /// completes. Under MESI the owner's dirty data is written back to the
    /// L3 (`owner_writeback` is true); under Dragon the owner keeps its
    /// dirty data in `Sm` (`owner_writeback` is false) and supplies the
    /// requester cache-to-cache.
    pub downgrade_owner: Option<usize>,
    /// Whether the previous owner's dirty data is written back into the L3
    /// as part of this transaction.
    pub owner_writeback: bool,
    /// Tiles whose private copies receive a word update (Dragon writes to
    /// shared lines). They stay valid as clean sharers; a dirty copy among
    /// them hands its write-back responsibility to the requester. Always
    /// empty under MESI.
    pub update: SharerSet,
    /// On-chip messages this transaction exchanged (request, forwarded
    /// invalidations/updates/acks, data reply), for traffic accounting.
    pub message_count: u64,
}

impl AccessOutcome {
    fn eviction() -> Self {
        AccessOutcome {
            fill_state: MesiState::Invalid,
            fills_requester: false,
            invalidate: SharerSet::empty(),
            downgrade_owner: None,
            owner_writeback: false,
            update: SharerSet::empty(),
            message_count: 0,
        }
    }
}

/// Fixed-field protocol counters; [`DirectoryProtocol::stats`] materializes
/// them into a [`StatRegistry`] on demand, keeping the per-request hot path
/// free of map lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ProtocolCounters {
    messages: u64,
    reads: u64,
    writes: u64,
    redundant_reads: u64,
    owner_downgrades: u64,
    invalidations_sent: u64,
    silent_upgrades: u64,
    owner_transfers: u64,
    dirty_evictions_absorbed: u64,
    clean_evictions: u64,
    inclusive_invalidations: u64,
    /// Word updates broadcast to remote holders; only the Dragon engine
    /// increments this, so MESI statistics stay byte-identical.
    updates_sent: u64,
}

impl ProtocolCounters {
    /// Materializes the fired counters into a [`StatRegistry`].
    fn stats(&self) -> StatRegistry {
        let c = self;
        let mut out = StatRegistry::new();
        for (name, value) in [
            ("messages", c.messages),
            ("reads", c.reads),
            ("writes", c.writes),
            ("redundant_reads", c.redundant_reads),
            ("owner_downgrades", c.owner_downgrades),
            ("invalidations_sent", c.invalidations_sent),
            ("silent_upgrades", c.silent_upgrades),
            ("owner_transfers", c.owner_transfers),
            ("dirty_evictions_absorbed", c.dirty_evictions_absorbed),
            ("clean_evictions", c.clean_evictions),
            ("inclusive_invalidations", c.inclusive_invalidations),
            ("updates_sent", c.updates_sent),
        ] {
            if value > 0 {
                out.add(name, value);
            }
        }
        out
    }
}

/// The directory-side protocol engine.
#[derive(Debug, Clone)]
pub struct DirectoryProtocol {
    num_tiles: usize,
    counters: ProtocolCounters,
}

impl DirectoryProtocol {
    /// Creates a protocol engine for `num_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero or greater than 64.
    #[must_use]
    pub fn new(num_tiles: usize) -> Self {
        assert!(
            num_tiles > 0 && num_tiles <= 64,
            "protocol supports 1..=64 tiles"
        );
        DirectoryProtocol {
            num_tiles,
            counters: ProtocolCounters::default(),
        }
    }

    /// Protocol statistics (per-request-kind counts, invalidations sent,
    /// owner downgrades, writebacks absorbed), materialized from the
    /// fixed-field counters. Only counters that have fired appear, matching
    /// the shape of an incrementally built registry.
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        self.counters.stats()
    }

    /// Resolves `request` from `tile` for `line` against `dir`.
    ///
    /// The directory entry is updated; the caller must apply the returned
    /// invalidations/downgrades to the private cache arrays to preserve the
    /// inclusive-hierarchy invariant.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn access(
        &mut self,
        dir: &mut Directory,
        line: LineAddr,
        tile: usize,
        request: CoreRequest,
    ) -> AccessOutcome {
        assert!(tile < self.num_tiles, "tile {tile} out of range");
        let out = match request {
            CoreRequest::Read => self.read(dir, line, tile),
            CoreRequest::Write => self.write(dir, line, tile),
            CoreRequest::EvictClean => self.evict(dir, line, tile, false),
            CoreRequest::EvictDirty => self.evict(dir, line, tile, true),
        };
        self.counters.messages += out.message_count;
        out
    }

    fn read(&mut self, dir: &mut Directory, line: LineAddr, tile: usize) -> AccessOutcome {
        self.counters.reads += 1;
        // Request to the home node plus the data reply.
        let mut out = AccessOutcome {
            fill_state: MesiState::Shared,
            fills_requester: true,
            invalidate: SharerSet::empty(),
            downgrade_owner: None,
            owner_writeback: false,
            update: SharerSet::empty(),
            message_count: 2,
        };
        match dir.entry(line) {
            DirectoryEntry::Uncached => {
                // No private copy: grant Exclusive, as MESI does.
                out.fill_state = MesiState::Exclusive;
                dir.set_entry(line, DirectoryEntry::Owned { owner: tile });
            }
            DirectoryEntry::Shared(mut sharers) => {
                if sharers.contains(tile) {
                    // The directory already thinks we have it (e.g. an IL1/DL1
                    // refill within the same tile); keep it Shared.
                    self.counters.redundant_reads += 1;
                } else {
                    sharers.insert(tile);
                }
                out.fill_state = MesiState::Shared;
                dir.set_entry(line, DirectoryEntry::Shared(sharers));
            }
            DirectoryEntry::Owned { owner } if owner == tile => {
                // Re-request by the owner (e.g. refilling an L1 from its own
                // L2 path); ownership is retained.
                out.fill_state = MesiState::Exclusive;
                self.counters.redundant_reads += 1;
            }
            DirectoryEntry::Owned { owner } => {
                // Downgrade the owner; its dirty data (if any) is written
                // back into the L3, and both tiles end up sharers.
                self.counters.owner_downgrades += 1;
                out.downgrade_owner = Some(owner);
                out.owner_writeback = true;
                out.fill_state = MesiState::Shared;
                out.message_count += 2; // forwarded downgrade + ack
                let sharers: SharerSet = [owner, tile].into_iter().collect();
                dir.set_entry(line, DirectoryEntry::Shared(sharers));
            }
            DirectoryEntry::OwnedShared { .. } => {
                unreachable!("MESI never creates OwnedShared entries")
            }
        }
        debug_assert!(dir.check_invariants(line));
        out
    }

    fn write(&mut self, dir: &mut Directory, line: LineAddr, tile: usize) -> AccessOutcome {
        self.counters.writes += 1;
        // Request to the home node plus the data reply.
        let mut out = AccessOutcome {
            fill_state: MesiState::Modified,
            fills_requester: true,
            invalidate: SharerSet::empty(),
            downgrade_owner: None,
            owner_writeback: false,
            update: SharerSet::empty(),
            message_count: 2,
        };
        match dir.entry(line) {
            DirectoryEntry::Uncached => {}
            DirectoryEntry::Shared(sharers) => {
                let targets = sharers.without(tile);
                self.counters.invalidations_sent += targets.len() as u64;
                out.message_count += 2 * targets.len() as u64; // inval + ack each
                out.invalidate = targets;
            }
            DirectoryEntry::Owned { owner } if owner == tile => {
                // Upgrade in place; no remote work.
                self.counters.silent_upgrades += 1;
            }
            DirectoryEntry::Owned { owner } => {
                self.counters.owner_transfers += 1;
                out.downgrade_owner = Some(owner);
                out.owner_writeback = true;
                out.invalidate = SharerSet::single(owner);
                out.message_count += 2; // forwarded invalidation + ack
            }
            DirectoryEntry::OwnedShared { .. } => {
                unreachable!("MESI never creates OwnedShared entries")
            }
        }
        dir.set_entry(line, DirectoryEntry::Owned { owner: tile });
        debug_assert!(dir.check_invariants(line));
        out
    }

    fn evict(
        &mut self,
        dir: &mut Directory,
        line: LineAddr,
        tile: usize,
        dirty: bool,
    ) -> AccessOutcome {
        let mut out = AccessOutcome::eviction();
        out.message_count = 1; // the PutS/PutM notification
        if dirty {
            self.counters.dirty_evictions_absorbed += 1;
            out.owner_writeback = true;
        } else {
            self.counters.clean_evictions += 1;
        }
        dir.remove_holder(line, tile);
        debug_assert!(dir.check_invariants(line));
        out
    }

    /// Invalidates a line everywhere on behalf of the L3 (used when the L3
    /// line itself is evicted or decays): returns the tiles that held it and
    /// whether a dirty copy existed on chip, and forgets the entry.
    pub fn invalidate_all(&mut self, dir: &mut Directory, line: LineAddr) -> (SharerSet, bool) {
        let entry = dir.entry(line);
        let holders = entry.holders();
        let had_dirty = entry.is_owned();
        self.counters.inclusive_invalidations += holders.len() as u64;
        dir.forget(line);
        (holders, had_dirty)
    }
}

/// The directory-side Dragon (update-based) protocol engine.
///
/// Dragon keeps writes visible instead of exclusive: a write to a line
/// other tiles hold broadcasts the written word to them (they stay valid,
/// clean sharers) and leaves the writer in [`MesiState::SharedModified`],
/// responsible for the eventual write-back. Reads of an owned line are
/// served cache-to-cache without forcing the owner's dirty data into the
/// L3. The request surface, outcome shape and statistics match
/// [`DirectoryProtocol`], so the simulator drives both through one code
/// path.
#[derive(Debug, Clone)]
pub struct DragonProtocol {
    num_tiles: usize,
    counters: ProtocolCounters,
}

impl DragonProtocol {
    /// Creates a Dragon engine for `num_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero or greater than 64.
    #[must_use]
    pub fn new(num_tiles: usize) -> Self {
        assert!(
            num_tiles > 0 && num_tiles <= 64,
            "protocol supports 1..=64 tiles"
        );
        DragonProtocol {
            num_tiles,
            counters: ProtocolCounters::default(),
        }
    }

    /// Protocol statistics; same shape as [`DirectoryProtocol::stats`],
    /// plus `updates_sent` once updates have been broadcast.
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        self.counters.stats()
    }

    /// Resolves `request` from `tile` for `line` against `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn access(
        &mut self,
        dir: &mut Directory,
        line: LineAddr,
        tile: usize,
        request: CoreRequest,
    ) -> AccessOutcome {
        assert!(tile < self.num_tiles, "tile {tile} out of range");
        let out = match request {
            CoreRequest::Read => self.read(dir, line, tile),
            CoreRequest::Write => self.write(dir, line, tile),
            CoreRequest::EvictClean => self.evict(dir, line, tile, false),
            CoreRequest::EvictDirty => self.evict(dir, line, tile, true),
        };
        self.counters.messages += out.message_count;
        out
    }

    fn read(&mut self, dir: &mut Directory, line: LineAddr, tile: usize) -> AccessOutcome {
        self.counters.reads += 1;
        // Request to the home node plus the data reply.
        let mut out = AccessOutcome {
            fill_state: MesiState::Shared,
            fills_requester: true,
            invalidate: SharerSet::empty(),
            downgrade_owner: None,
            owner_writeback: false,
            update: SharerSet::empty(),
            message_count: 2,
        };
        match dir.entry(line) {
            DirectoryEntry::Uncached => {
                out.fill_state = MesiState::Exclusive;
                dir.set_entry(line, DirectoryEntry::Owned { owner: tile });
            }
            DirectoryEntry::Shared(mut sharers) => {
                if sharers.contains(tile) {
                    self.counters.redundant_reads += 1;
                } else {
                    sharers.insert(tile);
                }
                dir.set_entry(line, DirectoryEntry::Shared(sharers));
            }
            DirectoryEntry::Owned { owner } if owner == tile => {
                out.fill_state = MesiState::Exclusive;
                self.counters.redundant_reads += 1;
            }
            DirectoryEntry::Owned { owner } => {
                // Dragon: the owner supplies the data cache-to-cache and
                // keeps its dirty copy in Sm — no write-back into the L3
                // (owner_writeback stays false).
                self.counters.owner_downgrades += 1;
                out.downgrade_owner = Some(owner);
                out.message_count += 2; // forwarded request + data reply
                dir.set_entry(
                    line,
                    DirectoryEntry::OwnedShared {
                        owner,
                        sharers: SharerSet::single(tile),
                    },
                );
            }
            DirectoryEntry::OwnedShared { owner, sharers: _ } if owner == tile => {
                // The Sm owner re-reads (e.g. refilling after a policy
                // invalidation of its private copy); it keeps write-back
                // responsibility.
                out.fill_state = MesiState::SharedModified;
                self.counters.redundant_reads += 1;
            }
            DirectoryEntry::OwnedShared { owner, mut sharers } => {
                if sharers.contains(tile) {
                    self.counters.redundant_reads += 1;
                } else {
                    // A new reader joins; the Sm owner forwards the data.
                    sharers.insert(tile);
                    out.message_count += 2; // forwarded request + data reply
                    dir.set_entry(line, DirectoryEntry::OwnedShared { owner, sharers });
                }
            }
        }
        debug_assert!(dir.check_invariants(line));
        out
    }

    fn write(&mut self, dir: &mut Directory, line: LineAddr, tile: usize) -> AccessOutcome {
        self.counters.writes += 1;
        // Request to the home node plus the data reply.
        let mut out = AccessOutcome {
            fill_state: MesiState::Modified,
            fills_requester: true,
            invalidate: SharerSet::empty(),
            downgrade_owner: None,
            owner_writeback: false,
            update: SharerSet::empty(),
            message_count: 2,
        };
        match dir.entry(line) {
            DirectoryEntry::Uncached => {
                dir.set_entry(line, DirectoryEntry::Owned { owner: tile });
            }
            DirectoryEntry::Shared(sharers) => {
                let targets = sharers.without(tile);
                if targets.is_empty() {
                    // Sole sharer: the write promotes to a private M copy.
                    dir.set_entry(line, DirectoryEntry::Owned { owner: tile });
                } else {
                    // Broadcast the written word; every other sharer stays
                    // a valid clean replica and the writer becomes the Sm
                    // owner.
                    self.counters.updates_sent += targets.len() as u64;
                    out.message_count += 2 * targets.len() as u64; // update + ack each
                    out.update = targets;
                    out.fill_state = MesiState::SharedModified;
                    dir.set_entry(
                        line,
                        DirectoryEntry::OwnedShared {
                            owner: tile,
                            sharers: targets,
                        },
                    );
                }
            }
            DirectoryEntry::Owned { owner } if owner == tile => {
                self.counters.silent_upgrades += 1;
            }
            DirectoryEntry::Owned { owner } => {
                // Ownership transfers: the old owner's copy is brought up
                // to date (its dirty words migrate to the writer cache-to-
                // cache) and it stays as a clean sharer.
                self.counters.owner_transfers += 1;
                self.counters.updates_sent += 1;
                out.update = SharerSet::single(owner);
                out.fill_state = MesiState::SharedModified;
                out.message_count += 2; // forwarded update + ack
                dir.set_entry(
                    line,
                    DirectoryEntry::OwnedShared {
                        owner: tile,
                        sharers: SharerSet::single(owner),
                    },
                );
            }
            DirectoryEntry::OwnedShared { owner, sharers } if owner == tile => {
                // The Sm owner writes again: update every replica, keep
                // the entry as is.
                self.counters.updates_sent += sharers.len() as u64;
                out.message_count += 2 * sharers.len() as u64;
                out.update = sharers;
                out.fill_state = MesiState::SharedModified;
            }
            DirectoryEntry::OwnedShared { owner, sharers } => {
                // A replica (or a newcomer) writes: it takes over as Sm
                // owner; the old owner and every other replica receive the
                // update and become clean sharers.
                let mut targets = sharers.without(tile);
                targets.insert(owner);
                self.counters.owner_transfers += 1;
                self.counters.updates_sent += targets.len() as u64;
                out.update = targets;
                out.fill_state = MesiState::SharedModified;
                out.message_count += 2 * targets.len() as u64;
                dir.set_entry(
                    line,
                    DirectoryEntry::OwnedShared {
                        owner: tile,
                        sharers: targets,
                    },
                );
            }
        }
        debug_assert!(dir.check_invariants(line));
        out
    }

    fn evict(
        &mut self,
        dir: &mut Directory,
        line: LineAddr,
        tile: usize,
        dirty: bool,
    ) -> AccessOutcome {
        let mut out = AccessOutcome::eviction();
        out.message_count = 1; // the PutS/PutM notification
        if dirty {
            self.counters.dirty_evictions_absorbed += 1;
            out.owner_writeback = true;
        } else {
            self.counters.clean_evictions += 1;
        }
        dir.remove_holder(line, tile);
        debug_assert!(dir.check_invariants(line));
        out
    }

    /// See [`DirectoryProtocol::invalidate_all`].
    pub fn invalidate_all(&mut self, dir: &mut Directory, line: LineAddr) -> (SharerSet, bool) {
        let entry = dir.entry(line);
        let holders = entry.holders();
        let had_dirty = entry.is_owned();
        self.counters.inclusive_invalidations += holders.len() as u64;
        dir.forget(line);
        (holders, had_dirty)
    }
}

/// The protocol engine a [`CoherenceProtocol`] axis value selects — one
/// enum so the simulator stores and drives either protocol through a
/// single field with no dynamic dispatch.
#[derive(Debug, Clone)]
pub enum CoherenceEngine {
    /// Invalidation-based directory MESI.
    Mesi(DirectoryProtocol),
    /// Update-based Dragon.
    Dragon(DragonProtocol),
}

impl CoherenceEngine {
    /// Creates the engine `protocol` names for `num_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero or greater than 64.
    #[must_use]
    pub fn new(protocol: CoherenceProtocol, num_tiles: usize) -> Self {
        match protocol {
            CoherenceProtocol::Mesi => CoherenceEngine::Mesi(DirectoryProtocol::new(num_tiles)),
            CoherenceProtocol::Dragon => CoherenceEngine::Dragon(DragonProtocol::new(num_tiles)),
        }
    }

    /// Which protocol this engine runs.
    #[must_use]
    pub fn protocol(&self) -> CoherenceProtocol {
        match self {
            CoherenceEngine::Mesi(_) => CoherenceProtocol::Mesi,
            CoherenceEngine::Dragon(_) => CoherenceProtocol::Dragon,
        }
    }

    /// Resolves `request`; see [`DirectoryProtocol::access`].
    pub fn access(
        &mut self,
        dir: &mut Directory,
        line: LineAddr,
        tile: usize,
        request: CoreRequest,
    ) -> AccessOutcome {
        match self {
            CoherenceEngine::Mesi(p) => p.access(dir, line, tile, request),
            CoherenceEngine::Dragon(p) => p.access(dir, line, tile, request),
        }
    }

    /// See [`DirectoryProtocol::invalidate_all`].
    pub fn invalidate_all(&mut self, dir: &mut Directory, line: LineAddr) -> (SharerSet, bool) {
        match self {
            CoherenceEngine::Mesi(p) => p.invalidate_all(dir, line),
            CoherenceEngine::Dragon(p) => p.invalidate_all(dir, line),
        }
    }

    /// Protocol statistics; see [`DirectoryProtocol::stats`].
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        match self {
            CoherenceEngine::Mesi(p) => p.stats(),
            CoherenceEngine::Dragon(p) => p.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Directory, DirectoryProtocol, LineAddr) {
        (
            Directory::new(16),
            DirectoryProtocol::new(16),
            LineAddr::new(0x40),
        )
    }

    #[test]
    fn first_read_grants_exclusive() {
        let (mut dir, mut p, line) = setup();
        let out = p.access(&mut dir, line, 0, CoreRequest::Read);
        assert_eq!(out.fill_state, MesiState::Exclusive);
        assert!(out.fills_requester);
        assert!(out.invalidate.is_empty());
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 0 });
    }

    #[test]
    fn second_read_downgrades_owner_to_shared() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        let out = p.access(&mut dir, line, 1, CoreRequest::Read);
        assert_eq!(out.fill_state, MesiState::Shared);
        assert_eq!(out.downgrade_owner, Some(0));
        assert!(out.owner_writeback);
        let holders = dir.entry(line).holders();
        assert!(holders.contains(0) && holders.contains(1));
        assert!(!dir.entry(line).is_owned());
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 2, CoreRequest::Read);
        let out = p.access(&mut dir, line, 3, CoreRequest::Write);
        assert_eq!(out.fill_state, MesiState::Modified);
        let inv: Vec<usize> = out.invalidate.iter().collect();
        assert_eq!(inv, vec![0, 1, 2]);
        assert_eq!(out.message_count, 2 + 2 * 3);
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 3 });
        assert_eq!(p.stats().get("invalidations_sent"), 3);
    }

    #[test]
    fn write_by_sharer_does_not_invalidate_itself() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        let out = p.access(&mut dir, line, 0, CoreRequest::Write);
        assert_eq!(out.invalidate, SharerSet::single(1));
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 0 });
    }

    #[test]
    fn write_steals_ownership_with_writeback() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Write);
        let out = p.access(&mut dir, line, 1, CoreRequest::Write);
        assert_eq!(out.downgrade_owner, Some(0));
        assert!(out.owner_writeback);
        assert_eq!(out.invalidate, SharerSet::single(0));
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 1 });
        assert_eq!(p.stats().get("owner_transfers"), 1);
    }

    #[test]
    fn owner_rewrite_is_silent_upgrade() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 5, CoreRequest::Write);
        let out = p.access(&mut dir, line, 5, CoreRequest::Write);
        assert!(out.invalidate.is_empty());
        assert_eq!(out.downgrade_owner, None);
        assert_eq!(p.stats().get("silent_upgrades"), 1);
    }

    #[test]
    fn evictions_update_directory() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 0, CoreRequest::EvictClean);
        assert_eq!(
            dir.entry(line),
            DirectoryEntry::Shared(SharerSet::single(1))
        );
        p.access(&mut dir, line, 1, CoreRequest::EvictClean);
        assert_eq!(dir.entry(line), DirectoryEntry::Uncached);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 4, CoreRequest::Write);
        let out = p.access(&mut dir, line, 4, CoreRequest::EvictDirty);
        assert!(out.owner_writeback);
        assert!(!out.fills_requester);
        assert_eq!(dir.entry(line), DirectoryEntry::Uncached);
    }

    #[test]
    fn invalidate_all_clears_holders() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        let (holders, dirty) = p.invalidate_all(&mut dir, line);
        assert_eq!(holders.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(!dirty);
        assert_eq!(p.stats().get("inclusive_invalidations"), 2);
        assert_eq!(dir.entry(line), DirectoryEntry::Uncached);

        // Owned case reports dirty.
        p.access(&mut dir, line, 7, CoreRequest::Write);
        let (holders, dirty) = p.invalidate_all(&mut dir, line);
        assert_eq!(holders, SharerSet::single(7));
        assert!(dirty);
    }

    #[test]
    fn single_writer_invariant_over_random_traffic() {
        use refrint_engine::rng::DeterministicRng;
        let mut dir = Directory::new(16);
        let mut p = DirectoryProtocol::new(16);
        let mut rng = DeterministicRng::from_seed(2024);
        let lines: Vec<LineAddr> = (0..8).map(LineAddr::new).collect();
        for _ in 0..5000 {
            let line = lines[rng.below(8) as usize];
            let tile = rng.below(16) as usize;
            let req = match rng.below(4) {
                0 => CoreRequest::Read,
                1 => CoreRequest::Write,
                2 => CoreRequest::EvictClean,
                _ => CoreRequest::EvictDirty,
            };
            // Evictions of lines we do not hold are fine for the directory —
            // remove_holder is idempotent.
            let _ = p.access(&mut dir, line, tile, req);
            for &l in &lines {
                assert!(dir.check_invariants(l));
                // Single-writer: an owned line has exactly one holder.
                if dir.entry(l).is_owned() {
                    assert_eq!(dir.entry(l).holders().len(), 1);
                }
            }
        }
    }

    #[test]
    fn protocol_labels_round_trip() {
        for p in CoherenceProtocol::ALL {
            assert_eq!(p.label().parse::<CoherenceProtocol>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(CoherenceProtocol::default(), CoherenceProtocol::Mesi);
        assert!(CoherenceProtocol::Mesi.is_default());
        assert!(!CoherenceProtocol::Dragon.is_default());
        assert!("moesi".parse::<CoherenceProtocol>().is_err());
    }

    fn dragon_setup() -> (Directory, DragonProtocol, LineAddr) {
        (
            Directory::new(16),
            DragonProtocol::new(16),
            LineAddr::new(0x40),
        )
    }

    #[test]
    fn dragon_write_to_shared_updates_instead_of_invalidating() {
        let (mut dir, mut p, line) = dragon_setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 2, CoreRequest::Read);
        let out = p.access(&mut dir, line, 3, CoreRequest::Write);
        assert!(
            out.invalidate.is_empty(),
            "Dragon never invalidates on write"
        );
        assert_eq!(out.update.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(out.fill_state, MesiState::SharedModified);
        assert_eq!(out.message_count, 2 + 2 * 3);
        assert_eq!(
            dir.entry(line),
            DirectoryEntry::OwnedShared {
                owner: 3,
                sharers: [0, 1, 2].into_iter().collect(),
            }
        );
        assert_eq!(p.stats().get("updates_sent"), 3);
        assert_eq!(p.stats().get("invalidations_sent"), 0);
    }

    #[test]
    fn dragon_sole_sharer_write_promotes_to_modified() {
        let (mut dir, mut p, line) = dragon_setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::EvictClean);
        let out = p.access(&mut dir, line, 0, CoreRequest::Write);
        assert_eq!(out.fill_state, MesiState::Modified);
        assert!(out.update.is_empty());
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 0 });
    }

    #[test]
    fn dragon_read_of_owned_keeps_dirty_in_owner() {
        let (mut dir, mut p, line) = dragon_setup();
        p.access(&mut dir, line, 0, CoreRequest::Write);
        let out = p.access(&mut dir, line, 1, CoreRequest::Read);
        assert_eq!(out.downgrade_owner, Some(0));
        assert!(
            !out.owner_writeback,
            "Dragon forwards cache-to-cache; the owner keeps its dirty copy"
        );
        assert_eq!(out.fill_state, MesiState::Shared);
        assert_eq!(out.message_count, 2 + 2);
        assert_eq!(
            dir.entry(line),
            DirectoryEntry::OwnedShared {
                owner: 0,
                sharers: SharerSet::single(1),
            }
        );
        // A third reader is served by the Sm owner without another downgrade.
        let out = p.access(&mut dir, line, 2, CoreRequest::Read);
        assert_eq!(out.downgrade_owner, None);
        assert_eq!(out.message_count, 2 + 2);
        assert_eq!(dir.entry(line).holders().len(), 3);
    }

    #[test]
    fn dragon_write_steals_ownership_via_update() {
        let (mut dir, mut p, line) = dragon_setup();
        p.access(&mut dir, line, 0, CoreRequest::Write);
        let out = p.access(&mut dir, line, 1, CoreRequest::Write);
        assert!(out.invalidate.is_empty());
        assert_eq!(out.update, SharerSet::single(0));
        assert_eq!(out.fill_state, MesiState::SharedModified);
        assert_eq!(
            dir.entry(line),
            DirectoryEntry::OwnedShared {
                owner: 1,
                sharers: SharerSet::single(0),
            }
        );
        assert_eq!(p.stats().get("owner_transfers"), 1);
        assert_eq!(p.stats().get("updates_sent"), 1);
    }

    #[test]
    fn dragon_sm_owner_rewrites_keep_broadcasting() {
        let (mut dir, mut p, line) = dragon_setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 0, CoreRequest::Write); // 0 becomes Sm owner
        let out = p.access(&mut dir, line, 0, CoreRequest::Write);
        assert_eq!(out.update, SharerSet::single(1));
        assert_eq!(out.fill_state, MesiState::SharedModified);
        assert_eq!(p.stats().get("updates_sent"), 2);
        assert_eq!(p.stats().get("silent_upgrades"), 0);
        // A sharer writing takes over ownership; the old owner joins the
        // update targets.
        let out = p.access(&mut dir, line, 1, CoreRequest::Write);
        assert_eq!(out.update, SharerSet::single(0));
        assert_eq!(
            dir.entry(line),
            DirectoryEntry::OwnedShared {
                owner: 1,
                sharers: SharerSet::single(0),
            }
        );
        assert_eq!(p.stats().get("owner_transfers"), 1);
    }

    #[test]
    fn dragon_owner_eviction_leaves_sharers() {
        let (mut dir, mut p, line) = dragon_setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 0, CoreRequest::Write);
        // The Sm owner evicts its dirty copy: the write-back is real, the
        // remaining replica becomes a plain sharer.
        let out = p.access(&mut dir, line, 0, CoreRequest::EvictDirty);
        assert!(out.owner_writeback);
        assert_eq!(
            dir.entry(line),
            DirectoryEntry::Shared(SharerSet::single(1))
        );
        // And a sharer evicting under an Sm owner collapses back to Owned.
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 0, CoreRequest::Write);
        p.access(&mut dir, line, 1, CoreRequest::EvictClean);
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 0 });
    }

    #[test]
    fn dragon_invalidate_all_reports_sm_dirty() {
        let (mut dir, mut p, line) = dragon_setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 0, CoreRequest::Write);
        let (holders, dirty) = p.invalidate_all(&mut dir, line);
        assert_eq!(holders.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(dirty, "the Sm owner held the only up-to-date copy");
        assert_eq!(dir.entry(line), DirectoryEntry::Uncached);
    }

    #[test]
    fn dragon_invariants_over_random_traffic() {
        use refrint_engine::rng::DeterministicRng;
        let mut dir = Directory::new(16);
        let mut p = DragonProtocol::new(16);
        let mut rng = DeterministicRng::from_seed(4096);
        let lines: Vec<LineAddr> = (0..8).map(LineAddr::new).collect();
        for _ in 0..5000 {
            let line = lines[rng.below(8) as usize];
            let tile = rng.below(16) as usize;
            let req = match rng.below(4) {
                0 => CoreRequest::Read,
                1 => CoreRequest::Write,
                2 => CoreRequest::EvictClean,
                _ => CoreRequest::EvictDirty,
            };
            let out = p.access(&mut dir, line, tile, req);
            // Dragon resolves writes with updates, never invalidations.
            assert!(out.invalidate.is_empty());
            for &l in &lines {
                assert!(dir.check_invariants(l));
            }
        }
        assert_eq!(p.stats().get("invalidations_sent"), 0);
    }

    #[test]
    fn engine_dispatches_by_protocol() {
        let mut dir = Directory::new(4);
        let mut engine = CoherenceEngine::new(CoherenceProtocol::Dragon, 4);
        assert_eq!(engine.protocol(), CoherenceProtocol::Dragon);
        let line = LineAddr::new(0x9);
        engine.access(&mut dir, line, 0, CoreRequest::Read);
        engine.access(&mut dir, line, 1, CoreRequest::Read);
        let out = engine.access(&mut dir, line, 2, CoreRequest::Write);
        assert_eq!(out.fill_state, MesiState::SharedModified);
        assert_eq!(engine.stats().get("updates_sent"), 2);
        let (holders, dirty) = engine.invalidate_all(&mut dir, line);
        assert_eq!(holders.len(), 3);
        assert!(dirty);

        let mesi = CoherenceEngine::new(CoherenceProtocol::Mesi, 4);
        assert_eq!(mesi.protocol(), CoherenceProtocol::Mesi);
    }
}
