//! Transaction-level directory MESI protocol.
//!
//! [`DirectoryProtocol::access`] resolves one core request against the
//! directory: it computes the new directory entry, which private copies must
//! be invalidated or downgraded (inclusivity and single-writer invariants),
//! what state the requester fills in, and the messages exchanged. The caller
//! (the CMP simulator) applies the corresponding changes to the actual cache
//! arrays and converts the messages into latency and energy.

use refrint_engine::stats::StatRegistry;
use refrint_mem::addr::LineAddr;
use refrint_mem::line::MesiState;

use crate::directory::{Directory, DirectoryEntry, SharerSet};
use crate::msg::CoherenceMsg;

/// A request from a core's private hierarchy to the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreRequest {
    /// A load that missed in the private caches (GetS).
    Read,
    /// A store that missed or lacked write permission (GetX / upgrade).
    Write,
    /// The private hierarchy evicted a clean copy (PutS — silent in many
    /// protocols, explicit here so the directory stays precise).
    EvictClean,
    /// The private hierarchy evicted a dirty copy and writes it back (PutM).
    EvictDirty,
}

/// What the directory decided for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// State the requester's private caches should install the line in
    /// (meaningless for evictions).
    pub fill_state: MesiState,
    /// Whether the requester receives data (i.e. this was a read or write).
    pub fills_requester: bool,
    /// Tiles whose private copies must be invalidated, excluding the
    /// requester.
    pub invalidate: Vec<usize>,
    /// Tile whose Modified copy must be downgraded (and written back to L3)
    /// before the request completes.
    pub downgrade_owner: Option<usize>,
    /// Whether the previous owner's dirty data is written back into the L3
    /// as part of this transaction.
    pub owner_writeback: bool,
    /// Messages generated, for latency and traffic accounting.
    pub messages: Vec<CoherenceMsg>,
}

impl AccessOutcome {
    fn eviction() -> Self {
        AccessOutcome {
            fill_state: MesiState::Invalid,
            fills_requester: false,
            invalidate: Vec::new(),
            downgrade_owner: None,
            owner_writeback: false,
            messages: Vec::new(),
        }
    }
}

/// The directory-side protocol engine.
#[derive(Debug, Clone)]
pub struct DirectoryProtocol {
    num_tiles: usize,
    stats: StatRegistry,
}

impl DirectoryProtocol {
    /// Creates a protocol engine for `num_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero or greater than 64.
    #[must_use]
    pub fn new(num_tiles: usize) -> Self {
        assert!(
            num_tiles > 0 && num_tiles <= 64,
            "protocol supports 1..=64 tiles"
        );
        DirectoryProtocol {
            num_tiles,
            stats: StatRegistry::new(),
        }
    }

    /// Protocol statistics (per-request-kind counts, invalidations sent,
    /// owner downgrades, writebacks absorbed).
    #[must_use]
    pub fn stats(&self) -> &StatRegistry {
        &self.stats
    }

    /// Resolves `request` from `tile` for `line` against `dir`.
    ///
    /// The directory entry is updated; the caller must apply the returned
    /// invalidations/downgrades to the private cache arrays to preserve the
    /// inclusive-hierarchy invariant.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn access(
        &mut self,
        dir: &mut Directory,
        line: LineAddr,
        tile: usize,
        request: CoreRequest,
    ) -> AccessOutcome {
        assert!(tile < self.num_tiles, "tile {tile} out of range");
        match request {
            CoreRequest::Read => self.read(dir, line, tile),
            CoreRequest::Write => self.write(dir, line, tile),
            CoreRequest::EvictClean => self.evict(dir, line, tile, false),
            CoreRequest::EvictDirty => self.evict(dir, line, tile, true),
        }
    }

    fn read(&mut self, dir: &mut Directory, line: LineAddr, tile: usize) -> AccessOutcome {
        self.stats.incr("reads");
        let mut out = AccessOutcome {
            fill_state: MesiState::Shared,
            fills_requester: true,
            invalidate: Vec::new(),
            downgrade_owner: None,
            owner_writeback: false,
            messages: vec![CoherenceMsg::request(line, tile)],
        };
        match dir.entry(line) {
            DirectoryEntry::Uncached => {
                // No private copy: grant Exclusive, as MESI does.
                out.fill_state = MesiState::Exclusive;
                dir.set_entry(line, DirectoryEntry::Owned { owner: tile });
            }
            DirectoryEntry::Shared(mut sharers) => {
                if sharers.contains(tile) {
                    // The directory already thinks we have it (e.g. an IL1/DL1
                    // refill within the same tile); keep it Shared.
                    self.stats.incr("redundant_reads");
                } else {
                    sharers.insert(tile);
                }
                out.fill_state = MesiState::Shared;
                dir.set_entry(line, DirectoryEntry::Shared(sharers));
            }
            DirectoryEntry::Owned { owner } if owner == tile => {
                // Re-request by the owner (e.g. refilling an L1 from its own
                // L2 path); ownership is retained.
                out.fill_state = MesiState::Exclusive;
                self.stats.incr("redundant_reads");
            }
            DirectoryEntry::Owned { owner } => {
                // Downgrade the owner; its dirty data (if any) is written
                // back into the L3, and both tiles end up sharers.
                self.stats.incr("owner_downgrades");
                out.downgrade_owner = Some(owner);
                out.owner_writeback = true;
                out.fill_state = MesiState::Shared;
                out.messages
                    .push(CoherenceMsg::invalidate(line, owner, true));
                out.messages
                    .push(CoherenceMsg::ack(line, owner, true, true));
                let sharers: SharerSet = [owner, tile].into_iter().collect();
                dir.set_entry(line, DirectoryEntry::Shared(sharers));
            }
        }
        out.messages
            .push(CoherenceMsg::data_to_requester(line, tile));
        debug_assert!(dir.check_invariants(line));
        out
    }

    fn write(&mut self, dir: &mut Directory, line: LineAddr, tile: usize) -> AccessOutcome {
        self.stats.incr("writes");
        let mut out = AccessOutcome {
            fill_state: MesiState::Modified,
            fills_requester: true,
            invalidate: Vec::new(),
            downgrade_owner: None,
            owner_writeback: false,
            messages: vec![CoherenceMsg::request(line, tile)],
        };
        match dir.entry(line) {
            DirectoryEntry::Uncached => {}
            DirectoryEntry::Shared(sharers) => {
                for holder in sharers.iter().filter(|&t| t != tile) {
                    self.stats.incr("invalidations_sent");
                    out.invalidate.push(holder);
                    out.messages
                        .push(CoherenceMsg::invalidate(line, holder, true));
                    out.messages
                        .push(CoherenceMsg::ack(line, holder, false, true));
                }
            }
            DirectoryEntry::Owned { owner } if owner == tile => {
                // Upgrade in place; no remote work.
                self.stats.incr("silent_upgrades");
            }
            DirectoryEntry::Owned { owner } => {
                self.stats.incr("owner_transfers");
                out.downgrade_owner = Some(owner);
                out.owner_writeback = true;
                out.invalidate.push(owner);
                out.messages
                    .push(CoherenceMsg::invalidate(line, owner, true));
                out.messages
                    .push(CoherenceMsg::ack(line, owner, true, true));
            }
        }
        dir.set_entry(line, DirectoryEntry::Owned { owner: tile });
        out.messages
            .push(CoherenceMsg::data_to_requester(line, tile));
        debug_assert!(dir.check_invariants(line));
        out
    }

    fn evict(
        &mut self,
        dir: &mut Directory,
        line: LineAddr,
        tile: usize,
        dirty: bool,
    ) -> AccessOutcome {
        let mut out = AccessOutcome::eviction();
        if dirty {
            self.stats.incr("dirty_evictions_absorbed");
            out.owner_writeback = true;
            out.messages
                .push(CoherenceMsg::ack(line, tile, true, false));
        } else {
            self.stats.incr("clean_evictions");
            out.messages
                .push(CoherenceMsg::ack(line, tile, false, false));
        }
        dir.remove_holder(line, tile);
        debug_assert!(dir.check_invariants(line));
        out
    }

    /// Invalidates a line everywhere on behalf of the L3 (used when the L3
    /// line itself is evicted or decays): returns the tiles that held it and
    /// whether a dirty copy existed on chip, and forgets the entry.
    pub fn invalidate_all(
        &mut self,
        dir: &mut Directory,
        line: LineAddr,
    ) -> (Vec<usize>, bool, Vec<CoherenceMsg>) {
        let entry = dir.entry(line);
        let holders: Vec<usize> = entry.holders().iter().collect();
        let had_dirty = entry.is_owned();
        let mut messages = Vec::new();
        for &h in &holders {
            self.stats.incr("inclusive_invalidations");
            messages.push(CoherenceMsg::invalidate(line, h, false));
            messages.push(CoherenceMsg::ack(line, h, had_dirty, false));
        }
        dir.forget(line);
        (holders, had_dirty, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Directory, DirectoryProtocol, LineAddr) {
        (
            Directory::new(16),
            DirectoryProtocol::new(16),
            LineAddr::new(0x40),
        )
    }

    #[test]
    fn first_read_grants_exclusive() {
        let (mut dir, mut p, line) = setup();
        let out = p.access(&mut dir, line, 0, CoreRequest::Read);
        assert_eq!(out.fill_state, MesiState::Exclusive);
        assert!(out.fills_requester);
        assert!(out.invalidate.is_empty());
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 0 });
    }

    #[test]
    fn second_read_downgrades_owner_to_shared() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        let out = p.access(&mut dir, line, 1, CoreRequest::Read);
        assert_eq!(out.fill_state, MesiState::Shared);
        assert_eq!(out.downgrade_owner, Some(0));
        assert!(out.owner_writeback);
        let holders = dir.entry(line).holders();
        assert!(holders.contains(0) && holders.contains(1));
        assert!(!dir.entry(line).is_owned());
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 2, CoreRequest::Read);
        let out = p.access(&mut dir, line, 3, CoreRequest::Write);
        assert_eq!(out.fill_state, MesiState::Modified);
        let mut inv = out.invalidate.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![0, 1, 2]);
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 3 });
        assert_eq!(p.stats().get("invalidations_sent"), 3);
    }

    #[test]
    fn write_by_sharer_does_not_invalidate_itself() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        let out = p.access(&mut dir, line, 0, CoreRequest::Write);
        assert_eq!(out.invalidate, vec![1]);
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 0 });
    }

    #[test]
    fn write_steals_ownership_with_writeback() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Write);
        let out = p.access(&mut dir, line, 1, CoreRequest::Write);
        assert_eq!(out.downgrade_owner, Some(0));
        assert!(out.owner_writeback);
        assert_eq!(out.invalidate, vec![0]);
        assert_eq!(dir.entry(line), DirectoryEntry::Owned { owner: 1 });
        assert_eq!(p.stats().get("owner_transfers"), 1);
    }

    #[test]
    fn owner_rewrite_is_silent_upgrade() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 5, CoreRequest::Write);
        let out = p.access(&mut dir, line, 5, CoreRequest::Write);
        assert!(out.invalidate.is_empty());
        assert_eq!(out.downgrade_owner, None);
        assert_eq!(p.stats().get("silent_upgrades"), 1);
    }

    #[test]
    fn evictions_update_directory() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        p.access(&mut dir, line, 0, CoreRequest::EvictClean);
        assert_eq!(
            dir.entry(line),
            DirectoryEntry::Shared(SharerSet::single(1))
        );
        p.access(&mut dir, line, 1, CoreRequest::EvictClean);
        assert_eq!(dir.entry(line), DirectoryEntry::Uncached);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 4, CoreRequest::Write);
        let out = p.access(&mut dir, line, 4, CoreRequest::EvictDirty);
        assert!(out.owner_writeback);
        assert!(!out.fills_requester);
        assert_eq!(dir.entry(line), DirectoryEntry::Uncached);
    }

    #[test]
    fn invalidate_all_clears_holders() {
        let (mut dir, mut p, line) = setup();
        p.access(&mut dir, line, 0, CoreRequest::Read);
        p.access(&mut dir, line, 1, CoreRequest::Read);
        let (holders, dirty, msgs) = p.invalidate_all(&mut dir, line);
        let mut holders = holders;
        holders.sort_unstable();
        assert_eq!(holders, vec![0, 1]);
        assert!(!dirty);
        assert_eq!(msgs.len(), 4);
        assert_eq!(dir.entry(line), DirectoryEntry::Uncached);

        // Owned case reports dirty.
        p.access(&mut dir, line, 7, CoreRequest::Write);
        let (holders, dirty, _) = p.invalidate_all(&mut dir, line);
        assert_eq!(holders, vec![7]);
        assert!(dirty);
    }

    #[test]
    fn single_writer_invariant_over_random_traffic() {
        use refrint_engine::rng::DeterministicRng;
        let mut dir = Directory::new(16);
        let mut p = DirectoryProtocol::new(16);
        let mut rng = DeterministicRng::from_seed(2024);
        let lines: Vec<LineAddr> = (0..8).map(LineAddr::new).collect();
        for _ in 0..5000 {
            let line = lines[rng.below(8) as usize];
            let tile = rng.below(16) as usize;
            let req = match rng.below(4) {
                0 => CoreRequest::Read,
                1 => CoreRequest::Write,
                2 => CoreRequest::EvictClean,
                _ => CoreRequest::EvictDirty,
            };
            // Evictions of lines we do not hold are fine for the directory —
            // remove_holder is idempotent.
            let _ = p.access(&mut dir, line, tile, req);
            for &l in &lines {
                assert!(dir.check_invariants(l));
                // Single-writer: an owned line has exactly one holder.
                if dir.entry(l).is_owned() {
                    assert_eq!(dir.entry(l).holders().len(), 1);
                }
            }
        }
    }
}
