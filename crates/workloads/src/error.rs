//! Error types for the workload generators.

use std::error::Error;
use std::fmt;

/// Errors produced by the workload subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A workload model was internally inconsistent.
    InvalidModel {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An unknown application name was requested.
    UnknownApplication {
        /// The unrecognised name.
        name: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidModel { reason } => {
                write!(f, "invalid workload model: {reason}")
            }
            WorkloadError::UnknownApplication { name } => {
                write!(f, "unknown application `{name}`")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(WorkloadError::InvalidModel { reason: "x".into() }
            .to_string()
            .contains("invalid"));
        assert!(WorkloadError::UnknownApplication {
            name: "doom".into()
        }
        .to_string()
        .contains("doom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<WorkloadError>();
    }
}
