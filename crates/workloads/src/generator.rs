//! Deterministic per-thread address-stream generation.
//!
//! Each thread's stream is produced by a [`ThreadStream`] iterator, seeded
//! from `(workload seed, thread id)`, so runs are exactly reproducible and
//! threads are de-correlated. The address space is laid out as:
//!
//! ```text
//! [ shared region ][ thread 0 private ][ thread 1 private ] ...
//! ```
//!
//! with each thread's hot set occupying the first bytes of its private
//! region. References pick a region (hot / private-cold / shared), then walk
//! a short sequential run inside it before jumping to a new random line,
//! which yields realistic spatial locality.

use refrint_engine::rng::DeterministicRng;
use refrint_mem::addr::Addr;

use crate::model::WorkloadModel;
use crate::trace::{AccessKind, MemRef};

const LINE: u64 = 64;

/// Which region the current run is walking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Hot,
    PrivateCold,
    Shared,
}

/// A deterministic iterator over one thread's memory references.
#[derive(Debug, Clone)]
pub struct ThreadStream {
    model: WorkloadModel,
    thread: usize,
    rng: DeterministicRng,
    emitted: u64,
    /// Current sequential-run state.
    region: Region,
    current_line: u64,
    run_left: u64,
}

impl ThreadStream {
    /// Creates the stream for `thread` of the workload described by `model`,
    /// derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the model fails validation or `thread` is out of range.
    #[must_use]
    pub fn new(model: &WorkloadModel, thread: usize, seed: u64) -> Self {
        model.validate().expect("workload model must be valid");
        assert!(thread < model.threads, "thread {thread} out of range");
        let rng = DeterministicRng::from_seed(seed).fork(thread as u64 + 1);
        ThreadStream {
            model: model.clone(),
            thread,
            rng,
            emitted: 0,
            region: Region::Hot,
            current_line: 0,
            run_left: 0,
        }
    }

    /// The thread index this stream belongs to.
    #[must_use]
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Base byte address of the shared region.
    #[must_use]
    pub fn shared_base(&self) -> u64 {
        0
    }

    /// Base byte address of this thread's private region.
    #[must_use]
    pub fn private_base(&self) -> u64 {
        self.model.shared_bytes + self.thread as u64 * self.model.private_bytes_per_thread
    }

    fn region_bounds(&self, region: Region) -> (u64, u64) {
        match region {
            Region::Shared => (0, self.model.shared_bytes),
            Region::Hot => (
                self.private_base(),
                self.model
                    .hot_bytes_per_thread
                    .min(self.model.private_bytes_per_thread),
            ),
            Region::PrivateCold => (self.private_base(), self.model.private_bytes_per_thread),
        }
    }

    fn pick_region(&mut self) -> Region {
        if self.rng.chance(self.model.hot_fraction) {
            Region::Hot
        } else if self.rng.chance(self.model.shared_fraction) {
            Region::Shared
        } else {
            Region::PrivateCold
        }
    }

    fn start_run(&mut self) {
        self.region = self.pick_region();
        let (base, size) = self.region_bounds(self.region);
        let lines = (size / LINE).max(1);
        self.current_line = base / LINE + self.rng.below(lines);
        // Geometric run length around the configured mean, at least 1.
        self.run_left = 1 + self.rng.geometric(
            1.0 / self.model.stride_run as f64,
            self.model.stride_run * 4,
        );
    }

    fn next_addr(&mut self) -> Addr {
        if self.run_left == 0 {
            self.start_run();
        } else {
            let (base, size) = self.region_bounds(self.region);
            let first_line = base / LINE;
            let lines = (size / LINE).max(1);
            // Walk to the next line, wrapping within the region.
            self.current_line = first_line + ((self.current_line - first_line + 1) % lines);
        }
        self.run_left = self.run_left.saturating_sub(1);
        Addr::new(self.current_line * LINE + self.rng.below(LINE / 8) * 8)
    }
}

impl Iterator for ThreadStream {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if self.emitted >= self.model.refs_per_thread {
            return None;
        }
        self.emitted += 1;
        let gap = self.rng.geometric(
            1.0 / self.model.mean_gap_cycles as f64,
            self.model.max_gap_cycles(),
        );
        let addr = self.next_addr();
        let kind = if self.rng.chance(self.model.write_fraction) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Some(MemRef::new(gap, addr, kind))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.model.refs_per_thread - self.emitted) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ThreadStream {}

/// Generates the streams for every thread of `model`.
#[must_use]
pub fn all_threads(model: &WorkloadModel, seed: u64) -> Vec<ThreadStream> {
    (0..model.threads)
        .map(|t| ThreadStream::new(model, t, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn model() -> WorkloadModel {
        WorkloadModel {
            name: "gen-test".into(),
            threads: 4,
            refs_per_thread: 2000,
            private_bytes_per_thread: 256 * 1024,
            shared_bytes: 512 * 1024,
            hot_bytes_per_thread: 8 * 1024,
            hot_fraction: 0.5,
            shared_fraction: 0.4,
            write_fraction: 0.3,
            mean_gap_cycles: 3,
            stride_run: 4,
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let m = model();
        let a: Vec<MemRef> = ThreadStream::new(&m, 1, 7).collect();
        let b: Vec<MemRef> = ThreadStream::new(&m, 1, 7).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
    }

    #[test]
    fn different_threads_and_seeds_differ() {
        let m = model();
        let a: Vec<MemRef> = ThreadStream::new(&m, 0, 7).take(100).collect();
        let b: Vec<MemRef> = ThreadStream::new(&m, 1, 7).take(100).collect();
        let c: Vec<MemRef> = ThreadStream::new(&m, 0, 8).take(100).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn addresses_stay_inside_the_footprint() {
        let m = model();
        let limit = m.footprint_bytes();
        for t in 0..m.threads {
            for r in ThreadStream::new(&m, t, 3) {
                assert!(
                    r.addr.raw() < limit,
                    "address {} beyond footprint {limit}",
                    r.addr
                );
            }
        }
    }

    #[test]
    fn private_regions_do_not_overlap_between_threads() {
        let m = model();
        let shared = m.shared_bytes;
        let mut seen: Vec<HashSet<u64>> = vec![HashSet::new(); m.threads];
        for (t, thread_seen) in seen.iter_mut().enumerate() {
            for r in ThreadStream::new(&m, t, 3) {
                if r.addr.raw() >= shared {
                    thread_seen.insert(r.addr.raw());
                }
            }
        }
        for a in 0..m.threads {
            for b in (a + 1)..m.threads {
                assert!(seen[a].is_disjoint(&seen[b]), "threads {a} and {b} overlap");
            }
        }
    }

    #[test]
    fn write_fraction_is_respected_roughly() {
        let m = model();
        let refs: Vec<MemRef> = ThreadStream::new(&m, 0, 11).collect();
        let writes = refs.iter().filter(|r| r.is_write()).count() as f64;
        let frac = writes / refs.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "write fraction {frac}");
    }

    #[test]
    fn gaps_are_bounded_and_average_near_mean() {
        let m = model();
        let refs: Vec<MemRef> = ThreadStream::new(&m, 2, 11).collect();
        let max = refs.iter().map(|r| r.gap_cycles).max().unwrap();
        assert!(max <= m.max_gap_cycles());
        let mean: f64 = refs.iter().map(|r| r.gap_cycles as f64).sum::<f64>() / refs.len() as f64;
        assert!(
            mean > 0.5 && mean < m.mean_gap_cycles as f64 * 2.0,
            "mean gap {mean}"
        );
    }

    #[test]
    fn hot_fraction_concentrates_accesses() {
        // With a high hot fraction most distinct lines come from a tiny set.
        let mut m = model();
        m.hot_fraction = 0.95;
        m.shared_fraction = 0.5;
        let refs: Vec<MemRef> = ThreadStream::new(&m, 0, 5).collect();
        let distinct: HashSet<u64> = refs.iter().map(|r| r.addr.line(64).raw()).collect();
        // Footprint touched should be far smaller than the number of refs.
        assert!(
            distinct.len() < refs.len() / 4,
            "{} distinct lines",
            distinct.len()
        );
    }

    #[test]
    fn all_threads_builds_every_stream() {
        let m = model();
        let streams = all_threads(&m, 9);
        assert_eq!(streams.len(), 4);
        for (i, s) in streams.iter().enumerate() {
            assert_eq!(s.thread(), i);
            assert_eq!(s.len(), 2000);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_thread_panics() {
        let _ = ThreadStream::new(&model(), 99, 0);
    }
}
