//! Synthetic multi-threaded workloads for the Refrint reproduction.
//!
//! The paper evaluates 16-threaded SPLASH-2 and PARSEC applications
//! (Table 5.3) and then observes that, for refresh purposes, what matters is
//! only where an application sits on two axes (Figure 3.1):
//!
//! 1. **Footprint** relative to the last-level cache — large-footprint
//!    applications have long reuse distances, so idle lines can safely be
//!    discarded;
//! 2. **Visibility** of upper-level activity at the L3 — applications whose
//!    working set lives in the L1/L2 and is not shared give the L3 no signal
//!    that the data is still alive.
//!
//! Because the original binaries and their traces are not available in this
//! environment, this crate generates deterministic synthetic address streams
//! that are *parameterised directly on those two axes* (plus write fraction,
//! sharing degree and compute intensity), and provides one preset per paper
//! application with parameters chosen to land it in the class the paper
//! reports (Table 6.1). See `DESIGN.md` for the substitution rationale.
//!
//! * [`model`] — the tunable parameters of a synthetic application.
//! * [`trace`] — the memory-reference record and per-thread stream iterator.
//! * [`generator`] — the deterministic address-stream generator.
//! * [`apps`] — the 11 named presets and their expected classes.
//! * [`classify`] — footprint/visibility measurement and Class 1/2/3 binning
//!   (Table 6.1).
//!
//! # Example
//!
//! ```
//! use refrint_workloads::apps::AppPreset;
//! use refrint_workloads::generator::ThreadStream;
//!
//! let model = AppPreset::Fft.model();
//! let mut stream = ThreadStream::new(&model, 0, 42);
//! let first = stream.next().unwrap();
//! assert!(first.gap_cycles <= model.max_gap_cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod classify;
pub mod error;
pub mod generator;
pub mod model;
pub mod trace;

pub use apps::AppPreset;
pub use classify::{AppClass, ClassificationReport};
pub use error::WorkloadError;
pub use generator::ThreadStream;
pub use model::WorkloadModel;
pub use trace::{AccessKind, MemRef};
