//! Named application presets.
//!
//! One preset per application of the paper's Table 5.3, with parameters
//! chosen so that each lands in the class the paper reports in Table 6.1:
//!
//! * **Class 1** (large footprint, high visibility): FFT, FMM, Cholesky,
//!   Fluidanimate — footprints larger than the 16 MB L3, streaming-like
//!   reuse, moderate sharing.
//! * **Class 2** (small footprint, high visibility): Barnes, LU, Radix,
//!   Radiosity — footprints that fit in the L3 but with substantial
//!   sharing/migratory data, so the L3 sees dirty→shared transitions.
//! * **Class 3** (small footprint, low visibility): Blackscholes,
//!   Streamcluster, Raytrace — per-thread hot sets that live in the L1/L2,
//!   little sharing, so the L3 sees almost nothing after warm-up.
//!
//! These are synthetic analogues, not the original benchmarks; see the
//! crate-level documentation and `DESIGN.md` for the substitution argument.

use std::fmt;
use std::str::FromStr;

use crate::classify::AppClass;
use crate::error::WorkloadError;
use crate::model::WorkloadModel;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The eleven applications of the paper's Table 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppPreset {
    /// SPLASH-2 FFT (2^20 points) — Class 1.
    Fft,
    /// SPLASH-2 LU (512×512) — Class 2.
    Lu,
    /// SPLASH-2 Radix (2M keys) — Class 2.
    Radix,
    /// SPLASH-2 Cholesky (tk29.O) — Class 1.
    Cholesky,
    /// SPLASH-2 Barnes (16K particles) — Class 2.
    Barnes,
    /// SPLASH-2 FMM (16K particles) — Class 1.
    Fmm,
    /// SPLASH-2 Radiosity (batch) — Class 2.
    Radiosity,
    /// SPLASH-2 Raytrace (teapot) — Class 3.
    Raytrace,
    /// PARSEC Streamcluster (simsmall) — Class 3.
    Streamcluster,
    /// PARSEC Blackscholes (simmedium) — Class 3.
    Blackscholes,
    /// PARSEC Fluidanimate (simsmall) — Class 1.
    Fluidanimate,
}

impl AppPreset {
    /// All presets, in the order of Table 5.3.
    pub const ALL: [AppPreset; 11] = [
        AppPreset::Fft,
        AppPreset::Lu,
        AppPreset::Radix,
        AppPreset::Cholesky,
        AppPreset::Barnes,
        AppPreset::Fmm,
        AppPreset::Radiosity,
        AppPreset::Raytrace,
        AppPreset::Streamcluster,
        AppPreset::Blackscholes,
        AppPreset::Fluidanimate,
    ];

    /// The application's lowercase name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AppPreset::Fft => "fft",
            AppPreset::Lu => "lu",
            AppPreset::Radix => "radix",
            AppPreset::Cholesky => "cholesky",
            AppPreset::Barnes => "barnes",
            AppPreset::Fmm => "fmm",
            AppPreset::Radiosity => "radiosity",
            AppPreset::Raytrace => "raytrace",
            AppPreset::Streamcluster => "streamcluster",
            AppPreset::Blackscholes => "blackscholes",
            AppPreset::Fluidanimate => "fluidanimate",
        }
    }

    /// The class the paper bins this application into (Table 6.1).
    #[must_use]
    pub const fn paper_class(self) -> AppClass {
        match self {
            AppPreset::Fft | AppPreset::Fmm | AppPreset::Cholesky | AppPreset::Fluidanimate => {
                AppClass::Class1
            }
            AppPreset::Barnes | AppPreset::Lu | AppPreset::Radix | AppPreset::Radiosity => {
                AppClass::Class2
            }
            AppPreset::Blackscholes | AppPreset::Streamcluster | AppPreset::Raytrace => {
                AppClass::Class3
            }
        }
    }

    /// The presets belonging to `class`, in Table 5.3 order.
    #[must_use]
    pub fn in_class(class: AppClass) -> Vec<AppPreset> {
        Self::ALL
            .iter()
            .copied()
            .filter(|a| a.paper_class() == class)
            .collect()
    }

    /// The synthetic workload model for this application.
    ///
    /// The default reference count per thread is sized so a run covers
    /// several 50 µs retention periods at 1 GHz; scale it with
    /// [`WorkloadModel::with_refs_per_thread`] for quick tests.
    #[must_use]
    pub fn model(self) -> WorkloadModel {
        let base = WorkloadModel {
            name: self.name().to_owned(),
            threads: 16,
            refs_per_thread: 60_000,
            private_bytes_per_thread: MB,
            shared_bytes: 4 * MB,
            hot_bytes_per_thread: 16 * KB,
            hot_fraction: 0.5,
            shared_fraction: 0.3,
            write_fraction: 0.3,
            mean_gap_cycles: 3,
            stride_run: 4,
        };
        match self {
            // ---- Class 1: footprint well beyond the 16 MB L3, long reuse
            // distances, streaming behaviour, moderate sharing.
            AppPreset::Fft => WorkloadModel {
                private_bytes_per_thread: 2 * MB,
                shared_bytes: 24 * MB,
                hot_fraction: 0.35,
                shared_fraction: 0.5,
                write_fraction: 0.35,
                stride_run: 32,
                ..base
            },
            AppPreset::Fmm => WorkloadModel {
                private_bytes_per_thread: 2 * MB,
                shared_bytes: 16 * MB,
                hot_fraction: 0.4,
                shared_fraction: 0.45,
                write_fraction: 0.3,
                mean_gap_cycles: 4,
                stride_run: 24,
                ..base
            },
            AppPreset::Cholesky => WorkloadModel {
                private_bytes_per_thread: 3 * MB,
                shared_bytes: 12 * MB,
                hot_fraction: 0.4,
                shared_fraction: 0.4,
                write_fraction: 0.4,
                stride_run: 24,
                ..base
            },
            AppPreset::Fluidanimate => WorkloadModel {
                private_bytes_per_thread: 2 * MB,
                shared_bytes: 20 * MB,
                hot_fraction: 0.35,
                shared_fraction: 0.4,
                write_fraction: 0.35,
                mean_gap_cycles: 4,
                stride_run: 32,
                ..base
            },

            // ---- Class 2: footprint fits in the L3, heavy sharing /
            // producer-consumer data keeps the L3 informed.
            AppPreset::Barnes => WorkloadModel {
                private_bytes_per_thread: 256 * KB,
                shared_bytes: 6 * MB,
                hot_fraction: 0.45,
                shared_fraction: 0.6,
                write_fraction: 0.3,
                stride_run: 8,
                ..base
            },
            AppPreset::Lu => WorkloadModel {
                private_bytes_per_thread: 256 * KB,
                shared_bytes: 4 * MB,
                hot_fraction: 0.5,
                shared_fraction: 0.55,
                write_fraction: 0.35,
                stride_run: 8,
                ..base
            },
            AppPreset::Radix => WorkloadModel {
                private_bytes_per_thread: 512 * KB,
                shared_bytes: 8 * MB,
                hot_fraction: 0.4,
                shared_fraction: 0.55,
                write_fraction: 0.45,
                stride_run: 8,
                ..base
            },
            AppPreset::Radiosity => WorkloadModel {
                private_bytes_per_thread: 256 * KB,
                shared_bytes: 5 * MB,
                hot_fraction: 0.5,
                shared_fraction: 0.6,
                write_fraction: 0.3,
                mean_gap_cycles: 4,
                stride_run: 8,
                ..base
            },

            // ---- Class 3: working set lives in the L1/L2, almost no
            // sharing; the L3 has little visibility.
            AppPreset::Blackscholes => WorkloadModel {
                private_bytes_per_thread: 128 * KB,
                shared_bytes: MB,
                hot_bytes_per_thread: 24 * KB,
                hot_fraction: 0.92,
                shared_fraction: 0.05,
                write_fraction: 0.2,
                mean_gap_cycles: 5,
                ..base
            },
            AppPreset::Streamcluster => WorkloadModel {
                private_bytes_per_thread: 192 * KB,
                shared_bytes: 2 * MB,
                hot_bytes_per_thread: 32 * KB,
                hot_fraction: 0.9,
                shared_fraction: 0.08,
                write_fraction: 0.15,
                ..base
            },
            AppPreset::Raytrace => WorkloadModel {
                private_bytes_per_thread: 256 * KB,
                shared_bytes: 3 * MB,
                hot_bytes_per_thread: 32 * KB,
                hot_fraction: 0.88,
                shared_fraction: 0.1,
                write_fraction: 0.1,
                mean_gap_cycles: 4,
                ..base
            },
        }
    }
}

impl fmt::Display for AppPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AppPreset {
    type Err = WorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        AppPreset::ALL
            .iter()
            .copied()
            .find(|a| a.name() == lower)
            .ok_or_else(|| WorkloadError::UnknownApplication { name: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_presets_matching_table_5_3() {
        assert_eq!(AppPreset::ALL.len(), 11);
        let mut names: Vec<&str> = AppPreset::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn binning_matches_table_6_1() {
        use AppClass::*;
        assert_eq!(AppPreset::in_class(Class1).len(), 4);
        assert_eq!(AppPreset::in_class(Class2).len(), 4);
        assert_eq!(AppPreset::in_class(Class3).len(), 3);
        assert_eq!(AppPreset::Fft.paper_class(), Class1);
        assert_eq!(AppPreset::Lu.paper_class(), Class2);
        assert_eq!(AppPreset::Blackscholes.paper_class(), Class3);
    }

    #[test]
    fn every_model_validates() {
        for app in AppPreset::ALL {
            let m = app.model();
            m.validate().unwrap_or_else(|e| panic!("{app}: {e}"));
            assert_eq!(m.threads, 16);
            assert_eq!(m.name, app.name());
        }
    }

    #[test]
    fn class1_footprints_exceed_llc_class23_fit() {
        const LLC: u64 = 16 * 1024 * 1024;
        for app in AppPreset::in_class(AppClass::Class1) {
            assert!(
                app.model().footprint_bytes() > LLC,
                "{app} should exceed the L3"
            );
        }
        for app in AppPreset::in_class(AppClass::Class2) {
            assert!(
                app.model().footprint_bytes() <= LLC,
                "{app} should fit in the L3"
            );
        }
        for app in AppPreset::in_class(AppClass::Class3) {
            assert!(
                app.model().footprint_bytes() <= LLC,
                "{app} should fit in the L3"
            );
        }
    }

    #[test]
    fn class3_is_hot_set_dominated_and_unshared() {
        for app in AppPreset::in_class(AppClass::Class3) {
            let m = app.model();
            assert!(m.hot_fraction >= 0.85, "{app}");
            assert!(m.shared_fraction <= 0.15, "{app}");
        }
        for app in AppPreset::in_class(AppClass::Class2) {
            let m = app.model();
            assert!(m.shared_fraction >= 0.5, "{app}");
        }
    }

    #[test]
    fn parse_round_trip() {
        for app in AppPreset::ALL {
            let parsed: AppPreset = app.name().parse().unwrap();
            assert_eq!(parsed, app);
        }
        assert_eq!("FFT".parse::<AppPreset>().unwrap(), AppPreset::Fft);
        assert!("doom".parse::<AppPreset>().is_err());
    }

    #[test]
    fn display_is_name() {
        assert_eq!(AppPreset::Streamcluster.to_string(), "streamcluster");
    }
}
