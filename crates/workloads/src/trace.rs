//! Memory-reference records.

use std::fmt;

use refrint_mem::addr::Addr;

/// Whether a reference reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// Whether this is a store.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

/// One data memory reference emitted by a thread.
///
/// `gap_cycles` is the number of compute (non-memory) cycles the thread
/// spends before issuing this reference; the core model also uses it to
/// account instruction fetches and core dynamic energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Compute cycles preceding this reference.
    pub gap_cycles: u64,
    /// The byte address referenced.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemRef {
    /// Creates a reference.
    #[must_use]
    pub const fn new(gap_cycles: u64, addr: Addr, kind: AccessKind) -> Self {
        MemRef {
            gap_cycles,
            addr,
            kind,
        }
    }

    /// Whether this reference is a store.
    #[must_use]
    pub const fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} {} {}", self.gap_cycles, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "R");
        assert_eq!(AccessKind::Write.to_string(), "W");
    }

    #[test]
    fn memref_display_and_accessors() {
        let r = MemRef::new(3, Addr::new(0x40), AccessKind::Write);
        assert!(r.is_write());
        assert_eq!(r.gap_cycles, 3);
        assert_eq!(r.to_string(), "+3 W 0x40");
        let r = MemRef::new(0, Addr::new(0x80), AccessKind::Read);
        assert!(!r.is_write());
    }
}
