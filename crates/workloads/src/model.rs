//! Tunable parameters of a synthetic multi-threaded application.

use std::fmt;

use crate::error::WorkloadError;

/// The parameters that place a synthetic application on the paper's two axes
/// (footprint vs. LLC size, visibility at the LLC) and fix its intensity.
///
/// Every thread owns a *private region* and all threads additionally share a
/// *shared region*; the generator draws each reference from the thread's hot
/// set (small, L1/L2-resident), its private cold region, or the shared
/// region, with the probabilities below. Large cold regions create long reuse
/// distances (Class 1); high sharing creates L3-visible state transitions
/// (Class 2); hot-set-dominated, unshared streams create low visibility
/// (Class 3).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadModel {
    /// Human-readable application name (e.g. `fft`).
    pub name: String,
    /// Number of threads (the paper uses 16).
    pub threads: usize,
    /// Data references emitted per thread.
    pub refs_per_thread: u64,
    /// Bytes of cold private data per thread.
    pub private_bytes_per_thread: u64,
    /// Bytes of shared data (one region for the whole application).
    pub shared_bytes: u64,
    /// Bytes of each thread's hot set (kept small enough to live in L1/L2).
    pub hot_bytes_per_thread: u64,
    /// Probability that a reference targets the hot set.
    pub hot_fraction: f64,
    /// Probability that a (non-hot) reference targets the shared region.
    pub shared_fraction: f64,
    /// Probability that a reference is a store.
    pub write_fraction: f64,
    /// Mean number of compute cycles between data references.
    pub mean_gap_cycles: u64,
    /// Spatial-locality run length: consecutive references walk sequential
    /// lines within the chosen region for this many references on average.
    pub stride_run: u64,
}

impl WorkloadModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidModel`] if any probability is outside
    /// `[0, 1]`, any size/count is zero, or the hot set is larger than the
    /// private region.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let fail = |reason: String| Err(WorkloadError::InvalidModel { reason });
        if self.threads == 0 {
            return fail("threads must be non-zero".into());
        }
        if self.refs_per_thread == 0 {
            return fail("refs_per_thread must be non-zero".into());
        }
        if self.private_bytes_per_thread < 64
            || self.shared_bytes < 64
            || self.hot_bytes_per_thread < 64
        {
            return fail("regions must be at least one cache line".into());
        }
        for (name, p) in [
            ("hot_fraction", self.hot_fraction),
            ("shared_fraction", self.shared_fraction),
            ("write_fraction", self.write_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return fail(format!("{name} = {p} is not a probability"));
            }
        }
        if self.mean_gap_cycles == 0 {
            return fail("mean_gap_cycles must be non-zero".into());
        }
        if self.stride_run == 0 {
            return fail("stride_run must be non-zero".into());
        }
        Ok(())
    }

    /// Total data footprint of the application in bytes
    /// (private regions + shared region; hot sets are carved out of the
    /// private regions).
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.private_bytes_per_thread * self.threads as u64 + self.shared_bytes
    }

    /// The largest compute gap the generator will ever emit
    /// (the geometric draw is truncated at four times the mean).
    #[must_use]
    pub fn max_gap_cycles(&self) -> u64 {
        self.mean_gap_cycles * 4
    }

    /// Approximate number of cycles one thread needs to issue all of its
    /// references (compute gaps plus one cycle per reference), used to size
    /// simulations.
    #[must_use]
    pub fn approx_cycles_per_thread(&self) -> u64 {
        self.refs_per_thread * (self.mean_gap_cycles + 1)
    }

    /// Scales the reference count per thread (used by quick tests and
    /// benches to shrink runs without changing the access pattern).
    #[must_use]
    pub fn with_refs_per_thread(mut self, refs: u64) -> Self {
        self.refs_per_thread = refs;
        self
    }

    /// Overrides the thread count (used by small-configuration tests).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl fmt::Display for WorkloadModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} threads, {:.1} MB footprint, {:.0}% writes)",
            self.name,
            self.threads,
            self.footprint_bytes() as f64 / (1024.0 * 1024.0),
            self.write_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_model() -> WorkloadModel {
        WorkloadModel {
            name: "test".into(),
            threads: 16,
            refs_per_thread: 1000,
            private_bytes_per_thread: 1024 * 1024,
            shared_bytes: 4 * 1024 * 1024,
            hot_bytes_per_thread: 16 * 1024,
            hot_fraction: 0.6,
            shared_fraction: 0.3,
            write_fraction: 0.3,
            mean_gap_cycles: 3,
            stride_run: 4,
        }
    }

    #[test]
    fn valid_model_passes() {
        assert!(valid_model().validate().is_ok());
    }

    #[test]
    fn footprint_sums_private_and_shared() {
        let m = valid_model();
        assert_eq!(m.footprint_bytes(), 16 * 1024 * 1024 + 4 * 1024 * 1024);
    }

    #[test]
    fn invalid_probabilities_rejected() {
        let mut m = valid_model();
        m.write_fraction = 1.5;
        assert!(m.validate().is_err());
        let mut m = valid_model();
        m.hot_fraction = -0.1;
        assert!(m.validate().is_err());
        let mut m = valid_model();
        m.shared_fraction = f64::NAN;
        assert!(m.validate().is_err());
    }

    #[test]
    fn zero_sizes_rejected() {
        let mut m = valid_model();
        m.threads = 0;
        assert!(m.validate().is_err());
        let mut m = valid_model();
        m.refs_per_thread = 0;
        assert!(m.validate().is_err());
        let mut m = valid_model();
        m.hot_bytes_per_thread = 0;
        assert!(m.validate().is_err());
        let mut m = valid_model();
        m.mean_gap_cycles = 0;
        assert!(m.validate().is_err());
        let mut m = valid_model();
        m.stride_run = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn builders_override_fields() {
        let m = valid_model().with_refs_per_thread(5).with_threads(4);
        assert_eq!(m.refs_per_thread, 5);
        assert_eq!(m.threads, 4);
        assert!(m.approx_cycles_per_thread() >= 5);
        assert_eq!(m.max_gap_cycles(), 12);
    }

    #[test]
    fn display_mentions_name_and_footprint() {
        let s = valid_model().to_string();
        assert!(s.contains("test"));
        assert!(s.contains("MB"));
    }
}
