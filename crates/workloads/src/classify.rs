//! Footprint / visibility measurement and Class 1/2/3 binning (Table 6.1).
//!
//! The paper's Figure 3.1 characterises applications along two axes as seen
//! from the last-level cache: footprint relative to the LLC, and how much of
//! the upper-level activity is visible at the LLC. This module measures both
//! directly from a generated reference stream (no simulator required):
//!
//! * **footprint** — distinct lines touched × line size;
//! * **visibility** — the fraction of references that the LLC would plausibly
//!   observe, estimated from sharing (lines touched by more than one thread)
//!   and from the miss traffic a per-thread hot-set filter would let through.

use std::collections::HashMap;
use std::fmt;

use crate::generator::ThreadStream;
use crate::model::WorkloadModel;

const LINE: u64 = 64;

/// The paper's three application classes (Figure 3.1 / Table 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppClass {
    /// Large footprint, high visibility: WB(n,m) with small (n,m) works best.
    Class1,
    /// Small footprint, high visibility: WB(n,m) with large (n,m) or Valid.
    Class2,
    /// Small footprint, low visibility: Valid works best.
    Class3,
}

impl AppClass {
    /// All classes in order.
    pub const ALL: [AppClass; 3] = [AppClass::Class1, AppClass::Class2, AppClass::Class3];

    /// A short label (`class1`, `class2`, `class3`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            AppClass::Class1 => "class1",
            AppClass::Class2 => "class2",
            AppClass::Class3 => "class3",
        }
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The measured characteristics of a workload and the class they imply.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassificationReport {
    /// The workload's name.
    pub name: String,
    /// Distinct bytes touched.
    pub footprint_bytes: u64,
    /// LLC capacity used as the footprint threshold.
    pub llc_bytes: u64,
    /// Fraction of references to lines touched by more than one thread.
    pub shared_ref_fraction: f64,
    /// Fraction of references that escape a per-thread hot-set filter
    /// (a proxy for traffic the L2 would let through to the L3).
    pub escape_fraction: f64,
    /// The resulting class.
    pub class: AppClass,
}

impl ClassificationReport {
    /// Footprint relative to the LLC (>
    /// 1 means the application does not fit).
    #[must_use]
    pub fn footprint_ratio(&self) -> f64 {
        self.footprint_bytes as f64 / self.llc_bytes as f64
    }

    /// The visibility metric used for binning: the larger of sharing and
    /// escape traffic (either one keeps the LLC informed).
    #[must_use]
    pub fn visibility(&self) -> f64 {
        self.shared_ref_fraction.max(self.escape_fraction)
    }
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} footprint {:>7.1} KB ({:>5.2}x LLC)  shared {:>5.1}%  escape {:>5.1}%  -> {}",
            self.name,
            self.footprint_bytes as f64 / 1024.0,
            self.footprint_ratio(),
            self.shared_ref_fraction * 100.0,
            self.escape_fraction * 100.0,
            self.class
        )
    }
}

/// Thresholds used to turn measurements into a class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifierConfig {
    /// LLC capacity in bytes (16 MB in the paper's configuration).
    pub llc_bytes: u64,
    /// Footprint ratio above which an application is "large footprint".
    pub large_footprint_ratio: f64,
    /// Visibility above which an application is "high visibility".
    pub high_visibility: f64,
    /// Sample of references per thread used for measurement.
    pub sample_refs_per_thread: u64,
    /// Seed for the sampled streams.
    pub seed: u64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            llc_bytes: 16 * 1024 * 1024,
            large_footprint_ratio: 1.0,
            high_visibility: 0.20,
            sample_refs_per_thread: 20_000,
            seed: 0xC1A5_51F1,
        }
    }
}

/// Measures `model` and assigns it a class.
#[must_use]
pub fn classify(model: &WorkloadModel, config: &ClassifierConfig) -> ClassificationReport {
    let sample_model = model.clone().with_refs_per_thread(
        config
            .sample_refs_per_thread
            .min(model.refs_per_thread.max(1)),
    );

    // line -> bitmask of threads that touched it.
    let mut line_threads: HashMap<u64, u64> = HashMap::new();
    // Per-thread most-recently-used filter approximating the private L1+L2.
    let hot_lines_capacity = (256 * 1024 / LINE) as usize;
    let mut total_refs = 0u64;
    let mut escapes = 0u64;

    let mut per_thread_refs: Vec<Vec<u64>> = Vec::new();
    for t in 0..sample_model.threads {
        let lines: Vec<u64> = ThreadStream::new(&sample_model, t, config.seed)
            .map(|r| r.addr.line(LINE).raw())
            .collect();
        per_thread_refs.push(lines);
    }

    for (t, lines) in per_thread_refs.iter().enumerate() {
        let mut recent: HashMap<u64, u64> = HashMap::new();
        for (i, &line) in lines.iter().enumerate() {
            *line_threads.entry(line).or_insert(0) |= 1 << (t as u64 % 64);
            total_refs += 1;
            // Escape if the line was not seen within the last
            // `hot_lines_capacity` distinct references of this thread.
            let escaped = match recent.get(&line) {
                Some(&last) => (i as u64 - last) > hot_lines_capacity as u64,
                None => true,
            };
            if escaped {
                escapes += 1;
            }
            recent.insert(line, i as u64);
        }
    }

    let footprint_bytes = line_threads.len() as u64 * LINE;
    let shared_refs: u64 = per_thread_refs
        .iter()
        .flat_map(|lines| lines.iter())
        .filter(|line| line_threads.get(line).map_or(0, |m| m.count_ones()) > 1)
        .count() as u64;
    let shared_ref_fraction = if total_refs > 0 {
        shared_refs as f64 / total_refs as f64
    } else {
        0.0
    };
    let escape_fraction = if total_refs > 0 {
        escapes as f64 / total_refs as f64
    } else {
        0.0
    };

    // Scale the sampled footprint up to the full run length: the sample only
    // visits part of the cold regions, but cold-region size is what decides
    // the class, so use the model's declared footprint when it is larger.
    let footprint_bytes = footprint_bytes.max(if model.footprint_bytes() > config.llc_bytes {
        model.footprint_bytes()
    } else {
        footprint_bytes
    });

    let footprint_ratio = footprint_bytes as f64 / config.llc_bytes as f64;
    let visibility = shared_ref_fraction.max(escape_fraction);
    let class = if footprint_ratio > config.large_footprint_ratio {
        AppClass::Class1
    } else if visibility >= config.high_visibility {
        AppClass::Class2
    } else {
        AppClass::Class3
    };

    ClassificationReport {
        name: model.name.clone(),
        footprint_bytes,
        llc_bytes: config.llc_bytes,
        shared_ref_fraction,
        escape_fraction,
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppPreset;

    #[test]
    fn class_labels() {
        assert_eq!(AppClass::Class1.label(), "class1");
        assert_eq!(AppClass::Class3.to_string(), "class3");
        assert_eq!(AppClass::ALL.len(), 3);
    }

    #[test]
    fn classification_matches_paper_binning() {
        // This is the reproduction of Table 6.1: every preset must land in
        // the class the paper reports.
        let config = ClassifierConfig {
            sample_refs_per_thread: 8_000,
            ..ClassifierConfig::default()
        };
        for app in AppPreset::ALL {
            let report = classify(&app.model(), &config);
            assert_eq!(report.class, app.paper_class(), "{app}: {report}");
        }
    }

    #[test]
    fn report_metrics_are_sane() {
        let config = ClassifierConfig {
            sample_refs_per_thread: 4_000,
            ..ClassifierConfig::default()
        };
        let report = classify(&AppPreset::Fft.model(), &config);
        assert!(report.footprint_bytes > 0);
        assert!(report.footprint_ratio() > 1.0);
        assert!((0.0..=1.0).contains(&report.shared_ref_fraction));
        assert!((0.0..=1.0).contains(&report.escape_fraction));
        assert!(report.visibility() >= report.shared_ref_fraction);
        let text = report.to_string();
        assert!(text.contains("fft"));
        assert!(text.contains("class1"));
    }

    #[test]
    fn class3_has_lower_visibility_than_class2() {
        let config = ClassifierConfig {
            sample_refs_per_thread: 6_000,
            ..ClassifierConfig::default()
        };
        let class2_vis: f64 = AppPreset::in_class(AppClass::Class2)
            .iter()
            .map(|a| classify(&a.model(), &config).visibility())
            .sum::<f64>()
            / 4.0;
        let class3_vis: f64 = AppPreset::in_class(AppClass::Class3)
            .iter()
            .map(|a| classify(&a.model(), &config).visibility())
            .sum::<f64>()
            / 3.0;
        assert!(
            class3_vis < class2_vis,
            "class3 {class3_vis} should be less visible than class2 {class2_vis}"
        );
    }
}
