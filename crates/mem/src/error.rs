//! Error types for the cache substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the cache substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// A cache geometry was internally inconsistent.
    InvalidGeometry {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An operation referenced a line that is not resident.
    LineNotResident {
        /// The raw line address.
        line_addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidGeometry { reason } => {
                write!(f, "invalid cache geometry: {reason}")
            }
            MemError::LineNotResident { line_addr } => {
                write!(f, "line {line_addr:#x} is not resident in the cache")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = MemError::InvalidGeometry {
            reason: "bad".to_owned(),
        };
        assert!(e.to_string().contains("bad"));
        let e = MemError::LineNotResident { line_addr: 0xff };
        assert!(e.to_string().contains("0xff"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<MemError>();
    }
}
