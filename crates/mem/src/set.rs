//! A single set of a set-associative cache.

use refrint_engine::time::Cycle;

use crate::addr::LineAddr;
use crate::line::{CacheLine, MesiState};
use crate::replacement::{ReplacementKind, ReplacementState};

/// One set: a fixed number of ways plus replacement state.
///
/// Ways are stored as a flat `Vec<CacheLine>` (no `Option` boxing): an
/// empty way is simply a line in [`MesiState::Invalid`]. This keeps the
/// per-access tag search a dense linear scan and lets `pick_victim` run
/// without any per-call allocation — both on the simulator's innermost
/// loop.
#[derive(Debug, Clone)]
pub struct CacheSet {
    ways: Vec<CacheLine>,
    replacement: ReplacementState,
}

/// An empty way: invalid, address zero (never matched because `find`
/// requires validity).
fn empty_way() -> CacheLine {
    CacheLine {
        addr: LineAddr::new(0),
        state: MesiState::Invalid,
        meta: crate::line::LineMeta::default(),
    }
}

impl CacheSet {
    /// Creates an empty set with `ways` ways.
    #[must_use]
    pub fn new(ways: u8, replacement: ReplacementKind, seed: u64) -> Self {
        CacheSet {
            ways: vec![empty_way(); ways as usize],
            replacement: ReplacementState::new(replacement, ways, seed),
        }
    }

    /// Associativity of this set.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways.len()
    }

    /// Finds the way holding `addr`, if present and valid.
    #[must_use]
    pub fn find(&self, addr: LineAddr) -> Option<usize> {
        self.ways
            .iter()
            .position(|line| line.addr == addr && line.is_valid())
    }

    /// Immutable access to the (valid) line in `way`.
    #[must_use]
    pub fn line(&self, way: usize) -> Option<&CacheLine> {
        self.ways.get(way).filter(|l| l.is_valid())
    }

    /// Mutable access to the (valid) line in `way`.
    pub fn line_mut(&mut self, way: usize) -> Option<&mut CacheLine> {
        self.ways.get_mut(way).filter(|l| l.is_valid())
    }

    /// Records an access to `way` for replacement purposes.
    pub fn touch_way(&mut self, way: usize) {
        self.replacement.on_access(way as u8);
    }

    /// Picks a victim way for a fill, preferring invalid ways (lowest
    /// numbered first, matching [`ReplacementState::victim`]).
    pub fn pick_victim(&mut self) -> usize {
        if let Some(free) = self.ways.iter().position(|l| !l.is_valid()) {
            return free;
        }
        usize::from(self.replacement.victim_all_valid())
    }

    /// Installs `line` into `way`, returning whatever valid line was evicted.
    pub fn install(&mut self, way: usize, line: CacheLine) -> Option<CacheLine> {
        let previous = self.ways[way];
        self.ways[way] = line;
        self.replacement.on_access(way as u8);
        previous.is_valid().then_some(previous)
    }

    /// Invalidates the line holding `addr`, returning it if it was present.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let way = self.find(addr)?;
        let line = self.ways[way];
        self.ways[way].invalidate();
        Some(line)
    }

    /// Iterates over the valid lines in this set.
    pub fn iter_valid(&self) -> impl Iterator<Item = &CacheLine> {
        self.ways.iter().filter(|l| l.is_valid())
    }

    /// Iterates mutably over the valid lines in this set.
    pub fn iter_valid_mut(&mut self) -> impl Iterator<Item = &mut CacheLine> {
        self.ways.iter_mut().filter(|l| l.is_valid())
    }

    /// Number of valid lines in this set.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.iter_valid().count()
    }

    /// Number of valid dirty lines in this set.
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.iter_valid().filter(|l| l.is_dirty()).count()
    }
}

/// Convenience constructor used by tests across the workspace.
#[must_use]
pub fn line_in(addr: u64, state: MesiState, at: u64) -> CacheLine {
    CacheLine::new(LineAddr::new(addr), state, Cycle::new(at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set4() -> CacheSet {
        CacheSet::new(4, ReplacementKind::Lru, 0)
    }

    #[test]
    fn find_and_install() {
        let mut s = set4();
        assert_eq!(s.find(LineAddr::new(1)), None);
        let victim_way = s.pick_victim();
        let evicted = s.install(victim_way, line_in(1, MesiState::Exclusive, 0));
        assert!(evicted.is_none());
        assert_eq!(s.find(LineAddr::new(1)), Some(victim_way));
        assert_eq!(s.occupancy(), 1);
    }

    #[test]
    fn fills_prefer_invalid_ways_then_evict_lru() {
        let mut s = set4();
        for i in 0..4u64 {
            let way = s.pick_victim();
            assert!(s.install(way, line_in(i, MesiState::Shared, i)).is_none());
        }
        assert_eq!(s.occupancy(), 4);
        // Next fill must evict line 0 (the LRU).
        let way = s.pick_victim();
        let evicted = s.install(way, line_in(100, MesiState::Shared, 10));
        assert_eq!(evicted.unwrap().addr, LineAddr::new(0));
        assert_eq!(s.occupancy(), 4);
    }

    #[test]
    fn touch_changes_lru_order() {
        let mut s = set4();
        for i in 0..4u64 {
            let way = s.pick_victim();
            s.install(way, line_in(i, MesiState::Shared, i));
        }
        // Touch line 0 so line 1 becomes LRU.
        let way0 = s.find(LineAddr::new(0)).unwrap();
        s.touch_way(way0);
        let way = s.pick_victim();
        let evicted = s.install(way, line_in(100, MesiState::Shared, 10)).unwrap();
        assert_eq!(evicted.addr, LineAddr::new(1));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut s = set4();
        let way = s.pick_victim();
        s.install(way, line_in(5, MesiState::Modified, 0));
        assert_eq!(s.dirty_count(), 1);
        let removed = s.invalidate(LineAddr::new(5)).unwrap();
        assert!(removed.is_dirty());
        assert_eq!(s.find(LineAddr::new(5)), None);
        assert_eq!(s.occupancy(), 0);
        assert!(s.invalidate(LineAddr::new(5)).is_none());
    }

    #[test]
    fn line_accessors() {
        let mut s = set4();
        let way = s.pick_victim();
        s.install(way, line_in(9, MesiState::Exclusive, 3));
        assert_eq!(s.line(way).unwrap().addr, LineAddr::new(9));
        s.line_mut(way).unwrap().write(Cycle::new(7));
        assert!(s.line(way).unwrap().is_dirty());
        assert!(s.line(99).is_none());
    }

    #[test]
    fn iter_valid_mut_allows_bulk_updates() {
        let mut s = set4();
        for i in 0..3u64 {
            let way = s.pick_victim();
            s.install(way, line_in(i, MesiState::Exclusive, 0));
        }
        for l in s.iter_valid_mut() {
            l.write(Cycle::new(9));
        }
        assert_eq!(s.dirty_count(), 3);
    }
}
