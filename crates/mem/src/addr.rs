//! Physical addresses, line addresses and bank mapping.
//!
//! The paper's L3 is shared, split into 16 banks, with addresses statically
//! mapped to banks (Chapter 5). We interleave banks on line granularity,
//! which is the conventional static mapping for banked LLCs.

use std::fmt;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw byte address.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache-line address containing this byte, for lines of
    /// `line_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[must_use]
    pub fn line(self, line_size: u64) -> LineAddr {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 >> line_size.trailing_zeros())
    }

    /// Offset of this byte within its line.
    #[must_use]
    pub fn offset_in_line(self, line_size: u64) -> u64 {
        self.0 & (line_size - 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line address: the byte address divided by the line size.
///
/// All caches in the paper share a 64-byte line size, so a `LineAddr` is
/// meaningful across the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from its raw line number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// The raw line number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    #[must_use]
    pub fn base_addr(self, line_size: u64) -> Addr {
        Addr(self.0 * line_size)
    }

    /// The set index for a cache with `num_sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two.
    #[must_use]
    pub fn set_index(self, num_sets: u64) -> u64 {
        assert!(
            num_sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        self.0 & (num_sets - 1)
    }

    /// The tag for a cache with `num_sets` sets.
    #[must_use]
    pub fn tag(self, num_sets: u64) -> u64 {
        self.0 >> num_sets.trailing_zeros()
    }

    /// The shared-L3 bank this line is statically mapped to, for `num_banks`
    /// banks interleaved at line granularity.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero.
    #[must_use]
    pub fn bank(self, num_banks: usize) -> usize {
        assert!(num_banks > 0, "bank count must be non-zero");
        (self.0 % num_banks as u64) as usize
    }

    /// The line-within-bank index after bank interleaving, used for set
    /// selection inside a single L3 bank.
    #[must_use]
    pub fn bank_local(self, num_banks: usize) -> LineAddr {
        assert!(num_banks > 0, "bank count must be non-zero");
        LineAddr(self.0 / num_banks as u64)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_to_line_round_trip() {
        let a = Addr::new(0x1234_5678);
        let line = a.line(64);
        assert_eq!(line.raw(), 0x1234_5678 / 64);
        assert_eq!(a.offset_in_line(64), 0x1234_5678 % 64);
        let base = line.base_addr(64);
        assert!(base.raw() <= a.raw() && a.raw() < base.raw() + 64);
    }

    #[test]
    fn set_index_and_tag_partition_line_address() {
        let line = LineAddr::new(0xABCDE);
        let sets = 512;
        let idx = line.set_index(sets);
        let tag = line.tag(sets);
        assert_eq!(tag * sets + idx, line.raw());
    }

    #[test]
    fn bank_mapping_is_line_interleaved() {
        // Consecutive lines go to consecutive banks.
        for i in 0..64u64 {
            assert_eq!(LineAddr::new(i).bank(16), (i % 16) as usize);
        }
        // Bank-local addresses within a bank are dense.
        assert_eq!(LineAddr::new(16).bank_local(16), LineAddr::new(1));
        assert_eq!(LineAddr::new(33).bank_local(16), LineAddr::new(2));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_panics() {
        let _ = Addr::new(100).line(48);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _ = LineAddr::new(100).set_index(3);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(LineAddr::new(16).to_string(), "line 0x10");
    }

    #[test]
    fn conversions_from_u64() {
        assert_eq!(Addr::from(7u64), Addr::new(7));
        assert_eq!(LineAddr::from(7u64), LineAddr::new(7));
    }
}
