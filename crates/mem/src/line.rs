//! Per-line coherence state and residency metadata.
//!
//! The refresh policies of the paper (Table 3.1) decide what to do with a
//! line purely from its *state* (valid / dirty) and a small per-line `Count`
//! maintained alongside the tag bits (Section 4.2). [`LineMeta`] carries the
//! timestamps and counters the eDRAM crate needs to evaluate those policies
//! lazily.

use std::fmt;

use refrint_engine::time::Cycle;

use crate::addr::LineAddr;

/// Coherence state of a line, as tracked by the owning cache.
///
/// The directory protocol of the paper is MESI with the directory kept at
/// the (inclusive) L3. The update-based Dragon protocol reuses the same
/// states plus [`MesiState::SharedModified`] (Dragon's `Sm`): dirty like
/// Modified, but replicated, so writes still need a coherence transaction
/// to broadcast the update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MesiState {
    /// Line not present / invalidated.
    #[default]
    Invalid,
    /// Present, clean, and potentially replicated in other caches.
    Shared,
    /// Present, clean, and guaranteed not replicated elsewhere.
    Exclusive,
    /// Present, dirty, sole valid copy on chip.
    Modified,
    /// Present, dirty, *and* replicated (Dragon `Sm`): this cache is
    /// responsible for the write-back, but other caches hold clean copies,
    /// so writes must broadcast updates rather than proceed silently.
    SharedModified,
}

impl MesiState {
    /// Whether the line holds valid data.
    #[must_use]
    pub const fn is_valid(self) -> bool {
        !matches!(self, MesiState::Invalid)
    }

    /// Whether the line is dirty with respect to the next level.
    #[must_use]
    pub const fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::SharedModified)
    }

    /// Whether the cache holding this line may service a write without a
    /// coherence transaction.
    #[must_use]
    pub const fn can_write_silently(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// The state after a write-back that keeps the data ("Valid Clean" in the
    /// paper's WB(n,m) description).
    #[must_use]
    pub const fn after_writeback(self) -> MesiState {
        match self {
            MesiState::Modified | MesiState::SharedModified => MesiState::Shared,
            other => other,
        }
    }

    /// A single-character mnemonic (`M`, `E`, `S`, `I`, or `m` for
    /// [`MesiState::SharedModified`]).
    #[must_use]
    pub const fn mnemonic(self) -> char {
        match self {
            MesiState::Invalid => 'I',
            MesiState::Shared => 'S',
            MesiState::Exclusive => 'E',
            MesiState::Modified => 'M',
            MesiState::SharedModified => 'm',
        }
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// Residency metadata consumed by the refresh policies.
///
/// `last_touch` is the cycle of the most recent *normal* (non-refresh) access
/// — exactly the event that resets the paper's per-line `Count` and recharges
/// the Sentry bit. `dirty_since` records when the line last became dirty, so
/// end-of-simulation write-back accounting can be exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineMeta {
    /// Cycle of the last normal access (fill, read hit, or write hit).
    pub last_touch: Cycle,
    /// Cycle at which the line was filled into this cache.
    pub fill_time: Cycle,
    /// Cycle at which the line most recently transitioned to dirty, if dirty.
    pub dirty_since: Option<Cycle>,
    /// Number of refreshes this line has received since its last touch
    /// (maintained by the lazy refresh accounting when it settles a line).
    pub refreshes_since_touch: u64,
    /// Total number of times this line has been refreshed while resident.
    pub total_refreshes: u64,
}

impl LineMeta {
    /// Metadata for a line filled (and therefore touched) at `now`.
    #[must_use]
    pub fn filled_at(now: Cycle) -> Self {
        LineMeta {
            last_touch: now,
            fill_time: now,
            dirty_since: None,
            refreshes_since_touch: 0,
            total_refreshes: 0,
        }
    }

    /// Records a normal access at `now`, recharging the implicit sentry bit
    /// and resetting the policy count.
    pub fn touch(&mut self, now: Cycle) {
        self.last_touch = now;
        self.refreshes_since_touch = 0;
    }

    /// Records that the line became dirty at `now` (no-op if already dirty).
    pub fn mark_dirty(&mut self, now: Cycle) {
        if self.dirty_since.is_none() {
            self.dirty_since = Some(now);
        }
    }

    /// Records that the line was cleaned (written back) at some point.
    pub fn mark_clean(&mut self) {
        self.dirty_since = None;
    }

    /// Records `n` refreshes applied to the line.
    pub fn add_refreshes(&mut self, n: u64) {
        self.refreshes_since_touch += n;
        self.total_refreshes += n;
    }
}

/// A cache line: identity (line address), coherence state, and residency
/// metadata. Data contents are not simulated — only state and timing matter
/// for energy and refresh behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// The line address stored in this way.
    pub addr: LineAddr,
    /// The MESI state of the line.
    pub state: MesiState,
    /// Residency metadata for refresh policies.
    pub meta: LineMeta,
}

impl CacheLine {
    /// Creates a line filled at `now` in the given state.
    #[must_use]
    pub fn new(addr: LineAddr, state: MesiState, now: Cycle) -> Self {
        let mut meta = LineMeta::filled_at(now);
        if state.is_dirty() {
            meta.mark_dirty(now);
        }
        CacheLine { addr, state, meta }
    }

    /// Whether the line holds valid data.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.state.is_valid()
    }

    /// Whether the line is dirty.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        self.state.is_dirty()
    }

    /// Applies a read access at `now`.
    pub fn read(&mut self, now: Cycle) {
        debug_assert!(self.is_valid(), "read of an invalid line");
        self.meta.touch(now);
    }

    /// Applies a write access at `now`, upgrading the line to Modified. A
    /// [`MesiState::SharedModified`] line stays `Sm` — it is already dirty,
    /// and only a coherence transaction may promote it (other caches still
    /// hold copies).
    pub fn write(&mut self, now: Cycle) {
        debug_assert!(self.is_valid(), "write of an invalid line");
        if self.state != MesiState::SharedModified {
            self.state = MesiState::Modified;
        }
        self.meta.touch(now);
        self.meta.mark_dirty(now);
    }

    /// Applies a write-back at `now`: the line stays valid but becomes clean
    /// (the paper's "Valid Clean" state after WB(n,·) expires).
    pub fn write_back(&mut self) {
        self.state = self.state.after_writeback();
        self.meta.mark_clean();
    }

    /// Downgrades the line to `Shared` (e.g. a remote read of a Modified
    /// line after the data has been forwarded/written back).
    pub fn downgrade_to_shared(&mut self) {
        self.state = MesiState::Shared;
        self.meta.mark_clean();
    }

    /// Invalidates the line.
    pub fn invalidate(&mut self) {
        self.state = MesiState::Invalid;
        self.meta.mark_clean();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesi_predicates() {
        assert!(!MesiState::Invalid.is_valid());
        assert!(MesiState::Shared.is_valid());
        assert!(MesiState::Exclusive.is_valid());
        assert!(MesiState::Modified.is_valid());
        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
        assert!(MesiState::Modified.can_write_silently());
        assert!(MesiState::Exclusive.can_write_silently());
        assert!(!MesiState::Shared.can_write_silently());
        assert_eq!(MesiState::default(), MesiState::Invalid);
        // Dragon's Sm: dirty, but replicated, so never silently writable.
        assert!(MesiState::SharedModified.is_valid());
        assert!(MesiState::SharedModified.is_dirty());
        assert!(!MesiState::SharedModified.can_write_silently());
    }

    #[test]
    fn shared_modified_lifecycle() {
        assert_eq!(
            MesiState::SharedModified.after_writeback(),
            MesiState::Shared
        );
        assert_eq!(MesiState::SharedModified.mnemonic(), 'm');
        // write() must not promote Sm to M behind the protocol's back.
        let mut line = CacheLine::new(LineAddr::new(2), MesiState::SharedModified, Cycle::new(3));
        assert_eq!(line.meta.dirty_since, Some(Cycle::new(3)));
        line.write(Cycle::new(9));
        assert_eq!(line.state, MesiState::SharedModified);
        line.write_back();
        assert_eq!(line.state, MesiState::Shared);
        assert!(!line.is_dirty());
    }

    #[test]
    fn writeback_transition() {
        assert_eq!(MesiState::Modified.after_writeback(), MesiState::Shared);
        assert_eq!(MesiState::Shared.after_writeback(), MesiState::Shared);
        assert_eq!(MesiState::Invalid.after_writeback(), MesiState::Invalid);
    }

    #[test]
    fn mnemonics_and_display() {
        assert_eq!(MesiState::Modified.to_string(), "M");
        assert_eq!(MesiState::Exclusive.mnemonic(), 'E');
        assert_eq!(MesiState::Shared.mnemonic(), 'S');
        assert_eq!(MesiState::Invalid.mnemonic(), 'I');
    }

    #[test]
    fn meta_touch_resets_refresh_count() {
        let mut m = LineMeta::filled_at(Cycle::new(10));
        m.add_refreshes(5);
        assert_eq!(m.refreshes_since_touch, 5);
        assert_eq!(m.total_refreshes, 5);
        m.touch(Cycle::new(100));
        assert_eq!(m.refreshes_since_touch, 0);
        assert_eq!(m.total_refreshes, 5);
        assert_eq!(m.last_touch, Cycle::new(100));
        assert_eq!(m.fill_time, Cycle::new(10));
    }

    #[test]
    fn dirty_tracking() {
        let mut m = LineMeta::filled_at(Cycle::ZERO);
        assert_eq!(m.dirty_since, None);
        m.mark_dirty(Cycle::new(5));
        m.mark_dirty(Cycle::new(50));
        assert_eq!(m.dirty_since, Some(Cycle::new(5)), "first dirtying wins");
        m.mark_clean();
        assert_eq!(m.dirty_since, None);
    }

    #[test]
    fn line_read_write_lifecycle() {
        let mut line = CacheLine::new(LineAddr::new(0x42), MesiState::Exclusive, Cycle::new(1));
        assert!(line.is_valid());
        assert!(!line.is_dirty());

        line.write(Cycle::new(10));
        assert_eq!(line.state, MesiState::Modified);
        assert!(line.is_dirty());
        assert_eq!(line.meta.dirty_since, Some(Cycle::new(10)));

        line.write_back();
        assert_eq!(line.state, MesiState::Shared);
        assert!(!line.is_dirty());

        line.read(Cycle::new(20));
        assert_eq!(line.meta.last_touch, Cycle::new(20));

        line.invalidate();
        assert!(!line.is_valid());
    }

    #[test]
    fn new_modified_line_records_dirty_since_fill() {
        let line = CacheLine::new(LineAddr::new(1), MesiState::Modified, Cycle::new(7));
        assert_eq!(line.meta.dirty_since, Some(Cycle::new(7)));
    }

    #[test]
    fn downgrade_cleans_line() {
        let mut line = CacheLine::new(LineAddr::new(1), MesiState::Modified, Cycle::new(7));
        line.downgrade_to_shared();
        assert_eq!(line.state, MesiState::Shared);
        assert_eq!(line.meta.dirty_since, None);
    }
}
