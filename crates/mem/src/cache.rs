//! A set-associative cache array.
//!
//! `Cache` models tags, state and residency metadata only — data contents do
//! not affect refresh behaviour or energy, so they are not simulated. The CMP
//! simulator composes these arrays into the private L1/L2 and the banked,
//! shared L3 of the paper's configuration.

use refrint_engine::stats::StatRegistry;
use refrint_engine::time::Cycle;

use crate::addr::LineAddr;
use crate::config::CacheGeometry;
use crate::line::{CacheLine, MesiState};
use crate::replacement::ReplacementKind;
use crate::set::CacheSet;

/// The outcome of looking up a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The set the line maps to.
    pub set_index: u64,
    /// The way the line was found in.
    pub way: usize,
    /// The line's MESI state at the time of lookup.
    pub state: MesiState,
}

/// A valid line displaced by a fill, which the caller must handle
/// (write back if dirty, and maintain inclusion in upper levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line (state and metadata at eviction time).
    pub line: CacheLine,
}

impl EvictedLine {
    /// Whether the evicted line must be written back to the next level.
    #[must_use]
    pub fn needs_writeback(&self) -> bool {
        self.line.is_dirty()
    }
}

/// Fixed-field access counters, kept as plain integers so the per-access
/// hot path never touches a map. [`Cache::stats`] materializes them into a
/// [`StatRegistry`] (only counters that have fired, matching the shape a
/// registry built incrementally would have had).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CacheCounters {
    hits: u64,
    misses: u64,
    reads: u64,
    writes: u64,
    fills: u64,
    evictions: u64,
    dirty_evictions: u64,
    invalidations: u64,
    flushed_dirty: u64,
    flushes: u64,
}

/// A set-associative cache array (one bank, for banked caches).
#[derive(Debug, Clone)]
pub struct Cache {
    name: String,
    geometry: CacheGeometry,
    sets: Vec<CacheSet>,
    /// `num_sets - 1`, precomputed so set selection is a single mask.
    set_mask: u64,
    counters: CacheCounters,
}

impl Cache {
    /// Creates an empty cache with the given geometry and LRU replacement.
    #[must_use]
    pub fn new(name: &str, geometry: CacheGeometry) -> Self {
        Self::with_replacement(name, geometry, ReplacementKind::Lru, 0)
    }

    /// Creates an empty cache with an explicit replacement policy and seed.
    #[must_use]
    pub fn with_replacement(
        name: &str,
        geometry: CacheGeometry,
        replacement: ReplacementKind,
        seed: u64,
    ) -> Self {
        let sets = (0..geometry.num_sets())
            .map(|i| CacheSet::new(geometry.ways(), replacement, seed.wrapping_add(i)))
            .collect();
        Cache {
            name: name.to_owned(),
            geometry,
            sets,
            set_mask: geometry.num_sets() - 1,
            counters: CacheCounters::default(),
        }
    }

    /// The cache's name (used for statistics and reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated statistics (hits, misses, fills, evictions,
    /// invalidations), materialized from the internal fixed-field counters.
    /// Only counters that have fired at least once appear, matching the
    /// shape of a registry built incrementally.
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        let c = &self.counters;
        let mut out = StatRegistry::new();
        for (name, value, fired) in [
            ("hits", c.hits, c.hits > 0),
            ("misses", c.misses, c.misses > 0),
            ("reads", c.reads, c.reads > 0),
            ("writes", c.writes, c.writes > 0),
            ("fills", c.fills, c.fills > 0),
            ("evictions", c.evictions, c.evictions > 0),
            ("dirty_evictions", c.dirty_evictions, c.dirty_evictions > 0),
            ("invalidations", c.invalidations, c.invalidations > 0),
            ("flushed_dirty", c.flushed_dirty, c.flushes > 0),
        ] {
            if fired {
                out.add(name, value);
            }
        }
        out
    }

    #[inline]
    fn set_of(&self, addr: LineAddr) -> u64 {
        // num_sets is validated as a power of two at construction, so set
        // selection is a single mask — no per-access assertion.
        addr.raw() & self.set_mask
    }

    /// Looks up `addr` without modifying replacement or residency state.
    #[must_use]
    pub fn probe(&self, addr: LineAddr) -> Option<LookupOutcome> {
        let set_index = self.set_of(addr);
        let set = &self.sets[set_index as usize];
        set.find(addr).map(|way| LookupOutcome {
            set_index,
            way,
            state: set.line(way).expect("found way is occupied").state,
        })
    }

    /// Looks up `addr` as a normal access at `now`: updates replacement
    /// order and the line's last-touch metadata, and counts a hit or miss.
    pub fn lookup(&mut self, addr: LineAddr, now: Cycle) -> Option<LookupOutcome> {
        self.lookup_prev(addr, now).map(|(_, outcome)| outcome)
    }

    /// Like [`Cache::lookup`], but additionally returns a copy of the line
    /// *as it was before this access touched it* — one tag search where the
    /// simulator's settle-then-touch pattern previously needed two
    /// (`line()` for the pre-access metadata, then `lookup()`).
    pub fn lookup_prev(
        &mut self,
        addr: LineAddr,
        now: Cycle,
    ) -> Option<(CacheLine, LookupOutcome)> {
        let set_index = self.set_of(addr);
        let set = &mut self.sets[set_index as usize];
        match set.find(addr) {
            Some(way) => {
                set.touch_way(way);
                let line = set.line_mut(way).expect("found way is occupied");
                let prev = *line;
                line.meta.touch(now);
                let state = line.state;
                self.counters.hits += 1;
                Some((
                    prev,
                    LookupOutcome {
                        set_index,
                        way,
                        state,
                    },
                ))
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Reads the line (it must be present), updating metadata.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn read_hit(&mut self, addr: LineAddr, now: Cycle) {
        let set_index = self.set_of(addr);
        let set = &mut self.sets[set_index as usize];
        let way = set.find(addr).expect("read_hit on a missing line");
        set.touch_way(way);
        set.line_mut(way).expect("found way is occupied").read(now);
        self.counters.reads += 1;
    }

    /// Writes the line (it must be present), upgrading it to Modified.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn write_hit(&mut self, addr: LineAddr, now: Cycle) {
        let set_index = self.set_of(addr);
        let set = &mut self.sets[set_index as usize];
        let way = set.find(addr).expect("write_hit on a missing line");
        set.touch_way(way);
        set.line_mut(way).expect("found way is occupied").write(now);
        self.counters.writes += 1;
    }

    /// Fills `addr` in the given state, returning any valid line displaced.
    pub fn fill(&mut self, addr: LineAddr, state: MesiState, now: Cycle) -> Option<EvictedLine> {
        let set_index = self.set_of(addr);
        let set = &mut self.sets[set_index as usize];
        debug_assert!(
            set.find(addr).is_none(),
            "fill of a line that is already present"
        );
        let way = set.pick_victim();
        let evicted = set.install(way, CacheLine::new(addr, state, now));
        self.counters.fills += 1;
        evicted.map(|line| {
            self.counters.evictions += 1;
            if line.is_dirty() {
                self.counters.dirty_evictions += 1;
            }
            EvictedLine { line }
        })
    }

    /// Changes the state of a resident line (coherence downgrades/upgrades).
    ///
    /// Returns `false` if the line is not present.
    pub fn set_state(&mut self, addr: LineAddr, state: MesiState) -> bool {
        let set_index = self.set_of(addr);
        let set = &mut self.sets[set_index as usize];
        match set.find(addr) {
            Some(way) => {
                let line = set.line_mut(way).expect("found way is occupied");
                line.state = state;
                if !state.is_dirty() {
                    line.meta.mark_clean();
                }
                true
            }
            None => false,
        }
    }

    /// Invalidates `addr` if present, returning the line as it was.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let set_index = self.set_of(addr);
        let removed = self.sets[set_index as usize].invalidate(addr);
        if removed.is_some() {
            self.counters.invalidations += 1;
        }
        removed
    }

    /// Immutable access to a resident line.
    #[must_use]
    pub fn line(&self, addr: LineAddr) -> Option<&CacheLine> {
        let set_index = self.set_of(addr);
        let set = &self.sets[set_index as usize];
        set.find(addr).and_then(|way| set.line(way))
    }

    /// Mutable access to a resident line.
    pub fn line_mut(&mut self, addr: LineAddr) -> Option<&mut CacheLine> {
        let set_index = self.set_of(addr);
        let set = &mut self.sets[set_index as usize];
        match set.find(addr) {
            Some(way) => set.line_mut(way),
            None => None,
        }
    }

    /// Iterates over all valid resident lines.
    pub fn iter_valid(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets.iter().flat_map(CacheSet::iter_valid)
    }

    /// Iterates mutably over all valid resident lines.
    pub fn iter_valid_mut(&mut self) -> impl Iterator<Item = &mut CacheLine> {
        self.sets.iter_mut().flat_map(CacheSet::iter_valid_mut)
    }

    /// Number of valid resident lines.
    #[must_use]
    pub fn occupancy(&self) -> u64 {
        self.sets.iter().map(|s| s.occupancy() as u64).sum()
    }

    /// Number of valid dirty resident lines.
    #[must_use]
    pub fn dirty_count(&self) -> u64 {
        self.sets.iter().map(|s| s.dirty_count() as u64).sum()
    }

    /// Copies every valid resident line into `out` (cleared first). Lets
    /// callers that repeatedly snapshot residency — the simulator's
    /// end-of-run settlement, flush and invalidation paths — reuse one
    /// scratch buffer instead of collecting a fresh `Vec` each time.
    pub fn collect_valid_into(&self, out: &mut Vec<CacheLine>) {
        out.clear();
        out.extend(self.iter_valid().copied());
    }

    /// Invalidates every line, returning the dirty ones (end-of-run flush).
    pub fn flush(&mut self) -> Vec<CacheLine> {
        let mut dirty = Vec::new();
        for set in &mut self.sets {
            for line in set.iter_valid_mut() {
                if line.is_dirty() {
                    dirty.push(*line);
                }
                line.invalidate();
            }
        }
        self.counters.flushes += 1;
        self.counters.flushed_dirty += dirty.len() as u64;
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;

    fn small_cache() -> Cache {
        // 8 sets x 2 ways x 64B = 1 KB.
        Cache::new("test", CacheGeometry::new(1024, 2, 64).unwrap())
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache();
        let a = LineAddr::new(0x40);
        assert!(c.lookup(a, Cycle::ZERO).is_none());
        assert!(c.fill(a, MesiState::Exclusive, Cycle::new(1)).is_none());
        let hit = c.lookup(a, Cycle::new(2)).unwrap();
        assert_eq!(hit.state, MesiState::Exclusive);
        assert_eq!(c.stats().get("hits"), 1);
        assert_eq!(c.stats().get("misses"), 1);
        assert_eq!(c.stats().get("fills"), 1);
    }

    #[test]
    fn conflicting_fills_evict() {
        let mut c = small_cache();
        // Lines 0, 8, 16 map to the same set (8 sets).
        for i in 0..3u64 {
            c.fill(LineAddr::new(i * 8), MesiState::Shared, Cycle::new(i));
        }
        assert_eq!(c.stats().get("evictions"), 1);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn dirty_eviction_flagged() {
        let mut c = small_cache();
        c.fill(LineAddr::new(0), MesiState::Modified, Cycle::ZERO);
        c.fill(LineAddr::new(8), MesiState::Shared, Cycle::ZERO);
        let evicted = c
            .fill(LineAddr::new(16), MesiState::Shared, Cycle::ZERO)
            .unwrap();
        assert!(evicted.needs_writeback());
        assert_eq!(c.stats().get("dirty_evictions"), 1);
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut c = small_cache();
        let a = LineAddr::new(3);
        c.fill(a, MesiState::Exclusive, Cycle::ZERO);
        c.write_hit(a, Cycle::new(5));
        assert!(c.line(a).unwrap().is_dirty());
        assert_eq!(c.dirty_count(), 1);
        c.read_hit(a, Cycle::new(9));
        assert_eq!(c.line(a).unwrap().meta.last_touch, Cycle::new(9));
    }

    #[test]
    fn probe_does_not_touch() {
        let mut c = small_cache();
        let a = LineAddr::new(3);
        c.fill(a, MesiState::Exclusive, Cycle::new(1));
        let _ = c.probe(a);
        assert_eq!(c.line(a).unwrap().meta.last_touch, Cycle::new(1));
        assert_eq!(c.stats().get("hits"), 0);
    }

    #[test]
    fn set_state_and_invalidate() {
        let mut c = small_cache();
        let a = LineAddr::new(7);
        c.fill(a, MesiState::Modified, Cycle::ZERO);
        assert!(c.set_state(a, MesiState::Shared));
        assert!(!c.line(a).unwrap().is_dirty());
        let removed = c.invalidate(a).unwrap();
        assert_eq!(removed.state, MesiState::Shared);
        assert!(c.line(a).is_none());
        assert!(!c.set_state(a, MesiState::Shared));
        assert!(c.invalidate(a).is_none());
    }

    #[test]
    fn flush_returns_dirty_lines_and_empties_cache() {
        let mut c = small_cache();
        c.fill(LineAddr::new(1), MesiState::Modified, Cycle::ZERO);
        c.fill(LineAddr::new(2), MesiState::Shared, Cycle::ZERO);
        c.fill(LineAddr::new(3), MesiState::Modified, Cycle::ZERO);
        let dirty = c.flush();
        assert_eq!(dirty.len(), 2);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn occupancy_counts() {
        let mut c = small_cache();
        assert_eq!(c.occupancy(), 0);
        for i in 0..10u64 {
            c.fill(LineAddr::new(i), MesiState::Shared, Cycle::ZERO);
        }
        assert_eq!(c.occupancy(), 10);
        assert_eq!(c.iter_valid().count(), 10);
    }
}
