//! Cache substrate for the Refrint reproduction.
//!
//! This crate provides the memory-system building blocks that the CMP
//! simulator (`refrint` crate) assembles into the three-level hierarchy of
//! the paper's Table 5.1:
//!
//! * [`addr`] — physical addresses, line addresses, and the static
//!   address-to-bank mapping used by the shared L3.
//! * [`line`] — per-line coherence/validity state and residency metadata
//!   (last-touch cycle, dirty-since cycle, refresh counters) consumed by the
//!   eDRAM refresh policies.
//! * [`replacement`] — LRU, pseudo-LRU (tree) and random replacement.
//! * [`set`] / [`cache`] — set-associative arrays with configurable geometry.
//! * [`config`] — cache geometry and latency configuration (paper Table 5.1).
//! * [`dram`] — the off-chip DRAM model (fixed 40 ns access in the paper).
//!
//! # Example
//!
//! ```
//! use refrint_mem::addr::Addr;
//! use refrint_mem::cache::Cache;
//! use refrint_mem::config::CacheGeometry;
//! use refrint_engine::time::Cycle;
//!
//! let geom = CacheGeometry::new(32 * 1024, 4, 64).unwrap();
//! let mut l1 = Cache::new("dl1", geom);
//! let addr = Addr::new(0x1000);
//! assert!(l1.lookup(addr.line(64), Cycle::ZERO).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod cache;
pub mod config;
pub mod dram;
pub mod error;
pub mod line;
pub mod replacement;
pub mod set;

pub use addr::{Addr, LineAddr};
pub use cache::{Cache, EvictedLine, LookupOutcome};
pub use config::{CacheGeometry, CacheLevelConfig};
pub use dram::DramModel;
pub use error::MemError;
pub use line::{CacheLine, LineMeta, MesiState};
pub use replacement::ReplacementKind;
