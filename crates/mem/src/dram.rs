//! Off-chip DRAM model.
//!
//! The paper models main memory as a fixed 40 ns access (Table 5.1) and
//! charges a per-access DRAM energy so that policies which push data off
//! chip (Dirty, WB(n,m)) are penalised fairly (Section 6). We additionally
//! model a simple per-channel bandwidth constraint so that pathological
//! invalidation storms show up as queueing delay rather than being free.

use refrint_engine::stats::StatRegistry;
use refrint_engine::time::Cycle;

/// Kind of DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramOp {
    /// A line fetch caused by an LLC miss.
    Read,
    /// A write-back of a dirty line.
    Write,
}

/// A simple fixed-latency, bandwidth-limited DRAM model.
#[derive(Debug, Clone)]
pub struct DramModel {
    access_latency: Cycle,
    /// Minimum spacing between successive transactions on a channel,
    /// modelling limited off-chip bandwidth.
    min_gap: Cycle,
    /// Per-channel next-free cycle.
    channel_free_at: Vec<Cycle>,
    reads: u64,
    writes: u64,
    queue_delay_cycles: u64,
}

impl DramModel {
    /// Creates a DRAM model with the paper's 40-cycle (40 ns @ 1 GHz)
    /// access latency, 4 channels and a 4-cycle minimum inter-command gap.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(Cycle::new(40), 4, Cycle::new(4))
    }

    /// Creates a DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(access_latency: Cycle, channels: usize, min_gap: Cycle) -> Self {
        assert!(channels > 0, "DRAM needs at least one channel");
        DramModel {
            access_latency,
            min_gap,
            channel_free_at: vec![Cycle::ZERO; channels],
            reads: 0,
            writes: 0,
            queue_delay_cycles: 0,
        }
    }

    /// The fixed access latency (excluding queueing).
    #[must_use]
    pub fn access_latency(&self) -> Cycle {
        self.access_latency
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channel_free_at.len()
    }

    /// Issues a transaction for the line at `line_addr` at cycle `now` and
    /// returns its completion cycle (including any queueing delay).
    pub fn access(&mut self, line_addr: u64, op: DramOp, now: Cycle) -> Cycle {
        let ch = (line_addr % self.channel_free_at.len() as u64) as usize;
        let start = now.max(self.channel_free_at[ch]);
        let queue_delay = start - now;
        let done = start + self.access_latency;
        self.channel_free_at[ch] = start + self.min_gap;

        match op {
            DramOp::Read => self.reads += 1,
            DramOp::Write => self.writes += 1,
        }
        self.queue_delay_cycles += queue_delay.raw();
        done
    }

    /// Total number of transactions issued.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Number of read transactions issued.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write transactions issued.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Accumulated statistics, materialized from the fixed-field counters
    /// the hot path maintains (only counters that have fired appear,
    /// matching the shape of an incrementally built registry).
    #[must_use]
    pub fn stats(&self) -> StatRegistry {
        let mut out = StatRegistry::new();
        if self.reads > 0 {
            out.add("reads", self.reads);
        }
        if self.writes > 0 {
            out.add("writes", self.writes);
        }
        if self.total_accesses() > 0 {
            out.add("queue_delay_cycles", self.queue_delay_cycles);
        }
        out
    }

    /// Resets channel occupancy (used between experiment phases).
    pub fn reset_timing(&mut self) {
        for c in &mut self.channel_free_at {
            *c = Cycle::ZERO;
        }
    }
}

impl Default for DramModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_latency_is_40_cycles() {
        let d = DramModel::paper_default();
        assert_eq!(d.access_latency(), Cycle::new(40));
        assert_eq!(d.channels(), 4);
    }

    #[test]
    fn unqueued_access_completes_after_latency() {
        let mut d = DramModel::paper_default();
        let done = d.access(0, DramOp::Read, Cycle::new(100));
        assert_eq!(done, Cycle::new(140));
        assert_eq!(d.reads(), 1);
        assert_eq!(d.total_accesses(), 1);
    }

    #[test]
    fn same_channel_back_to_back_accesses_queue() {
        let mut d = DramModel::new(Cycle::new(40), 1, Cycle::new(10));
        let first = d.access(0, DramOp::Read, Cycle::ZERO);
        let second = d.access(0, DramOp::Write, Cycle::ZERO);
        assert_eq!(first, Cycle::new(40));
        // Second cannot start until cycle 10 (min gap), completes at 50.
        assert_eq!(second, Cycle::new(50));
        assert_eq!(d.stats().get("queue_delay_cycles"), 10);
        assert_eq!(d.writes(), 1);
    }

    #[test]
    fn different_channels_do_not_interfere() {
        let mut d = DramModel::new(Cycle::new(40), 2, Cycle::new(100));
        let a = d.access(0, DramOp::Read, Cycle::ZERO);
        let b = d.access(1, DramOp::Read, Cycle::ZERO);
        assert_eq!(a, Cycle::new(40));
        assert_eq!(b, Cycle::new(40));
    }

    #[test]
    fn reset_timing_clears_queues() {
        let mut d = DramModel::new(Cycle::new(40), 1, Cycle::new(100));
        let _ = d.access(0, DramOp::Read, Cycle::ZERO);
        d.reset_timing();
        let done = d.access(0, DramOp::Read, Cycle::ZERO);
        assert_eq!(done, Cycle::new(40));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = DramModel::new(Cycle::new(40), 0, Cycle::ZERO);
    }
}
