//! Replacement policies for set-associative caches.
//!
//! The paper does not dwell on replacement (normal LRU-class policies are
//! assumed: "any line which is not being used is quickly replaced by the
//! normal cache replacement policies", Section 6.2). We provide true LRU
//! (the default), tree pseudo-LRU and random replacement so the effect of
//! the choice can be studied as an ablation.

use std::fmt;

use refrint_engine::rng::DeterministicRng;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Tree-based pseudo-LRU (as commonly implemented in hardware).
    TreePlru,
    /// Uniform random victim selection.
    Random,
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementKind::Lru => write!(f, "lru"),
            ReplacementKind::TreePlru => write!(f, "tree-plru"),
            ReplacementKind::Random => write!(f, "random"),
        }
    }
}

/// Per-set replacement state.
///
/// One `ReplacementState` instance is kept per cache set; the cache informs
/// it of accesses and asks it for victims.
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// LRU: ways ordered from most- to least-recently used.
    Lru {
        /// `order[0]` is the MRU way, `order[ways-1]` the LRU way.
        order: Vec<u8>,
    },
    /// Tree pseudo-LRU over `ways` leaves (ways must be a power of two).
    TreePlru {
        /// Internal node bits of the PLRU tree (ways - 1 of them).
        bits: Vec<bool>,
        /// Associativity.
        ways: u8,
    },
    /// Random replacement with its own deterministic stream.
    Random {
        /// Associativity.
        ways: u8,
        /// Deterministic random stream for victim selection.
        rng: DeterministicRng,
    },
}

impl ReplacementState {
    /// Creates replacement state for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or greater than 128, or if `TreePlru` is
    /// requested with a non-power-of-two associativity.
    #[must_use]
    pub fn new(kind: ReplacementKind, ways: u8, seed: u64) -> Self {
        assert!(ways > 0 && ways <= 128, "unsupported associativity {ways}");
        match kind {
            ReplacementKind::Lru => ReplacementState::Lru {
                order: (0..ways).collect(),
            },
            ReplacementKind::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree pseudo-LRU requires power-of-two associativity"
                );
                ReplacementState::TreePlru {
                    bits: vec![false; (ways as usize).saturating_sub(1)],
                    ways,
                }
            }
            ReplacementKind::Random => ReplacementState::Random {
                ways,
                rng: DeterministicRng::from_seed(seed),
            },
        }
    }

    /// Notifies the policy that `way` was accessed (hit or fill).
    pub fn on_access(&mut self, way: u8) {
        match self {
            ReplacementState::Lru { order } => {
                if let Some(pos) = order.iter().position(|&w| w == way) {
                    order.remove(pos);
                    order.insert(0, way);
                }
            }
            ReplacementState::TreePlru { bits, ways } => {
                // Walk from the root towards the accessed leaf, setting each
                // internal bit to point *away* from the path taken.
                let ways = *ways as usize;
                if ways == 1 {
                    return;
                }
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = (way as usize) >= mid;
                    bits[node] = !go_right;
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            ReplacementState::Random { .. } => {}
        }
    }

    /// Chooses a victim way. `valid` reports, per way, whether that way holds
    /// a valid line; invalid ways are always preferred.
    ///
    /// # Panics
    ///
    /// Panics if `valid.len()` differs from the associativity.
    pub fn victim(&mut self, valid: &[bool]) -> u8 {
        assert_eq!(usize::from(self.ways()), valid.len(), "way count mismatch");
        // Invalid ways are free: use the lowest-numbered one.
        if let Some(free) = valid.iter().position(|v| !v) {
            return free as u8;
        }
        self.victim_all_valid()
    }

    /// Chooses a victim way assuming every way holds a valid line — the
    /// allocation-free fast path used by the cache's fill machinery (the
    /// caller scans for free ways itself).
    pub fn victim_all_valid(&mut self) -> u8 {
        match self {
            ReplacementState::Lru { order } => *order.last().expect("associativity is non-zero"),
            ReplacementState::TreePlru { bits, ways } => {
                let ways = *ways as usize;
                if ways == 1 {
                    return 0;
                }
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_right = bits[node];
                    node = 2 * node + if go_right { 2 } else { 1 };
                    if go_right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo as u8
            }
            ReplacementState::Random { ways, rng } => rng.below(u64::from(*ways)) as u8,
        }
    }

    /// The associativity this state was built for.
    #[must_use]
    pub fn ways(&self) -> u8 {
        match self {
            ReplacementState::Lru { order } => order.len() as u8,
            ReplacementState::TreePlru { ways, .. } | ReplacementState::Random { ways, .. } => {
                *ways
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s = ReplacementState::new(ReplacementKind::Lru, 4, 0);
        // Touch ways in order 0,1,2,3 — way 0 is now LRU.
        for w in 0..4 {
            s.on_access(w);
        }
        assert_eq!(s.victim(&[true; 4]), 0);
        // Touch way 0 again; way 1 becomes LRU.
        s.on_access(0);
        assert_eq!(s.victim(&[true; 4]), 1);
    }

    #[test]
    fn invalid_way_preferred_over_lru() {
        let mut s = ReplacementState::new(ReplacementKind::Lru, 4, 0);
        for w in 0..4 {
            s.on_access(w);
        }
        assert_eq!(s.victim(&[true, true, false, true]), 2);
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut s = ReplacementState::new(ReplacementKind::TreePlru, 8, 0);
        for i in 0..1000u32 {
            let way = (i % 8) as u8;
            s.on_access(way);
            let victim = s.victim(&[true; 8]);
            assert_ne!(victim, way, "PLRU must not evict the just-accessed way");
        }
    }

    #[test]
    fn plru_single_way() {
        let mut s = ReplacementState::new(ReplacementKind::TreePlru, 1, 0);
        s.on_access(0);
        assert_eq!(s.victim(&[true]), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let mut a = ReplacementState::new(ReplacementKind::Random, 8, 1234);
        let mut b = ReplacementState::new(ReplacementKind::Random, 8, 1234);
        for _ in 0..64 {
            let va = a.victim(&[true; 8]);
            let vb = b.victim(&[true; 8]);
            assert_eq!(va, vb);
            assert!(va < 8);
        }
    }

    #[test]
    fn ways_accessor() {
        assert_eq!(ReplacementState::new(ReplacementKind::Lru, 4, 0).ways(), 4);
        assert_eq!(
            ReplacementState::new(ReplacementKind::TreePlru, 8, 0).ways(),
            8
        );
        assert_eq!(
            ReplacementState::new(ReplacementKind::Random, 16, 0).ways(),
            16
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = ReplacementState::new(ReplacementKind::TreePlru, 6, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ReplacementKind::Lru.to_string(), "lru");
        assert_eq!(ReplacementKind::TreePlru.to_string(), "tree-plru");
        assert_eq!(ReplacementKind::Random.to_string(), "random");
    }
}
