//! Cache geometry and per-level configuration.
//!
//! Defaults follow the paper's Table 5.1: 32 KB 2-way IL1 and 32 KB 4-way
//! DL1 (write-through) at 1 ns, 256 KB 8-way write-back private L2 at 2 ns,
//! and a shared L3 of sixteen 1 MB 8-way banks at 4 ns, all with 64-byte
//! lines, backed by a 40 ns DRAM.

use std::fmt;

use refrint_engine::time::Cycle;

use crate::error::MemError;
use crate::replacement::ReplacementKind;

/// Which level of the hierarchy a cache belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheLevel {
    /// Private instruction L1.
    L1I,
    /// Private data L1 (write-through in the paper).
    L1D,
    /// Private unified L2 (write-back).
    L2,
    /// Shared, banked L3 (write-back, holds the directory).
    L3,
}

impl CacheLevel {
    /// All levels, in order from closest to the core outward.
    pub const ALL: [CacheLevel; 4] = [
        CacheLevel::L1I,
        CacheLevel::L1D,
        CacheLevel::L2,
        CacheLevel::L3,
    ];

    /// Short lowercase label used in statistics and reports.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            CacheLevel::L1I => "il1",
            CacheLevel::L1D => "dl1",
            CacheLevel::L2 => "l2",
            CacheLevel::L3 => "l3",
        }
    }

    /// Whether this is one of the two L1 caches.
    #[must_use]
    pub const fn is_l1(self) -> bool {
        matches!(self, CacheLevel::L1I | CacheLevel::L1D)
    }
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The write policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Writes propagate to the next level immediately; lines are never dirty.
    WriteThrough,
    /// Writes dirty the local copy; data moves on eviction or write-back.
    #[default]
    WriteBack,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WritePolicy::WriteThrough => write!(f, "WT"),
            WritePolicy::WriteBack => write!(f, "WB"),
        }
    }
}

/// Pure geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: u8,
    line_size: u64,
}

impl CacheGeometry {
    /// Creates a geometry from total capacity, associativity and line size.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidGeometry`] if any parameter is zero, if the
    /// line size or resulting set count is not a power of two, or if the
    /// capacity is not divisible by `ways * line_size`.
    pub fn new(size_bytes: u64, ways: u8, line_size: u64) -> Result<Self, MemError> {
        if size_bytes == 0 || ways == 0 || line_size == 0 {
            return Err(MemError::InvalidGeometry {
                reason: "size, ways and line size must be non-zero".to_owned(),
            });
        }
        if !line_size.is_power_of_two() {
            return Err(MemError::InvalidGeometry {
                reason: format!("line size {line_size} is not a power of two"),
            });
        }
        let way_bytes = u64::from(ways) * line_size;
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(MemError::InvalidGeometry {
                reason: format!(
                    "capacity {size_bytes} is not a multiple of ways*line = {way_bytes}"
                ),
            });
        }
        let sets = size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(MemError::InvalidGeometry {
                reason: format!("set count {sets} is not a power of two"),
            });
        }
        Ok(CacheGeometry {
            size_bytes,
            ways,
            line_size,
        })
    }

    /// Total capacity in bytes.
    #[must_use]
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    #[must_use]
    pub const fn ways(&self) -> u8 {
        self.ways
    }

    /// Line size in bytes.
    #[must_use]
    pub const fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Number of sets.
    #[must_use]
    pub const fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_size)
    }

    /// Total number of lines.
    #[must_use]
    pub const fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_size
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB, {}-way, {}B lines",
            self.size_bytes / 1024,
            self.ways,
            self.line_size
        )
    }
}

/// Full configuration of one cache level: geometry, latency, write and
/// replacement policy, and (for the L3) the number of banks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Which level this configures.
    pub level: CacheLevel,
    /// Geometry of one instance of this cache (one bank, for the L3).
    pub geometry: CacheGeometry,
    /// Access latency in cycles.
    pub access_latency: Cycle,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Replacement policy.
    pub replacement: ReplacementKind,
    /// Number of independent sub-arrays per bank reported by CACTI; used to
    /// size the periodic-refresh groups (paper Section 5: 4 groups per bank).
    pub subarrays: u32,
}

impl CacheLevelConfig {
    /// The paper's IL1: 32 KB, 2-way, 1 ns.
    #[must_use]
    pub fn paper_il1() -> Self {
        CacheLevelConfig {
            level: CacheLevel::L1I,
            geometry: CacheGeometry::new(32 * 1024, 2, 64).expect("paper IL1 geometry is valid"),
            access_latency: Cycle::new(1),
            write_policy: WritePolicy::WriteThrough,
            replacement: ReplacementKind::Lru,
            subarrays: 4,
        }
    }

    /// The paper's DL1: 32 KB, 4-way, write-through, 1 ns.
    #[must_use]
    pub fn paper_dl1() -> Self {
        CacheLevelConfig {
            level: CacheLevel::L1D,
            geometry: CacheGeometry::new(32 * 1024, 4, 64).expect("paper DL1 geometry is valid"),
            access_latency: Cycle::new(1),
            write_policy: WritePolicy::WriteThrough,
            replacement: ReplacementKind::Lru,
            subarrays: 4,
        }
    }

    /// The paper's L2: 256 KB, 8-way, write-back, 2 ns.
    #[must_use]
    pub fn paper_l2() -> Self {
        CacheLevelConfig {
            level: CacheLevel::L2,
            geometry: CacheGeometry::new(256 * 1024, 8, 64).expect("paper L2 geometry is valid"),
            access_latency: Cycle::new(2),
            write_policy: WritePolicy::WriteBack,
            replacement: ReplacementKind::Lru,
            subarrays: 4,
        }
    }

    /// One bank of the paper's L3: 1 MB, 8-way, write-back, 4 ns.
    #[must_use]
    pub fn paper_l3_bank() -> Self {
        CacheLevelConfig {
            level: CacheLevel::L3,
            geometry: CacheGeometry::new(1024 * 1024, 8, 64).expect("paper L3 geometry is valid"),
            access_latency: Cycle::new(4),
            write_policy: WritePolicy::WriteBack,
            replacement: ReplacementKind::Lru,
            subarrays: 4,
        }
    }

    /// Lines per periodic-refresh group (geometry lines / subarrays).
    #[must_use]
    pub fn lines_per_refresh_group(&self) -> u64 {
        (self.geometry.num_lines() / u64::from(self.subarrays)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries_match_table_5_1() {
        let il1 = CacheLevelConfig::paper_il1();
        assert_eq!(il1.geometry.num_lines(), 512);
        assert_eq!(il1.geometry.num_sets(), 256);

        let dl1 = CacheLevelConfig::paper_dl1();
        assert_eq!(dl1.geometry.num_lines(), 512);
        assert_eq!(dl1.geometry.num_sets(), 128);
        assert_eq!(dl1.write_policy, WritePolicy::WriteThrough);

        let l2 = CacheLevelConfig::paper_l2();
        assert_eq!(l2.geometry.num_lines(), 4096);
        assert_eq!(l2.access_latency, Cycle::new(2));
        assert_eq!(l2.write_policy, WritePolicy::WriteBack);

        let l3 = CacheLevelConfig::paper_l3_bank();
        assert_eq!(l3.geometry.num_lines(), 16 * 1024);
        assert_eq!(l3.access_latency, Cycle::new(4));
    }

    #[test]
    fn refresh_group_sizes_match_paper_section_5() {
        // "for L1 we have 4 groups of 128 lines each, for L2 we have 4 groups
        //  of 1024 lines each and for L3 we have 4 groups of 4096 lines each"
        assert_eq!(CacheLevelConfig::paper_dl1().lines_per_refresh_group(), 128);
        assert_eq!(CacheLevelConfig::paper_l2().lines_per_refresh_group(), 1024);
        assert_eq!(
            CacheLevelConfig::paper_l3_bank().lines_per_refresh_group(),
            4096
        );
    }

    #[test]
    fn geometry_rejects_bad_parameters() {
        assert!(CacheGeometry::new(0, 4, 64).is_err());
        assert!(CacheGeometry::new(32 * 1024, 0, 64).is_err());
        assert!(CacheGeometry::new(32 * 1024, 4, 0).is_err());
        assert!(CacheGeometry::new(32 * 1024, 4, 48).is_err());
        // 3-way 64B lines: 96KB / 192 = 512 sets — fine; but 100KB is not a
        // multiple of ways*line.
        assert!(CacheGeometry::new(100 * 1000, 4, 64).is_err());
        // Non-power-of-two set count.
        assert!(CacheGeometry::new(3 * 64 * 4, 4, 64).is_err());
    }

    #[test]
    fn geometry_accessors() {
        let g = CacheGeometry::new(256 * 1024, 8, 64).unwrap();
        assert_eq!(g.size_bytes(), 256 * 1024);
        assert_eq!(g.ways(), 8);
        assert_eq!(g.line_size(), 64);
        assert_eq!(g.num_sets(), 512);
        assert_eq!(g.num_lines(), 4096);
        assert_eq!(g.to_string(), "256 KB, 8-way, 64B lines");
    }

    #[test]
    fn level_labels() {
        assert_eq!(CacheLevel::L1D.label(), "dl1");
        assert_eq!(CacheLevel::L3.to_string(), "l3");
        assert!(CacheLevel::L1I.is_l1());
        assert!(!CacheLevel::L2.is_l1());
        assert_eq!(CacheLevel::ALL.len(), 4);
    }

    #[test]
    fn write_policy_display() {
        assert_eq!(WritePolicy::WriteThrough.to_string(), "WT");
        assert_eq!(WritePolicy::WriteBack.to_string(), "WB");
        assert_eq!(WritePolicy::default(), WritePolicy::WriteBack);
    }
}
