//! Streaming trace summaries for `trace info`-style reporting.

use std::fmt;

use refrint_engine::stats::Histogram;

use crate::error::TraceError;
use crate::format::{TraceFormat, TraceMeta};
use crate::reader::TraceFile;

/// Aggregate statistics of a trace, computed in one streaming pass:
/// record/read/write counts, per-thread lengths, and the gap and
/// address-stride distributions the refresh policies care about.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// The trace's header metadata.
    pub meta: TraceMeta,
    /// The on-disk format the trace uses.
    pub format: TraceFormat,
    /// Total references.
    pub records: u64,
    /// Load references.
    pub reads: u64,
    /// Store references.
    pub writes: u64,
    /// References per thread, indexed by thread id.
    pub per_thread: Vec<u64>,
    /// Distribution of compute gaps (cycles between references).
    pub gaps: Histogram,
    /// Distribution of absolute address strides between consecutive
    /// references of the same thread, in bytes.
    pub strides: Histogram,
    /// Lowest byte address referenced (0 if the trace is empty).
    pub min_addr: u64,
    /// Highest byte address referenced (0 if the trace is empty).
    pub max_addr: u64,
}

impl TraceSummary {
    /// Streams every record of `trace` once and aggregates the summary.
    ///
    /// # Errors
    ///
    /// The first [`TraceError`] hit while decoding.
    pub fn collect(trace: &TraceFile) -> Result<Self, TraceError> {
        let meta = trace.meta().clone();
        let mut summary = TraceSummary {
            format: trace.format(),
            records: 0,
            reads: 0,
            writes: 0,
            per_thread: vec![0; meta.threads],
            // Gaps are small (tens of cycles); strides span the footprint.
            gaps: Histogram::exponential(20),
            strides: Histogram::exponential(40),
            min_addr: u64::MAX,
            max_addr: 0,
            meta,
        };
        for t in 0..summary.meta.threads {
            let mut prev_addr: Option<u64> = None;
            for r in trace.thread(t)? {
                let r = r?;
                summary.records += 1;
                summary.per_thread[t] += 1;
                if r.is_write() {
                    summary.writes += 1;
                } else {
                    summary.reads += 1;
                }
                summary.gaps.record(r.gap_cycles);
                let addr = r.addr.raw();
                if let Some(prev) = prev_addr {
                    summary.strides.record(prev.abs_diff(addr));
                }
                prev_addr = Some(addr);
                summary.min_addr = summary.min_addr.min(addr);
                summary.max_addr = summary.max_addr.max(addr);
            }
        }
        if summary.records == 0 {
            summary.min_addr = 0;
        }
        Ok(summary)
    }

    /// The touched address span in bytes (an upper bound on the footprint).
    #[must_use]
    pub fn address_span(&self) -> u64 {
        self.max_addr.saturating_sub(self.min_addr)
    }
}

/// Formats a histogram as `mean M  p50 A  p90 B  p99 C  max D`.
fn distribution_line(h: &Histogram) -> String {
    match (h.mean(), h.max()) {
        (Some(mean), Some(max)) => format!(
            "mean {:.1}  p50 {}  p90 {}  p99 {}  max {}",
            mean,
            h.percentile(50.0).unwrap_or(0),
            h.percentile(90.0).unwrap_or(0),
            h.percentile(99.0).unwrap_or(0),
            max
        ),
        _ => "(no samples)".to_owned(),
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "workload        : {}", self.meta.workload)?;
        writeln!(f, "format          : {}", self.format)?;
        writeln!(f, "threads         : {}", self.meta.threads)?;
        writeln!(f, "seed            : {:#x}", self.meta.seed)?;
        writeln!(
            f,
            "records         : {} (reads {} / writes {})",
            self.records, self.reads, self.writes
        )?;
        let (min, max) = self
            .per_thread
            .iter()
            .fold((u64::MAX, 0), |(lo, hi), &n| (lo.min(n), hi.max(n)));
        writeln!(
            f,
            "per thread      : min {}  max {}",
            if self.records == 0 { 0 } else { min },
            max
        )?;
        writeln!(f, "gap cycles      : {}", distribution_line(&self.gaps))?;
        writeln!(f, "addr stride (B) : {}", distribution_line(&self.strides))?;
        write!(
            f,
            "address span    : {:.1} MB ({:#x}..{:#x})",
            self.address_span() as f64 / (1024.0 * 1024.0),
            self.min_addr,
            self.max_addr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_model;
    use crate::writer::TraceWriter;
    use refrint_workloads::apps::AppPreset;

    #[test]
    fn summary_counts_and_distributions() {
        let model = AppPreset::Blackscholes
            .model()
            .with_threads(2)
            .with_refs_per_thread(500);
        let meta = TraceMeta::new(&model.name, model.threads, 9);
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        capture_model(&model, 9, &mut w).unwrap();
        let trace = TraceFile::from_bytes(w.into_inner().unwrap()).unwrap();
        let s = TraceSummary::collect(&trace).unwrap();
        assert_eq!(s.records, 1000);
        assert_eq!(s.reads + s.writes, 1000);
        assert_eq!(s.per_thread, vec![500, 500]);
        assert_eq!(s.gaps.count(), 1000);
        // One stride per consecutive pair within each thread.
        assert_eq!(s.strides.count(), 998);
        assert!(s.max_addr < model.footprint_bytes());
        assert!(s.address_span() > 0);
        let text = s.to_string();
        assert!(text.contains("blackscholes"));
        assert!(text.contains("p99"));
        assert!(text.contains("records"));
    }
}
