//! Typed errors for trace I/O.
//!
//! Every reader-side failure names the byte offset of the offending data so
//! a corrupt file can be inspected with `xxd` directly. The type is both
//! `Clone` and `PartialEq` (I/O errors are flattened to their messages) so
//! callers can match on exact failures in tests.

use std::error::Error;
use std::fmt;

/// Errors produced while writing, reading or validating a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io {
        /// Byte offset at which the operation was attempted.
        offset: u64,
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// The file does not start with a known trace magic.
    BadMagic {
        /// Byte offset of the magic (always 0 today).
        offset: u64,
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The file carries a format version this build cannot read.
    UnsupportedVersion {
        /// Byte offset of the version field.
        offset: u64,
        /// The version found in the file.
        found: u16,
        /// The newest version this build supports.
        supported: u16,
    },
    /// The file ended in the middle of a header field or record.
    Truncated {
        /// Byte offset at which more data was expected.
        offset: u64,
        /// What was being read when the file ended.
        expected: &'static str,
    },
    /// The file is structurally invalid (bad varint, duplicate thread
    /// block, trailing bytes, block-length mismatch, ...).
    Corrupt {
        /// Byte offset of the offending data.
        offset: u64,
        /// Description of the violation.
        reason: String,
    },
    /// A text-format line did not parse.
    Parse {
        /// Byte offset of the start of the offending line.
        offset: u64,
        /// 1-based line number of the offending line.
        line: u64,
        /// Description of the violation.
        reason: String,
    },
    /// A thread index outside the trace's thread count was requested.
    ThreadOutOfRange {
        /// The requested thread.
        thread: usize,
        /// The number of threads in the trace.
        threads: usize,
    },
    /// The writer was driven incorrectly (threads out of order, a record
    /// outside a thread block, an unencodable gap, ...).
    InvalidMeta {
        /// Description of the misuse.
        reason: String,
    },
}

impl TraceError {
    /// Shorthand for an I/O failure at `offset`.
    pub(crate) fn io(offset: u64, err: &std::io::Error) -> Self {
        TraceError::Io {
            offset,
            message: err.to_string(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { offset, message } => {
                write!(f, "I/O error at byte {offset}: {message}")
            }
            TraceError::BadMagic { offset, found } => write!(
                f,
                "not a refrint trace: bad magic {found:02x?} at byte {offset} \
                 (expected `RFRT` or `# refrint-trace`)"
            ),
            TraceError::UnsupportedVersion {
                offset,
                found,
                supported,
            } => write!(
                f,
                "unsupported trace format version {found} at byte {offset} \
                 (this build reads up to version {supported})"
            ),
            TraceError::Truncated { offset, expected } => {
                write!(f, "truncated trace: expected {expected} at byte {offset}")
            }
            TraceError::Corrupt { offset, reason } => {
                write!(f, "corrupt trace at byte {offset}: {reason}")
            }
            TraceError::Parse {
                offset,
                line,
                reason,
            } => write!(
                f,
                "trace parse error at line {line} (byte {offset}): {reason}"
            ),
            TraceError::ThreadOutOfRange { thread, threads } => write!(
                f,
                "thread {thread} out of range for a {threads}-thread trace"
            ),
            TraceError::InvalidMeta { reason } => {
                write!(f, "invalid trace metadata: {reason}")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offset() {
        let e = TraceError::BadMagic {
            offset: 0,
            found: *b"ELF\x7f",
        };
        assert!(e.to_string().contains("byte 0"));
        let e = TraceError::Truncated {
            offset: 17,
            expected: "record tag",
        };
        assert!(e.to_string().contains("byte 17"));
        assert!(e.to_string().contains("record tag"));
        let e = TraceError::UnsupportedVersion {
            offset: 4,
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = TraceError::Parse {
            offset: 40,
            line: 3,
            reason: "bad kind".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync_clone_eq() {
        fn assert_traits<T: Error + Send + Sync + Clone + PartialEq + 'static>() {}
        assert_traits::<TraceError>();
    }
}
