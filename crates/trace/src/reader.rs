//! Streaming trace readers.
//!
//! [`TraceFile::open`] sniffs the format from the magic, parses the header,
//! and indexes the per-thread blocks (skipping over binary block bodies via
//! their recorded lengths) without decoding any records. Each
//! [`TraceFile::thread`] call then opens an independent streaming cursor at
//! that thread's records, so a simulator can consume all threads
//! concurrently while the file is read incrementally — the trace is never
//! materialized in memory.

use std::fs::File;
use std::io::{BufRead, BufReader, Cursor, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use refrint_mem::addr::Addr;
use refrint_workloads::trace::{AccessKind, MemRef};

use crate::error::TraceError;
use crate::format::{
    read_exact, read_varint, zigzag_decode, TraceFormat, TraceMeta, BINARY_MAGIC, FORMAT_VERSION,
    TEXT_MAGIC_LINE,
};

/// Where the trace bytes live. Every [`TraceFile::thread`] call opens a
/// fresh cursor into the source, so per-thread iterators are independent.
#[derive(Debug, Clone)]
enum Source {
    File(PathBuf),
    Memory(Arc<Vec<u8>>),
}

/// Owned bytes adapter so a shared buffer can back an `io::Cursor`.
#[derive(Debug)]
struct SharedBytes(Arc<Vec<u8>>);

impl AsRef<[u8]> for SharedBytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// What a trace cursor needs: buffered reads plus seeking, so indexing can
/// skip block bodies without streaming them.
trait TraceRead: BufRead + Seek + Send {}
impl<T: BufRead + Seek + Send> TraceRead for T {}

impl Source {
    fn reader_at(&self, offset: u64) -> Result<Box<dyn TraceRead>, TraceError> {
        match self {
            Source::File(path) => {
                let mut file = File::open(path).map_err(|e| TraceError::io(0, &e))?;
                file.seek(SeekFrom::Start(offset))
                    .map_err(|e| TraceError::io(offset, &e))?;
                Ok(Box::new(BufReader::new(file)))
            }
            Source::Memory(bytes) => {
                let mut cursor = Cursor::new(SharedBytes(Arc::clone(bytes)));
                cursor.set_position(offset);
                Ok(Box::new(BufReader::new(cursor)))
            }
        }
    }
}

/// One indexed thread block.
#[derive(Debug, Clone, Copy)]
struct ThreadBlock {
    /// Byte offset of the first record (binary) or first record line (text).
    records_at: u64,
    /// Byte length of the records region including the terminator, for the
    /// binary format; `None` for text (terminated by an `end` line).
    body_len: Option<u64>,
    /// 1-based line number of the section's `thread <t>` line (text only;
    /// 0 for binary), so record errors report absolute line numbers.
    line: u64,
}

/// An opened trace: parsed header plus an index of the thread blocks.
#[derive(Debug, Clone)]
pub struct TraceFile {
    meta: TraceMeta,
    format: TraceFormat,
    source: Source,
    blocks: Vec<ThreadBlock>,
}

impl TraceFile {
    /// Opens and indexes a trace file, auto-detecting binary vs. text.
    ///
    /// # Errors
    ///
    /// See [`TraceError`]; notably [`TraceError::BadMagic`],
    /// [`TraceError::UnsupportedVersion`] and [`TraceError::Truncated`],
    /// each carrying the offending byte offset.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let source = Source::File(path.as_ref().to_path_buf());
        Self::index(source)
    }

    /// Indexes a trace held in memory (used by tests and benches).
    ///
    /// # Errors
    ///
    /// See [`TraceFile::open`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TraceError> {
        Self::index(Source::Memory(Arc::new(bytes)))
    }

    fn index(source: Source) -> Result<Self, TraceError> {
        let mut r = source.reader_at(0)?;
        let mut offset = 0u64;
        let mut magic = [0u8; 4];
        read_exact(&mut r, &mut magic, &mut offset, "trace magic")?;
        if magic == BINARY_MAGIC {
            let (meta, blocks) = index_binary(&mut r, &mut offset)?;
            Ok(TraceFile {
                meta,
                format: TraceFormat::Binary,
                source,
                blocks,
            })
        } else if TEXT_MAGIC_LINE.as_bytes().starts_with(&magic) {
            let (meta, blocks) = index_text(&mut r, &magic)?;
            Ok(TraceFile {
                meta,
                format: TraceFormat::Text,
                source,
                blocks,
            })
        } else {
            Err(TraceError::BadMagic {
                offset: 0,
                found: magic,
            })
        }
    }

    /// The trace's header metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Which on-disk format the trace uses.
    #[must_use]
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// Opens a streaming iterator over `thread`'s references.
    ///
    /// # Errors
    ///
    /// [`TraceError::ThreadOutOfRange`] for a bad index, [`TraceError::Io`]
    /// if the source cannot be reopened.
    pub fn thread(&self, thread: usize) -> Result<ThreadRefs, TraceError> {
        let block = *self
            .blocks
            .get(thread)
            .ok_or(TraceError::ThreadOutOfRange {
                thread,
                threads: self.meta.threads,
            })?;
        let reader = self.source.reader_at(block.records_at)?;
        Ok(ThreadRefs {
            reader,
            format: self.format,
            offset: block.records_at,
            end_offset: block.body_len.map(|len| block.records_at + len),
            line: block.line,
            prev_addr: 0,
            done: false,
            buf: Vec::new(),
        })
    }

    /// Fully decodes every record of every thread, verifying block lengths,
    /// and returns the per-thread record counts.
    ///
    /// This is the cheap way to reject a corrupt trace up front: it streams
    /// the whole file once without retaining anything.
    ///
    /// # Errors
    ///
    /// The first [`TraceError`] encountered, with its byte offset.
    pub fn validate(&self) -> Result<Vec<u64>, TraceError> {
        let mut counts = Vec::with_capacity(self.meta.threads);
        for t in 0..self.meta.threads {
            let mut refs = self.thread(t)?;
            let mut n = 0u64;
            for r in &mut refs {
                r?;
                n += 1;
            }
            counts.push(n);
        }
        Ok(counts)
    }
}

/// Parses the binary header and block index; `offset` is positioned just
/// past the magic on entry. Block bodies are seeked over, not read, so
/// opening a large trace costs only its header and block index.
fn index_binary(
    r: &mut (impl Read + Seek),
    offset: &mut u64,
) -> Result<(TraceMeta, Vec<ThreadBlock>), TraceError> {
    let version_at = *offset;
    let mut version = [0u8; 2];
    read_exact(r, &mut version, offset, "format version")?;
    let version = u16::from_le_bytes(version);
    if version != FORMAT_VERSION {
        return Err(TraceError::UnsupportedVersion {
            offset: version_at,
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut flags = [0u8; 1];
    read_exact(r, &mut flags, offset, "header flags")?;
    let mut seed = [0u8; 8];
    read_exact(r, &mut seed, offset, "workload seed")?;
    let seed = u64::from_le_bytes(seed);
    let threads_at = *offset;
    let threads = read_varint(r, offset, "thread count")?;
    let threads = usize::try_from(threads).map_err(|_| TraceError::Corrupt {
        offset: threads_at,
        reason: format!("thread count {threads} does not fit a usize"),
    })?;
    if threads == 0 {
        return Err(TraceError::Corrupt {
            offset: threads_at,
            reason: "thread count is zero".into(),
        });
    }
    let name_at = *offset;
    let name_len = read_varint(r, offset, "workload name length")?;
    if name_len > 4096 {
        return Err(TraceError::Corrupt {
            offset: name_at,
            reason: format!("workload name of {name_len} bytes is implausibly long"),
        });
    }
    let mut name = vec![0u8; name_len as usize];
    read_exact(r, &mut name, offset, "workload name")?;
    let workload = String::from_utf8(name).map_err(|_| TraceError::Corrupt {
        offset: name_at,
        reason: "workload name is not UTF-8".into(),
    })?;

    let mut blocks: Vec<Option<ThreadBlock>> = vec![None; threads];
    for _ in 0..threads {
        let id_at = *offset;
        let thread = read_varint(r, offset, "thread block id")?;
        let thread = usize::try_from(thread).ok().filter(|&t| t < threads);
        let Some(thread) = thread else {
            return Err(TraceError::Corrupt {
                offset: id_at,
                reason: format!("thread block id out of range (trace has {threads} threads)"),
            });
        };
        let body_len = read_varint(r, offset, "thread block length")?;
        if blocks[thread].is_some() {
            return Err(TraceError::Corrupt {
                offset: id_at,
                reason: format!("duplicate block for thread {thread}"),
            });
        }
        blocks[thread] = Some(ThreadBlock {
            records_at: *offset,
            body_len: Some(body_len),
            line: 0,
        });
        skip(r, body_len, offset)?;
    }
    // Seeking past EOF succeeds silently, so compare the expected end
    // position against the actual size: a shortfall is truncation, an
    // excess is trailing garbage.
    let size = r
        .seek(SeekFrom::End(0))
        .map_err(|e| TraceError::io(*offset, &e))?;
    if size < *offset {
        return Err(TraceError::Truncated {
            offset: size,
            expected: "thread block body",
        });
    }
    if size > *offset {
        return Err(TraceError::Corrupt {
            offset: *offset,
            reason: "trailing data after the last thread block".into(),
        });
    }
    let blocks = blocks
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .expect("every thread id 0..threads was seen exactly once");
    Ok((TraceMeta::new(workload, threads, seed), blocks))
}

/// Seeks `len` bytes forward without reading them. A length beyond EOF is
/// only detected afterwards (see the size check in [`index_binary`]).
fn skip(r: &mut (impl Read + Seek), len: u64, offset: &mut u64) -> Result<(), TraceError> {
    let step = i64::try_from(len).map_err(|_| TraceError::Corrupt {
        offset: *offset,
        reason: format!("thread block length {len} is implausibly large"),
    })?;
    r.seek_relative(step)
        .map_err(|e| TraceError::io(*offset, &e))?;
    *offset += len;
    Ok(())
}

/// One header line of the text format: `key <value>`.
fn text_header_line<'a>(
    line: &'a str,
    key: &'static str,
    offset: u64,
    line_no: u64,
) -> Result<&'a str, TraceError> {
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(' '))
        .map(str::trim)
        .filter(|v| !v.is_empty())
        .ok_or_else(|| TraceError::Parse {
            offset,
            line: line_no,
            reason: format!("expected `{key} <value>`, found `{line}`"),
        })
}

/// A line-by-line scanner over the text format tracking byte offsets.
struct TextLines<'a> {
    r: &'a mut dyn Read,
    /// Byte offset of the *start* of the most recently returned line.
    line_start: u64,
    offset: u64,
    line_no: u64,
    buf: Vec<u8>,
}

impl<'a> TextLines<'a> {
    fn new(r: &'a mut dyn Read, offset: u64, line_no: u64) -> Self {
        TextLines {
            r,
            line_start: offset,
            offset,
            line_no,
            buf: Vec::new(),
        }
    }

    /// Reuses an existing line buffer (so per-record decoding does not
    /// allocate).
    fn with_buf(mut self, buf: Vec<u8>) -> Self {
        self.buf = buf;
        self
    }

    /// Reads up to the next non-blank, non-comment line into `self.buf` and
    /// returns the byte range of its trimmed content, or `None` at EOF.
    fn next_span(&mut self) -> Result<Option<(usize, usize)>, TraceError> {
        loop {
            self.line_start = self.offset;
            self.buf.clear();
            // Read a single line byte-by-byte; the caller hands us a
            // buffered reader, so this is cheap.
            let mut byte = [0u8; 1];
            loop {
                match self.r.read(&mut byte) {
                    Ok(0) => break,
                    Ok(_) => {
                        self.offset += 1;
                        if byte[0] == b'\n' {
                            break;
                        }
                        self.buf.push(byte[0]);
                    }
                    Err(e) => return Err(TraceError::io(self.offset, &e)),
                }
            }
            if self.buf.is_empty() && self.offset == self.line_start {
                return Ok(None); // clean EOF
            }
            self.line_no += 1;
            let line = std::str::from_utf8(&self.buf).map_err(|_| TraceError::Parse {
                offset: self.line_start,
                line: self.line_no,
                reason: "line is not UTF-8".into(),
            })?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let start = trimmed.as_ptr() as usize - line.as_ptr() as usize;
            return Ok(Some((start, start + trimmed.len())));
        }
    }

    /// The span returned by [`TextLines::next_span`], as a `&str` (the
    /// bytes were already UTF-8 validated there).
    fn span_str(&self, (start, end): (usize, usize)) -> &str {
        std::str::from_utf8(&self.buf[start..end]).expect("validated by next_span")
    }

    /// Returns the next non-blank, non-comment line, trimmed, or `None` at
    /// EOF (header parsing, where the allocation is irrelevant).
    fn next_line(&mut self) -> Result<Option<String>, TraceError> {
        Ok(self.next_span()?.map(|span| self.span_str(span).to_owned()))
    }
}

/// Parses the text header and block index; `magic` holds the first four
/// bytes, already consumed.
fn index_text(
    r: &mut impl Read,
    magic: &[u8; 4],
) -> Result<(TraceMeta, Vec<ThreadBlock>), TraceError> {
    // Re-assemble the first line: 4 magic bytes + the rest.
    let mut first = Vec::from(&magic[..]);
    let mut byte = [0u8; 1];
    let mut offset = 4u64;
    loop {
        match r.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                offset += 1;
                if byte[0] == b'\n' {
                    break;
                }
                first.push(byte[0]);
            }
            Err(e) => return Err(TraceError::io(offset, &e)),
        }
    }
    let first = String::from_utf8(first).map_err(|_| TraceError::Parse {
        offset: 0,
        line: 1,
        reason: "header line is not UTF-8".into(),
    })?;
    if first.trim_end() != TEXT_MAGIC_LINE {
        // A text file that merely resembles the magic: report a version
        // mismatch only when it actually declares a different version;
        // everything else is a malformed header line.
        let declared: Option<u16> = first
            .trim_end()
            .strip_prefix("# refrint-trace v")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|v| v.parse().ok());
        return Err(match declared {
            Some(version) if version != FORMAT_VERSION => TraceError::UnsupportedVersion {
                offset: 0,
                found: version,
                supported: FORMAT_VERSION,
            },
            _ => TraceError::Parse {
                offset: 0,
                line: 1,
                reason: format!(
                    "bad text trace header `{}` (expected `{TEXT_MAGIC_LINE}`)",
                    first.trim_end()
                ),
            },
        });
    }

    let mut lines = TextLines::new(r, offset, 1);
    let header = |lines: &mut TextLines<'_>, key: &'static str| -> Result<String, TraceError> {
        let line = lines.next_line()?.ok_or(TraceError::Truncated {
            offset: lines.offset,
            expected: "text trace header",
        })?;
        text_header_line(&line, key, lines.line_start, lines.line_no).map(str::to_owned)
    };
    let workload = header(&mut lines, "workload")?;
    let seed_text = header(&mut lines, "seed")?;
    let seed: u64 = seed_text.parse().map_err(|_| TraceError::Parse {
        offset: lines.line_start,
        line: lines.line_no,
        reason: format!("bad seed `{seed_text}`"),
    })?;
    let threads_text = header(&mut lines, "threads")?;
    let threads: usize = threads_text
        .parse()
        .ok()
        .filter(|&t| t > 0)
        .ok_or_else(|| TraceError::Parse {
            offset: lines.line_start,
            line: lines.line_no,
            reason: format!("bad thread count `{threads_text}`"),
        })?;

    let mut blocks: Vec<Option<ThreadBlock>> = vec![None; threads];
    for _ in 0..threads {
        let line = lines.next_line()?.ok_or(TraceError::Truncated {
            offset: lines.offset,
            expected: "a `thread <t>` section",
        })?;
        let value = text_header_line(&line, "thread", lines.line_start, lines.line_no)?;
        let thread = value
            .parse::<usize>()
            .ok()
            .filter(|&t| t < threads)
            .ok_or_else(|| TraceError::Parse {
                offset: lines.line_start,
                line: lines.line_no,
                reason: format!("thread id `{value}` out of range (trace has {threads} threads)"),
            })?;
        if blocks[thread].is_some() {
            return Err(TraceError::Parse {
                offset: lines.line_start,
                line: lines.line_no,
                reason: format!("duplicate section for thread {thread}"),
            });
        }
        blocks[thread] = Some(ThreadBlock {
            records_at: lines.offset,
            body_len: None,
            line: lines.line_no,
        });
        // Skip this section's records up to its `end` line.
        loop {
            let line = lines.next_line()?.ok_or(TraceError::Truncated {
                offset: lines.offset,
                expected: "an `end` line",
            })?;
            if line == "end" {
                break;
            }
            if !line.starts_with('+') {
                return Err(TraceError::Parse {
                    offset: lines.line_start,
                    line: lines.line_no,
                    reason: format!("expected a `+<gap> R|W 0x<addr>` record or `end`: `{line}`"),
                });
            }
        }
    }
    if let Some(line) = lines.next_line()? {
        return Err(TraceError::Parse {
            offset: lines.line_start,
            line: lines.line_no,
            reason: format!("trailing content after the last thread section: `{line}`"),
        });
    }
    let blocks = blocks
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .expect("every thread id 0..threads was seen exactly once");
    Ok((TraceMeta::new(workload, threads, seed), blocks))
}

/// A streaming iterator over one thread's references.
///
/// Yields `Result` so a file that goes bad mid-stream surfaces a typed
/// [`TraceError`] instead of panicking; after the first error (or the
/// terminator) the iterator is exhausted.
pub struct ThreadRefs {
    reader: Box<dyn TraceRead>,
    format: TraceFormat,
    /// Absolute byte offset of the next unread byte.
    offset: u64,
    /// Absolute end of the records region (binary only).
    end_offset: Option<u64>,
    line: u64,
    prev_addr: u64,
    done: bool,
    /// Reusable line buffer (text only), so decoding is allocation-free.
    buf: Vec<u8>,
}

impl std::fmt::Debug for ThreadRefs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRefs")
            .field("format", &self.format)
            .field("offset", &self.offset)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl ThreadRefs {
    fn next_binary(&mut self) -> Result<Option<MemRef>, TraceError> {
        let tag = read_varint(&mut self.reader, &mut self.offset, "record tag")?;
        if tag == 0 {
            if let Some(end) = self.end_offset {
                if self.offset != end {
                    return Err(TraceError::Corrupt {
                        offset: self.offset,
                        reason: format!(
                            "thread block ended at byte {} but its header declared byte {end}",
                            self.offset
                        ),
                    });
                }
            }
            return Ok(None);
        }
        if let Some(end) = self.end_offset {
            if self.offset > end {
                return Err(TraceError::Corrupt {
                    offset: self.offset,
                    reason: "records run past the declared thread block length".into(),
                });
            }
        }
        let payload = tag - 1;
        let gap_cycles = payload >> 1;
        let kind = if payload & 1 == 1 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let delta = zigzag_decode(read_varint(
            &mut self.reader,
            &mut self.offset,
            "address delta",
        )?);
        let addr = self.prev_addr.wrapping_add(delta as u64);
        self.prev_addr = addr;
        Ok(Some(MemRef::new(gap_cycles, Addr::new(addr), kind)))
    }

    fn next_text(&mut self) -> Result<Option<MemRef>, TraceError> {
        let mut lines = TextLines::new(&mut self.reader, self.offset, self.line)
            .with_buf(std::mem::take(&mut self.buf));
        let result = match lines.next_span()? {
            None => Err(TraceError::Truncated {
                offset: lines.offset,
                expected: "an `end` line",
            }),
            Some(span) => {
                let line = lines.span_str(span);
                if line == "end" {
                    Ok(None)
                } else {
                    parse_text_record(line, lines.line_start, lines.line_no).map(Some)
                }
            }
        };
        self.offset = lines.offset;
        self.line = lines.line_no;
        self.buf = std::mem::take(&mut lines.buf);
        result
    }
}

/// Parses one `+<gap> R|W 0x<addr>` record line.
fn parse_text_record(line: &str, offset: u64, line_no: u64) -> Result<MemRef, TraceError> {
    let err = |reason: String| TraceError::Parse {
        offset,
        line: line_no,
        reason,
    };
    let mut parts = line.split_whitespace();
    let gap = parts
        .next()
        .and_then(|g| g.strip_prefix('+'))
        .and_then(|g| g.parse::<u64>().ok())
        .ok_or_else(|| err(format!("expected `+<gap>` first in `{line}`")))?;
    let kind = match parts.next() {
        Some("R") => AccessKind::Read,
        Some("W") => AccessKind::Write,
        other => return Err(err(format!("expected `R` or `W`, found `{other:?}`"))),
    };
    let addr = parts
        .next()
        .and_then(|a| a.strip_prefix("0x"))
        .and_then(|a| u64::from_str_radix(a, 16).ok())
        .ok_or_else(|| err(format!("expected a `0x<hex>` address in `{line}`")))?;
    if parts.next().is_some() {
        return Err(err(format!("trailing tokens in `{line}`")));
    }
    Ok(MemRef::new(gap, Addr::new(addr), kind))
}

impl Iterator for ThreadRefs {
    type Item = Result<MemRef, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let next = match self.format {
            TraceFormat::Binary => self.next_binary(),
            TraceFormat::Text => self.next_text(),
        };
        match next {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{TextTraceWriter, TraceSink, TraceWriter};

    fn sample_refs() -> Vec<Vec<MemRef>> {
        vec![
            vec![
                MemRef::new(3, Addr::new(0x40), AccessKind::Read),
                MemRef::new(0, Addr::new(0x80), AccessKind::Write),
                MemRef::new(12, Addr::new(0x40), AccessKind::Read),
            ],
            vec![MemRef::new(1, Addr::new(0xdead_beef), AccessKind::Write)],
        ]
    }

    fn write_binary(refs: &[Vec<MemRef>]) -> Vec<u8> {
        let meta = TraceMeta::new("sample", refs.len(), 99);
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        for (t, thread) in refs.iter().enumerate() {
            w.begin_thread(t).unwrap();
            for r in thread {
                w.record(r).unwrap();
            }
            w.end_thread().unwrap();
        }
        w.into_inner().unwrap()
    }

    fn write_text(refs: &[Vec<MemRef>]) -> Vec<u8> {
        let meta = TraceMeta::new("sample", refs.len(), 99);
        let mut w = TextTraceWriter::new(Vec::new(), &meta).unwrap();
        for (t, thread) in refs.iter().enumerate() {
            w.begin_thread(t).unwrap();
            for r in thread {
                w.record(r).unwrap();
            }
            w.end_thread().unwrap();
        }
        w.into_inner().unwrap()
    }

    fn read_all(trace: &TraceFile) -> Vec<Vec<MemRef>> {
        (0..trace.meta().threads)
            .map(|t| trace.thread(t).unwrap().map(Result::unwrap).collect())
            .collect()
    }

    #[test]
    fn binary_round_trips() {
        let refs = sample_refs();
        let trace = TraceFile::from_bytes(write_binary(&refs)).unwrap();
        assert_eq!(trace.format(), TraceFormat::Binary);
        assert_eq!(trace.meta().workload, "sample");
        assert_eq!(trace.meta().seed, 99);
        assert_eq!(read_all(&trace), refs);
        assert_eq!(trace.validate().unwrap(), vec![3, 1]);
    }

    #[test]
    fn text_round_trips() {
        let refs = sample_refs();
        let trace = TraceFile::from_bytes(write_text(&refs)).unwrap();
        assert_eq!(trace.format(), TraceFormat::Text);
        assert_eq!(read_all(&trace), refs);
        assert_eq!(trace.validate().unwrap(), vec![3, 1]);
    }

    #[test]
    fn thread_iterators_are_independent() {
        let refs = sample_refs();
        let trace = TraceFile::from_bytes(write_binary(&refs)).unwrap();
        let mut a = trace.thread(0).unwrap();
        let mut b = trace.thread(1).unwrap();
        // Interleave the two cursors.
        assert_eq!(b.next().unwrap().unwrap(), refs[1][0]);
        assert_eq!(a.next().unwrap().unwrap(), refs[0][0]);
        assert_eq!(a.next().unwrap().unwrap(), refs[0][1]);
        assert!(b.next().is_none());
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = TraceFile::from_bytes(b"ELF\x7f....".to_vec()).unwrap_err();
        assert_eq!(
            err,
            TraceError::BadMagic {
                offset: 0,
                found: *b"ELF\x7f"
            }
        );
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = write_binary(&sample_refs());
        bytes[4] = 0x2a; // version 42
        let err = TraceFile::from_bytes(bytes).unwrap_err();
        assert_eq!(
            err,
            TraceError::UnsupportedVersion {
                offset: 4,
                found: 42,
                supported: FORMAT_VERSION
            }
        );
        let err =
            TraceFile::from_bytes(b"# refrint-trace v9 text\nworkload x\n".to_vec()).unwrap_err();
        assert!(
            matches!(err, TraceError::UnsupportedVersion { found: 9, .. }),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_typed_with_an_offset() {
        let bytes = write_binary(&sample_refs());
        for cut in [2, 6, 10, 20, bytes.len() - 1] {
            let err = match TraceFile::from_bytes(bytes[..cut].to_vec()) {
                Err(e) => e,
                // Cuts inside a block body surface when the records are
                // actually decoded.
                Ok(trace) => trace.validate().unwrap_err(),
            };
            match err {
                TraceError::Truncated { offset, .. } => assert!(offset <= cut as u64),
                TraceError::Corrupt { .. } => {}
                other => panic!("cut at {cut}: unexpected error {other}"),
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = write_binary(&sample_refs());
        bytes.push(0x00);
        let err = TraceFile::from_bytes(bytes).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn block_length_mismatch_is_corrupt() {
        let mut bytes = write_binary(&sample_refs());
        // The header is magic(4) + version(2) + flags(1) + seed(8) +
        // threads varint(1) + name-length varint(1) + "sample"(6) = 23
        // bytes; byte 23 is thread 0's id and byte 24 its body length.
        // Shrinking the length desynchronizes the block index.
        bytes[24] -= 2;
        let err = match TraceFile::from_bytes(bytes) {
            Err(e) => e,
            Ok(t) => t.validate().unwrap_err(),
        };
        assert!(
            matches!(
                err,
                TraceError::Corrupt { .. } | TraceError::Truncated { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn text_parse_errors_carry_line_and_offset() {
        let text =
            format!("{TEXT_MAGIC_LINE}\nworkload x\nseed 1\nthreads 1\nthread 0\n+3 Q 0x40\nend\n");
        let trace = TraceFile::from_bytes(text.into_bytes());
        // The bad record is discovered at index time (scanning accepts any
        // `+` line) or at decode time; exercise decode.
        let trace = trace.unwrap();
        let err = trace.validate().unwrap_err();
        match err {
            TraceError::Parse { line, reason, .. } => {
                assert_eq!(line, 6);
                assert!(reason.contains('Q'), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn text_missing_end_is_truncated() {
        let text =
            format!("{TEXT_MAGIC_LINE}\nworkload x\nseed 1\nthreads 1\nthread 0\n+3 R 0x40\n");
        let err = TraceFile::from_bytes(text.into_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Truncated { .. }), "{err}");
    }

    #[test]
    fn out_of_range_thread_is_typed() {
        let trace = TraceFile::from_bytes(write_binary(&sample_refs())).unwrap();
        let err = trace.thread(7).unwrap_err();
        assert_eq!(
            err,
            TraceError::ThreadOutOfRange {
                thread: 7,
                threads: 2
            }
        );
    }

    #[test]
    fn text_tolerates_comments_and_blank_lines() {
        let text = format!(
            "{TEXT_MAGIC_LINE}\n# provenance: unit test\n\nworkload x\nseed 1\nthreads 1\n\
             thread 0\n# a comment\n+3 R 0x40\n\nend\n"
        );
        let trace = TraceFile::from_bytes(text.into_bytes()).unwrap();
        assert_eq!(trace.validate().unwrap(), vec![1]);
    }
}
