//! Streaming trace writers.
//!
//! [`TraceWriter`] emits the compact binary format; [`TextTraceWriter`]
//! emits the human-readable mirror. Both implement [`TraceSink`], the
//! capture-side interface: threads are written in order, one at a time, and
//! only the current thread's encoded block is buffered (the binary block
//! header carries the block's byte length, which is only known once the
//! thread ends) — the whole trace never lives in memory.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use refrint_workloads::trace::{AccessKind, MemRef};

use crate::error::TraceError;
use crate::format::{
    push_varint, zigzag_encode, TraceMeta, BINARY_MAGIC, FORMAT_VERSION, MAX_GAP_CYCLES,
    TEXT_MAGIC_LINE,
};

/// The capture-side interface: a sequence of
/// `begin_thread(0..threads) / record* / end_thread` calls followed by one
/// `finish`. Implemented by both on-disk formats.
pub trait TraceSink {
    /// Starts the block for `thread`. Threads must be written in order,
    /// starting at 0.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidMeta`] on out-of-order threads, [`TraceError::Io`]
    /// on write failures.
    fn begin_thread(&mut self, thread: usize) -> Result<(), TraceError>;

    /// Appends one reference to the current thread's block.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidMeta`] outside a thread block or for a gap
    /// beyond [`MAX_GAP_CYCLES`], [`TraceError::Io`] on write failures.
    fn record(&mut self, r: &MemRef) -> Result<(), TraceError>;

    /// Ends the current thread's block.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidMeta`] outside a thread block, [`TraceError::Io`]
    /// on write failures.
    fn end_thread(&mut self) -> Result<(), TraceError>;

    /// Completes the trace. Every declared thread must have been written.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidMeta`] if threads are missing, [`TraceError::Io`]
    /// on flush failures.
    fn finish(&mut self) -> Result<(), TraceError>;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterState {
    /// Waiting for `begin_thread(next)`.
    Between {
        next: usize,
    },
    /// Inside the block of `thread`.
    InThread {
        thread: usize,
    },
    Finished,
}

fn check_gap(r: &MemRef) -> Result<(), TraceError> {
    if r.gap_cycles > MAX_GAP_CYCLES {
        return Err(TraceError::InvalidMeta {
            reason: format!(
                "gap of {} cycles exceeds the encodable maximum {MAX_GAP_CYCLES}",
                r.gap_cycles
            ),
        });
    }
    Ok(())
}

fn begin_check(state: WriterState, thread: usize, threads: usize) -> Result<(), TraceError> {
    if thread >= threads {
        return Err(TraceError::InvalidMeta {
            reason: format!("thread {thread} out of range for a {threads}-thread trace header"),
        });
    }
    match state {
        WriterState::Between { next } if next == thread => Ok(()),
        WriterState::Between { next } => Err(TraceError::InvalidMeta {
            reason: format!("threads must be written in order: expected {next}, got {thread}"),
        }),
        WriterState::InThread { thread: t } => Err(TraceError::InvalidMeta {
            reason: format!("begin_thread({thread}) while thread {t} is still open"),
        }),
        WriterState::Finished => Err(TraceError::InvalidMeta {
            reason: "begin_thread after finish".into(),
        }),
    }
}

fn in_thread(state: WriterState, what: &str) -> Result<usize, TraceError> {
    match state {
        WriterState::InThread { thread } => Ok(thread),
        _ => Err(TraceError::InvalidMeta {
            reason: format!("{what} outside a thread block"),
        }),
    }
}

fn finish_check(state: WriterState, threads: usize) -> Result<(), TraceError> {
    match state {
        WriterState::Between { next } if next == threads => Ok(()),
        WriterState::Between { next } => Err(TraceError::InvalidMeta {
            reason: format!("finish with only {next} of {threads} threads written"),
        }),
        WriterState::InThread { thread } => Err(TraceError::InvalidMeta {
            reason: format!("finish while thread {thread} is still open"),
        }),
        WriterState::Finished => Err(TraceError::InvalidMeta {
            reason: "finish called twice".into(),
        }),
    }
}

// ------------------------------------------------------------------ //
// Binary writer
// ------------------------------------------------------------------ //

/// Streaming writer for the binary trace format.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    threads: usize,
    state: WriterState,
    /// Encoded records of the current thread block (flushed at
    /// `end_thread`, when the block length is known).
    block: Vec<u8>,
    prev_addr: u64,
    written: u64,
    records: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates `path` and writes the binary header for `meta`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be created,
    /// [`TraceError::InvalidMeta`] for a zero-thread header.
    pub fn create(path: impl AsRef<Path>, meta: &TraceMeta) -> Result<Self, TraceError> {
        let file = File::create(path).map_err(|e| TraceError::io(0, &e))?;
        Self::new(BufWriter::new(file), meta)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out` and writes the binary header for `meta`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on write failures, [`TraceError::InvalidMeta`]
    /// for a zero-thread header.
    pub fn new(out: W, meta: &TraceMeta) -> Result<Self, TraceError> {
        meta.validate()?;
        let mut header = Vec::with_capacity(32 + meta.workload.len());
        header.extend_from_slice(&BINARY_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.push(0); // flags, reserved
        header.extend_from_slice(&meta.seed.to_le_bytes());
        push_varint(&mut header, meta.threads as u64);
        push_varint(&mut header, meta.workload.len() as u64);
        header.extend_from_slice(meta.workload.as_bytes());
        let mut writer = TraceWriter {
            out,
            threads: meta.threads,
            state: WriterState::Between { next: 0 },
            block: Vec::new(),
            prev_addr: 0,
            written: 0,
            records: 0,
        };
        writer.write_all(&header)?;
        Ok(writer)
    }

    /// Total references written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finishes the trace and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// See [`TraceSink::finish`].
    pub fn into_inner(mut self) -> Result<W, TraceError> {
        if self.state != WriterState::Finished {
            TraceSink::finish(&mut self)?;
        }
        Ok(self.out)
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.out
            .write_all(bytes)
            .map_err(|e| TraceError::io(self.written, &e))?;
        self.written += bytes.len() as u64;
        Ok(())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn begin_thread(&mut self, thread: usize) -> Result<(), TraceError> {
        begin_check(self.state, thread, self.threads)?;
        self.state = WriterState::InThread { thread };
        self.prev_addr = 0;
        self.block.clear();
        Ok(())
    }

    fn record(&mut self, r: &MemRef) -> Result<(), TraceError> {
        in_thread(self.state, "record")?;
        check_gap(r)?;
        let tag = ((r.gap_cycles << 1) | u64::from(r.is_write())) + 1;
        push_varint(&mut self.block, tag);
        let delta = r.addr.raw().wrapping_sub(self.prev_addr) as i64;
        push_varint(&mut self.block, zigzag_encode(delta));
        self.prev_addr = r.addr.raw();
        self.records += 1;
        Ok(())
    }

    fn end_thread(&mut self) -> Result<(), TraceError> {
        let thread = in_thread(self.state, "end_thread")?;
        self.block.push(0); // record terminator
        let mut head = Vec::with_capacity(12);
        push_varint(&mut head, thread as u64);
        push_varint(&mut head, self.block.len() as u64);
        self.write_all(&head)?;
        let block = std::mem::take(&mut self.block);
        self.write_all(&block)?;
        self.state = WriterState::Between { next: thread + 1 };
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        finish_check(self.state, self.threads)?;
        self.out
            .flush()
            .map_err(|e| TraceError::io(self.written, &e))?;
        self.state = WriterState::Finished;
        Ok(())
    }
}

// ------------------------------------------------------------------ //
// Text writer
// ------------------------------------------------------------------ //

/// Streaming writer for the human-readable text format.
#[derive(Debug)]
pub struct TextTraceWriter<W: Write> {
    out: W,
    threads: usize,
    state: WriterState,
    written: u64,
    records: u64,
}

impl TextTraceWriter<BufWriter<File>> {
    /// Creates `path` and writes the text header for `meta`.
    ///
    /// # Errors
    ///
    /// See [`TraceWriter::create`].
    pub fn create(path: impl AsRef<Path>, meta: &TraceMeta) -> Result<Self, TraceError> {
        let file = File::create(path).map_err(|e| TraceError::io(0, &e))?;
        Self::new(BufWriter::new(file), meta)
    }
}

impl<W: Write> TextTraceWriter<W> {
    /// Wraps `out` and writes the text header for `meta`.
    ///
    /// # Errors
    ///
    /// See [`TraceWriter::new`].
    pub fn new(out: W, meta: &TraceMeta) -> Result<Self, TraceError> {
        meta.validate()?;
        let mut writer = TextTraceWriter {
            out,
            threads: meta.threads,
            state: WriterState::Between { next: 0 },
            written: 0,
            records: 0,
        };
        writer.write_line(&format!(
            "{TEXT_MAGIC_LINE}\nworkload {}\nseed {}\nthreads {}",
            meta.workload, meta.seed, meta.threads
        ))?;
        Ok(writer)
    }

    /// Total references written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Finishes the trace and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// See [`TraceSink::finish`].
    pub fn into_inner(mut self) -> Result<W, TraceError> {
        if self.state != WriterState::Finished {
            TraceSink::finish(&mut self)?;
        }
        Ok(self.out)
    }

    fn write_line(&mut self, line: &str) -> Result<(), TraceError> {
        self.out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .map_err(|e| TraceError::io(self.written, &e))?;
        self.written += line.len() as u64 + 1;
        Ok(())
    }
}

impl<W: Write> TraceSink for TextTraceWriter<W> {
    fn begin_thread(&mut self, thread: usize) -> Result<(), TraceError> {
        begin_check(self.state, thread, self.threads)?;
        self.state = WriterState::InThread { thread };
        self.write_line(&format!("thread {thread}"))
    }

    fn record(&mut self, r: &MemRef) -> Result<(), TraceError> {
        in_thread(self.state, "record")?;
        check_gap(r)?;
        let kind = match r.kind {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        };
        self.records += 1;
        self.write_line(&format!("+{} {} {:#x}", r.gap_cycles, kind, r.addr.raw()))
    }

    fn end_thread(&mut self) -> Result<(), TraceError> {
        let thread = in_thread(self.state, "end_thread")?;
        self.write_line("end")?;
        self.state = WriterState::Between { next: thread + 1 };
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        finish_check(self.state, self.threads)?;
        self.out
            .flush()
            .map_err(|e| TraceError::io(self.written, &e))?;
        self.state = WriterState::Finished;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_mem::addr::Addr;

    fn meta() -> TraceMeta {
        TraceMeta::new("unit", 2, 7)
    }

    fn r(gap: u64, addr: u64, write: bool) -> MemRef {
        MemRef::new(
            gap,
            Addr::new(addr),
            if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        )
    }

    #[test]
    fn binary_writer_emits_header_and_blocks() {
        let mut w = TraceWriter::new(Vec::new(), &meta()).unwrap();
        w.begin_thread(0).unwrap();
        w.record(&r(3, 0x40, false)).unwrap();
        w.record(&r(0, 0x80, true)).unwrap();
        w.end_thread().unwrap();
        w.begin_thread(1).unwrap();
        w.end_thread().unwrap();
        assert_eq!(w.records(), 2);
        let bytes = w.into_inner().unwrap();
        assert_eq!(&bytes[..4], b"RFRT");
        assert_eq!(bytes[4..6], FORMAT_VERSION.to_le_bytes());
    }

    #[test]
    fn out_of_order_threads_are_rejected() {
        let mut w = TraceWriter::new(Vec::new(), &meta()).unwrap();
        let err = w.begin_thread(1).unwrap_err();
        assert!(matches!(err, TraceError::InvalidMeta { .. }), "{err}");
        w.begin_thread(0).unwrap();
        let err = w.begin_thread(1).unwrap_err();
        assert!(err.to_string().contains("still open"), "{err}");
    }

    #[test]
    fn records_outside_blocks_are_rejected() {
        let mut w = TraceWriter::new(Vec::new(), &meta()).unwrap();
        assert!(w.record(&r(0, 0, false)).is_err());
        assert!(TraceSink::end_thread(&mut w).is_err());
    }

    #[test]
    fn finish_requires_every_thread() {
        let mut w = TraceWriter::new(Vec::new(), &meta()).unwrap();
        w.begin_thread(0).unwrap();
        w.end_thread().unwrap();
        let err = TraceSink::finish(&mut w).unwrap_err();
        assert!(err.to_string().contains("1 of 2"), "{err}");
    }

    #[test]
    fn oversized_gaps_are_rejected() {
        let mut w = TraceWriter::new(Vec::new(), &meta()).unwrap();
        w.begin_thread(0).unwrap();
        let err = w.record(&r(u64::MAX, 0, false)).unwrap_err();
        assert!(matches!(err, TraceError::InvalidMeta { .. }), "{err}");
    }

    #[test]
    fn text_writer_emits_readable_lines() {
        let mut w = TextTraceWriter::new(Vec::new(), &meta()).unwrap();
        w.begin_thread(0).unwrap();
        w.record(&r(3, 0x40, true)).unwrap();
        w.end_thread().unwrap();
        w.begin_thread(1).unwrap();
        w.end_thread().unwrap();
        let text = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert!(text.starts_with(TEXT_MAGIC_LINE));
        assert!(text.contains("workload unit"));
        assert!(text.contains("thread 0"));
        assert!(text.contains("+3 W 0x40"));
        assert!(text.contains("end"));
    }

    #[test]
    fn zero_thread_meta_is_rejected() {
        assert!(TraceWriter::new(Vec::new(), &TraceMeta::new("x", 0, 0)).is_err());
        assert!(TextTraceWriter::new(Vec::new(), &TraceMeta::new("x", 0, 0)).is_err());
    }
}
