//! Capturing synthetic workloads to traces.

use refrint_workloads::generator::ThreadStream;
use refrint_workloads::model::WorkloadModel;

use crate::error::TraceError;
use crate::writer::TraceSink;

/// Streams every thread of `model` (seeded from `seed`, exactly as the
/// simulator would generate them) into `sink` and finishes the trace.
/// Returns the number of references written.
///
/// The sink's header must declare `model.threads` threads; pair it with a
/// [`crate::TraceMeta`] built from the same model.
///
/// # Errors
///
/// [`TraceError::InvalidMeta`] if the model fails validation or its thread
/// count disagrees with the sink's; otherwise whatever the sink reports.
pub fn capture_model(
    model: &WorkloadModel,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<u64, TraceError> {
    model.validate().map_err(|e| TraceError::InvalidMeta {
        reason: e.to_string(),
    })?;
    let mut records = 0u64;
    for thread in 0..model.threads {
        sink.begin_thread(thread)?;
        for r in ThreadStream::new(model, thread, seed) {
            sink.record(&r)?;
            records += 1;
        }
        sink.end_thread()?;
    }
    sink.finish()?;
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::TraceFile;
    use crate::writer::{TextTraceWriter, TraceWriter};
    use crate::TraceMeta;
    use refrint_workloads::apps::AppPreset;

    fn small_model() -> WorkloadModel {
        AppPreset::Lu
            .model()
            .with_threads(3)
            .with_refs_per_thread(250)
    }

    #[test]
    fn captured_traces_replay_the_generator_exactly() {
        let model = small_model();
        let meta = TraceMeta::new(&model.name, model.threads, 11);
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        let records = capture_model(&model, 11, &mut w).unwrap();
        assert_eq!(records, 3 * 250);
        let trace = TraceFile::from_bytes(w.into_inner().unwrap()).unwrap();
        for t in 0..model.threads {
            let from_trace: Vec<_> = trace.thread(t).unwrap().map(Result::unwrap).collect();
            let from_generator: Vec<_> = ThreadStream::new(&model, t, 11).collect();
            assert_eq!(from_trace, from_generator, "thread {t}");
        }
    }

    #[test]
    fn text_capture_matches_binary_capture() {
        let model = small_model();
        let meta = TraceMeta::new(&model.name, model.threads, 5);
        let mut bin = TraceWriter::new(Vec::new(), &meta).unwrap();
        capture_model(&model, 5, &mut bin).unwrap();
        let mut text = TextTraceWriter::new(Vec::new(), &meta).unwrap();
        capture_model(&model, 5, &mut text).unwrap();
        let bin = TraceFile::from_bytes(bin.into_inner().unwrap()).unwrap();
        let text = TraceFile::from_bytes(text.into_inner().unwrap()).unwrap();
        for t in 0..model.threads {
            let a: Vec<_> = bin.thread(t).unwrap().map(Result::unwrap).collect();
            let b: Vec<_> = text.thread(t).unwrap().map(Result::unwrap).collect();
            assert_eq!(a, b, "thread {t}");
        }
    }

    #[test]
    fn invalid_models_are_rejected() {
        let mut model = small_model();
        model.refs_per_thread = 0;
        let meta = TraceMeta::new("bad", 3, 0);
        let mut w = TraceWriter::new(Vec::new(), &meta).unwrap();
        let err = capture_model(&model, 0, &mut w).unwrap_err();
        assert!(matches!(err, TraceError::InvalidMeta { .. }), "{err}");
    }
}
