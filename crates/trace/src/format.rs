//! Shared format constants, trace metadata and the varint/zigzag
//! primitives both the binary writer and reader are built from.
//!
//! The byte-level layout is specified in the crate-level documentation.

use std::fmt;
use std::io::Read;

use crate::error::TraceError;

/// Magic bytes opening a binary trace.
pub const BINARY_MAGIC: [u8; 4] = *b"RFRT";

/// First line of a text trace (exact match).
pub const TEXT_MAGIC_LINE: &str = "# refrint-trace v1 text";

/// Newest format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;

/// Largest encodable compute gap: the binary tag packs
/// `(gap << 1 | is_write) + 1` into a `u64`, so two bits are reserved.
pub const MAX_GAP_CYCLES: u64 = (1 << 62) - 1;

/// Which on-disk representation a trace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The compact varint-delta binary format.
    Binary,
    /// The line-oriented human-readable format.
    Text,
}

impl fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormat::Binary => write!(f, "binary v{FORMAT_VERSION}"),
            TraceFormat::Text => write!(f, "text v{FORMAT_VERSION}"),
        }
    }
}

/// The header metadata of a trace: what was captured, by how many threads,
/// and from which workload seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Workload name (becomes the replayed report's workload name).
    pub workload: String,
    /// Number of per-thread reference streams in the trace.
    pub threads: usize,
    /// The workload seed the trace was captured with (provenance only).
    pub seed: u64,
}

impl TraceMeta {
    /// Creates trace metadata.
    #[must_use]
    pub fn new(workload: impl Into<String>, threads: usize, seed: u64) -> Self {
        TraceMeta {
            workload: workload.into(),
            threads,
            seed,
        }
    }

    /// Rejects metadata no trace can be written from.
    pub(crate) fn validate(&self) -> Result<(), TraceError> {
        if self.threads == 0 {
            return Err(TraceError::InvalidMeta {
                reason: "a trace needs at least one thread".into(),
            });
        }
        Ok(())
    }
}

// ------------------------------------------------------------------ //
// varint / zigzag
// ------------------------------------------------------------------ //

/// Appends `value` to `buf` as a LEB128 varint.
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `r`, advancing `offset` by the bytes
/// consumed. `expected` names the field for truncation errors.
pub(crate) fn read_varint<R: Read>(
    r: &mut R,
    offset: &mut u64,
    expected: &'static str,
) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = read_byte(r, offset, expected)?;
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(TraceError::Corrupt {
                offset: *offset - 1,
                reason: format!("varint for {expected} overflows 64 bits"),
            });
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt {
                offset: *offset,
                reason: format!("varint for {expected} is longer than 10 bytes"),
            });
        }
    }
}

/// Reads one byte, advancing `offset`.
pub(crate) fn read_byte<R: Read>(
    r: &mut R,
    offset: &mut u64,
    expected: &'static str,
) -> Result<u8, TraceError> {
    let mut byte = [0u8; 1];
    read_exact(r, &mut byte, offset, expected)?;
    Ok(byte[0])
}

/// `read_exact` with offset tracking and typed truncation errors.
pub(crate) fn read_exact<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    offset: &mut u64,
    expected: &'static str,
) -> Result<(), TraceError> {
    match r.read_exact(buf) {
        Ok(()) => {
            *offset += buf.len() as u64;
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(TraceError::Truncated {
            offset: *offset,
            expected,
        }),
        Err(e) => Err(TraceError::io(*offset, &e)),
    }
}

/// Maps a signed delta onto the unsigned varint domain (zigzag).
pub(crate) fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub(crate) fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn varints_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut offset = 0;
            let got = read_varint(&mut Cursor::new(&buf), &mut offset, "test").unwrap();
            assert_eq!(got, v);
            assert_eq!(offset, buf.len() as u64);
        }
    }

    #[test]
    fn truncated_varint_is_typed() {
        let mut buf = Vec::new();
        push_varint(&mut buf, 1_000_000);
        buf.pop();
        let mut offset = 0;
        let err = read_varint(&mut Cursor::new(&buf), &mut offset, "test").unwrap_err();
        assert!(matches!(err, TraceError::Truncated { .. }), "{err}");
    }

    #[test]
    fn overlong_varint_is_corrupt() {
        let buf = [0x80u8; 11];
        let mut offset = 0;
        let err = read_varint(&mut Cursor::new(&buf[..]), &mut offset, "test").unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "{err}");
        // A 10-byte varint whose final byte carries more than one payload
        // bit would overflow 64 bits.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut offset = 0;
        let err = read_varint(&mut Cursor::new(&buf[..]), &mut offset, "test").unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12_345, -98_765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes stay small (the point of zigzag).
        assert!(zigzag_encode(-1) <= 2);
        assert!(zigzag_encode(1) <= 2);
    }

    #[test]
    fn meta_rejects_zero_threads() {
        assert!(TraceMeta::new("x", 0, 0).validate().is_err());
        assert!(TraceMeta::new("x", 4, 0).validate().is_ok());
    }

    #[test]
    fn format_display() {
        assert!(TraceFormat::Binary.to_string().contains("binary"));
        assert!(TraceFormat::Text.to_string().contains("text"));
    }
}
