//! Trace capture & replay for the Refrint reproduction.
//!
//! The workloads crate synthesizes reference streams from statistical
//! presets; this crate records those streams (or any other source of
//! [`MemRef`]s) to a file and replays them later, so a workload can be
//! shared between machines, archived next to its results, or replayed
//! bit-for-bit through a different system configuration. Both the writer
//! and the reader are streaming: no path through this crate ever holds a
//! whole trace in memory (the binary writer buffers at most one thread
//! block).
//!
//! # Binary format (version 1)
//!
//! All multi-byte integers are little-endian; `varint` is LEB128 (7 payload
//! bits per byte, high bit = continuation, at most 10 bytes).
//!
//! ```text
//! header:
//!   magic      4 bytes   b"RFRT"
//!   version    u16 LE    1
//!   flags      u8        0 (reserved)
//!   seed       u64 LE    workload seed the trace was captured with
//!                        (provenance only; replay does not use it)
//!   threads    varint    number of per-thread record blocks
//!   name_len   varint    byte length of the workload name
//!   name       bytes     UTF-8 workload name
//!
//! then exactly `threads` thread blocks, one per thread id (any order,
//! each id exactly once):
//!   thread_id  varint
//!   body_len   varint    byte length of the records + terminator below
//!   records:   per reference, two varints:
//!     tag      varint    ((gap_cycles << 1) | is_write) + 1
//!     delta    varint    zigzag(addr - previous addr in this thread),
//!                        where the previous address starts at 0
//!   term       varint    0 (end of this thread's records)
//! ```
//!
//! The `+1` on the tag makes `0` an unambiguous terminator, so records
//! need no per-record framing byte; `gap_cycles` must therefore be below
//! `2^62`, which every realistic gap is. Delta-encoding addresses makes
//! sequential runs (the common case for the synthetic workloads) cost two
//! bytes per reference.
//!
//! # Text format (version 1)
//!
//! A line-oriented, human-readable mirror of the same model. Blank lines
//! and `#` comments are ignored after the first line:
//!
//! ```text
//! # refrint-trace v1 text
//! workload <name>
//! seed <u64>
//! threads <n>
//! thread 0
//! +<gap> R|W 0x<addr-hex>
//! ...
//! end
//! thread 1
//! ...
//! end
//! ```
//!
//! # Errors
//!
//! Malformed input never panics: every failure is a typed [`TraceError`]
//! carrying the byte offset of the offending data ([`TraceError::BadMagic`],
//! [`TraceError::UnsupportedVersion`], [`TraceError::Truncated`],
//! [`TraceError::Corrupt`], [`TraceError::Parse`], ...).
//!
//! # Example
//!
//! ```
//! use refrint_trace::{capture_model, TraceFile, TraceMeta, TraceWriter};
//! use refrint_workloads::apps::AppPreset;
//!
//! let model = AppPreset::Lu.model().with_threads(2).with_refs_per_thread(100);
//! let meta = TraceMeta::new(&model.name, model.threads, 42);
//! let mut writer = TraceWriter::new(Vec::new(), &meta).unwrap();
//! capture_model(&model, 42, &mut writer).unwrap();
//! let trace = TraceFile::from_bytes(writer.into_inner().unwrap()).unwrap();
//! assert_eq!(trace.meta().threads, 2);
//! let first = trace.thread(0).unwrap().next().unwrap().unwrap();
//! assert!(first.gap_cycles <= model.max_gap_cycles());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capture;
pub mod error;
pub mod format;
pub mod reader;
pub mod summary;
pub mod writer;

pub use capture::capture_model;
pub use error::TraceError;
pub use format::{TraceFormat, TraceMeta, FORMAT_VERSION};
pub use reader::{ThreadRefs, TraceFile};
pub use summary::TraceSummary;
pub use writer::{TextTraceWriter, TraceSink, TraceWriter};

// Re-exported so trace consumers need not depend on refrint-workloads
// directly for the record type.
pub use refrint_workloads::trace::{AccessKind, MemRef};
