//! Spans, the subsystem taxonomy, the fixed-size span ring, and the
//! request-scoped trace context used by `refrint-serve`.

/// FNV-1a, the workspace's deterministic id hash (trace ids, span ids).
#[must_use]
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The subsystems the simulator attributes time to.
///
/// Matches the paper's accounting: the on-chip cache hierarchy, the
/// directory coherence protocol, the eDRAM refresh machinery, the torus
/// interconnect and main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// Cache array accesses (DL1 / L2 / L3 tag and data paths).
    Cache,
    /// Directory transactions and remote invalidations/downgrades.
    Coherence,
    /// Refresh engine work: stalls, settlements, policy invalidations.
    Refresh,
    /// On-chip network message latencies and flit hops.
    Noc,
    /// DRAM fetches and writebacks.
    Dram,
}

impl Subsystem {
    /// Number of subsystems (array dimension for attribution tables).
    pub const COUNT: usize = 5;

    /// Every subsystem, in display order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Cache,
        Subsystem::Coherence,
        Subsystem::Refresh,
        Subsystem::Noc,
        Subsystem::Dram,
    ];

    /// Stable lowercase name, used in reports and metric labels.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Subsystem::Cache => "cache",
            Subsystem::Coherence => "coherence",
            Subsystem::Refresh => "refresh",
            Subsystem::Noc => "noc",
            Subsystem::Dram => "dram",
        }
    }

    /// Dense index into attribution tables.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Subsystem::Cache => 0,
            Subsystem::Coherence => 1,
            Subsystem::Refresh => 2,
            Subsystem::Noc => 3,
            Subsystem::Dram => 4,
        }
    }
}

/// One recorded event: a latency contribution attributed to a subsystem.
///
/// Times are in *simulated cycles* (`t_start` is the core-local cycle the
/// event happened at, `dur` the cycles it contributed to the critical
/// path); `meta` is a small event-specific payload (refresh count, hop
/// count, bank index — whatever the `kind` documents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The subsystem this time belongs to.
    pub subsystem: Subsystem,
    /// A static event kind, e.g. `"dl1.access"` or `"dram.fetch"`.
    pub kind: &'static str,
    /// Simulated cycle the event started at.
    pub t_start: u64,
    /// Duration in simulated cycles (0 for pure point events).
    pub dur: u64,
    /// Event-specific payload.
    pub meta: u64,
}

/// A fixed-capacity ring of sampled spans: inserts are O(1), and once the
/// ring is full the oldest span is overwritten (`dropped` counts the
/// overwrites, so exporters can say what fraction of samples survived).
#[derive(Debug, Clone)]
pub struct SpanRing {
    spans: Vec<Span>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            spans: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Inserts a span, overwriting the oldest once full.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the ring holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// How many sampled spans were overwritten by newer ones.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained spans, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.spans.len());
        out.extend_from_slice(&self.spans[self.head..]);
        out.extend_from_slice(&self.spans[..self.head]);
        out
    }
}

/// The canonical request lifecycle stages `refrint-serve` records, in
/// wall-clock order. The names double as the `stage` label values of the
/// `refrint_request_stage_seconds` metrics family.
pub const REQUEST_STAGES: [&str; 7] = [
    "parse",
    "read_body",
    "validate",
    "cache_lookup",
    "queue_wait",
    "execute",
    "write",
];

/// One stage of a request's lifecycle, in host nanoseconds relative to
/// the moment the connection handler started reading the request.
///
/// Stage spans are children of the implicit `request` root span; the
/// simulator's [`Span`]s attach under the `execute` stage at export time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage name, one of [`REQUEST_STAGES`].
    pub name: &'static str,
    /// Nanoseconds from request start to stage start.
    pub start_nanos: u64,
    /// Stage duration in nanoseconds.
    pub dur_nanos: u64,
}

/// W3C trace context: a request's trace id plus the caller's span id when
/// the request arrived with a `traceparent` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// 32 lowercase hex chars.
    pub trace_id: String,
    /// The inbound parent span id (16 hex chars), if the caller sent one.
    pub parent_span_id: Option<String>,
}

impl TraceContext {
    /// Parses a W3C `traceparent` header value
    /// (`00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>`). Returns
    /// `None` for malformed values or all-zero ids, per the spec.
    #[must_use]
    pub fn parse_traceparent(value: &str) -> Option<TraceContext> {
        let mut parts = value.trim().split('-');
        let version = parts.next()?;
        let trace_id = parts.next()?;
        let span_id = parts.next()?;
        let flags = parts.next()?;
        if parts.next().is_some() && version == "00" {
            return None; // version 00 allows exactly four fields
        }
        let hex = |s: &str, len: usize| {
            s.len() == len
                && s.bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        };
        if !hex(version, 2) || !hex(trace_id, 32) || !hex(span_id, 16) || !hex(flags, 2) {
            return None;
        }
        if trace_id.bytes().all(|b| b == b'0') || span_id.bytes().all(|b| b == b'0') {
            return None;
        }
        Some(TraceContext {
            trace_id: trace_id.to_owned(),
            parent_span_id: Some(span_id.to_owned()),
        })
    }

    /// Mints a deterministic trace context from request identity material
    /// (refrint-serve feeds the validated cache key, which carries the
    /// seed — so identical requests mint identical trace ids).
    #[must_use]
    pub fn mint(material: &str) -> TraceContext {
        let hi = fnv1a(0x0074_7261_6365, material.as_bytes()); // "trace"
        let lo = fnv1a(hi, material.as_bytes());
        TraceContext {
            trace_id: format!("{hi:016x}{lo:016x}"),
            parent_span_id: None,
        }
    }

    /// Renders the context as a `traceparent` header value with the given
    /// span id as the active span.
    #[must_use]
    pub fn to_traceparent(&self, span_id: &str) -> String {
        format!("00-{}-{}-01", self.trace_id, span_id)
    }
}

/// One dispatch attempt of a coordinator fanning a point job out to a
/// backend node. Recorded per attempt (retries produce several spans for
/// the same point) and rendered as children of the `execute` stage in the
/// OTLP request tree, so a sweep's trace shows which backends did the work
/// and where retries went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchSpan {
    /// The backend's address label (e.g. `127.0.0.1:7878`).
    pub backend: String,
    /// 1-based attempt number for the point this span belongs to.
    pub attempt: u32,
    /// Nanoseconds from execute start to the attempt's start.
    pub start_nanos: u64,
    /// Attempt duration in nanoseconds.
    pub dur_nanos: u64,
    /// `"ok"`, `"error"` or `"cache"` (the point was answered from the
    /// coordinator's result cache without dispatching).
    pub outcome: &'static str,
}

/// A request's recorded lifecycle: the trace context plus the stage spans
/// the connection handler measured. Stored per job so `GET
/// /jobs/<id>/trace` can replay the tree after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's trace context (inbound or minted).
    pub context: TraceContext,
    /// Recorded stages, in wall-clock order.
    pub stages: Vec<StageSpan>,
    /// Total request wall time in nanoseconds (read start to write end).
    pub total_nanos: u64,
}

impl RequestTrace {
    /// Whether a stage with this name was recorded.
    #[must_use]
    pub fn has_stage(&self, name: &str) -> bool {
        self.stages.iter().any(|s| s.name == name)
    }

    /// End of the last recorded stage, in nanoseconds from request start.
    #[must_use]
    pub fn last_stage_end(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| s.start_nanos + s.dur_nanos)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(t: u64) -> Span {
        Span {
            subsystem: Subsystem::Cache,
            kind: "test",
            t_start: t,
            dur: 1,
            meta: 0,
        }
    }

    #[test]
    fn subsystem_names_and_indices_are_dense_and_stable() {
        let mut seen = [false; Subsystem::COUNT];
        for s in Subsystem::ALL {
            assert!(!seen[s.index()], "duplicate index {}", s.index());
            seen[s.index()] = true;
            assert!(!s.name().is_empty());
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn ring_keeps_newest_spans_in_order() {
        let mut ring = SpanRing::new(3);
        for t in 0..5 {
            ring.push(span(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring.to_vec().iter().map(|s| s.t_start).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut ring = SpanRing::new(8);
        ring.push(span(1));
        ring.push(span(2));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        let kept: Vec<u64> = ring.to_vec().iter().map(|s| s.t_start).collect();
        assert_eq!(kept, vec![1, 2]);
    }

    #[test]
    fn ring_wraparound_evicts_oldest_in_order() {
        // Fill well past capacity and check the retained window is exactly
        // the newest `capacity` spans, oldest first, at every fill level.
        let capacity = 7;
        let mut ring = SpanRing::new(capacity);
        for t in 0..40u64 {
            ring.push(span(t));
            let kept: Vec<u64> = ring.to_vec().iter().map(|s| s.t_start).collect();
            let expect: Vec<u64> = (t.saturating_sub(capacity as u64 - 1)..=t).collect();
            assert_eq!(kept, expect, "after pushing span {t}");
            assert_eq!(ring.dropped(), (t + 1).saturating_sub(capacity as u64));
        }
    }

    #[test]
    fn traceparent_roundtrip_and_rejects() {
        let tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        let ctx = TraceContext::parse_traceparent(tp).expect("valid header parses");
        assert_eq!(ctx.trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
        assert_eq!(ctx.parent_span_id.as_deref(), Some("00f067aa0ba902b7"));
        assert_eq!(ctx.to_traceparent("00f067aa0ba902b7"), tp);

        for bad in [
            "",
            "00-xyz-00f067aa0ba902b7-01",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
        ] {
            assert!(
                TraceContext::parse_traceparent(bad).is_none(),
                "must reject {bad:?}"
            );
        }
    }

    #[test]
    fn minted_trace_ids_are_deterministic_per_material() {
        let a = TraceContext::mint("run|seed=1");
        let b = TraceContext::mint("run|seed=1");
        let c = TraceContext::mint("run|seed=2");
        assert_eq!(a, b);
        assert_ne!(a.trace_id, c.trace_id);
        assert_eq!(a.trace_id.len(), 32);
        assert!(a.parent_span_id.is_none());
        // Minted ids must themselves be valid traceparent material.
        let rt = TraceContext::parse_traceparent(&a.to_traceparent("00f067aa0ba902b7"));
        assert_eq!(rt.expect("valid").trace_id, a.trace_id);
    }
}
