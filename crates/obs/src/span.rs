//! Spans, the subsystem taxonomy and the fixed-size span ring.

/// The subsystems the simulator attributes time to.
///
/// Matches the paper's accounting: the on-chip cache hierarchy, the
/// directory coherence protocol, the eDRAM refresh machinery, the torus
/// interconnect and main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// Cache array accesses (DL1 / L2 / L3 tag and data paths).
    Cache,
    /// Directory transactions and remote invalidations/downgrades.
    Coherence,
    /// Refresh engine work: stalls, settlements, policy invalidations.
    Refresh,
    /// On-chip network message latencies and flit hops.
    Noc,
    /// DRAM fetches and writebacks.
    Dram,
}

impl Subsystem {
    /// Number of subsystems (array dimension for attribution tables).
    pub const COUNT: usize = 5;

    /// Every subsystem, in display order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Cache,
        Subsystem::Coherence,
        Subsystem::Refresh,
        Subsystem::Noc,
        Subsystem::Dram,
    ];

    /// Stable lowercase name, used in reports and metric labels.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Subsystem::Cache => "cache",
            Subsystem::Coherence => "coherence",
            Subsystem::Refresh => "refresh",
            Subsystem::Noc => "noc",
            Subsystem::Dram => "dram",
        }
    }

    /// Dense index into attribution tables.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Subsystem::Cache => 0,
            Subsystem::Coherence => 1,
            Subsystem::Refresh => 2,
            Subsystem::Noc => 3,
            Subsystem::Dram => 4,
        }
    }
}

/// One recorded event: a latency contribution attributed to a subsystem.
///
/// Times are in *simulated cycles* (`t_start` is the core-local cycle the
/// event happened at, `dur` the cycles it contributed to the critical
/// path); `meta` is a small event-specific payload (refresh count, hop
/// count, bank index — whatever the `kind` documents).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The subsystem this time belongs to.
    pub subsystem: Subsystem,
    /// A static event kind, e.g. `"dl1.access"` or `"dram.fetch"`.
    pub kind: &'static str,
    /// Simulated cycle the event started at.
    pub t_start: u64,
    /// Duration in simulated cycles (0 for pure point events).
    pub dur: u64,
    /// Event-specific payload.
    pub meta: u64,
}

/// A fixed-capacity ring of sampled spans: inserts are O(1), and once the
/// ring is full the oldest span is overwritten (`dropped` counts the
/// overwrites, so exporters can say what fraction of samples survived).
#[derive(Debug, Clone)]
pub struct SpanRing {
    spans: Vec<Span>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl SpanRing {
    /// A ring holding at most `capacity` spans (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            spans: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Inserts a span, overwriting the oldest once full.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the ring holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// How many sampled spans were overwritten by newer ones.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained spans, oldest first.
    #[must_use]
    pub fn to_vec(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.spans.len());
        out.extend_from_slice(&self.spans[self.head..]);
        out.extend_from_slice(&self.spans[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(t: u64) -> Span {
        Span {
            subsystem: Subsystem::Cache,
            kind: "test",
            t_start: t,
            dur: 1,
            meta: 0,
        }
    }

    #[test]
    fn subsystem_names_and_indices_are_dense_and_stable() {
        let mut seen = [false; Subsystem::COUNT];
        for s in Subsystem::ALL {
            assert!(!seen[s.index()], "duplicate index {}", s.index());
            seen[s.index()] = true;
            assert!(!s.name().is_empty());
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn ring_keeps_newest_spans_in_order() {
        let mut ring = SpanRing::new(3);
        for t in 0..5 {
            ring.push(span(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring.to_vec().iter().map(|s| s.t_start).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut ring = SpanRing::new(8);
        ring.push(span(1));
        ring.push(span(2));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 0);
        let kept: Vec<u64> = ring.to_vec().iter().map(|s| s.t_start).collect();
        assert_eq!(kept, vec![1, 2]);
    }
}
