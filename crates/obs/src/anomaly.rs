//! Robust outlier scoring for sweep analytics.
//!
//! A sweep point is judged against its *parameter neighbourhood*: the other
//! points that differ from it along exactly one axis (same workload and
//! retention, varying policy, say). Within such a slice the modified
//! z-score of Iglewicz & Hoaglin — median/MAD based, so up to half the
//! slice can be wild without corrupting the scale estimate — flags points
//! that do not fit their neighbours. The slicing itself lives with the
//! sweep types in `refrint::anomaly`; this module is the scoring math.

/// Points scoring at or above this modified z magnitude are outliers.
///
/// 3.5 is the textbook Iglewicz–Hoaglin cutoff; Refrint sweeps compare
/// *different refresh policies*, whose legitimate spread is wide, so the
/// default is more conservative.
pub const DEFAULT_THRESHOLD: f64 = 8.0;

/// Slices smaller than this have no meaningful neighbourhood and are
/// never scored.
pub const MIN_SLICE: usize = 4;

/// Modified z-scores are capped here so a zero-spread slice with one
/// deviant point yields a large *finite* score (∞ would not survive JSON).
pub const MAX_Z: f64 = 1e9;

/// Why an [`AnomalyTuning`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningError {
    /// The threshold was NaN or infinite.
    ThresholdNotFinite,
    /// The threshold was negative (z magnitudes are compared, so a
    /// negative cutoff would flag everything).
    ThresholdNegative,
    /// A zero minimum slice would score empty neighbourhoods.
    MinSliceZero,
}

impl std::fmt::Display for TuningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuningError::ThresholdNotFinite => {
                write!(f, "anomaly threshold must be a finite number")
            }
            TuningError::ThresholdNegative => write!(f, "anomaly threshold must be non-negative"),
            TuningError::MinSliceZero => write!(f, "minimum slice size must be at least 1"),
        }
    }
}

impl std::error::Error for TuningError {}

/// Validated anomaly-detection tunables: the z-score cutoff and the
/// smallest neighbourhood slice worth scoring. The defaults reproduce the
/// hardcoded constants ([`DEFAULT_THRESHOLD`], [`MIN_SLICE`]) exactly, so
/// default-tuned output is byte-identical to the untuned path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyTuning {
    /// Points scoring at or above this modified z magnitude are flagged.
    pub threshold: f64,
    /// Slices smaller than this are never scored.
    pub min_slice: usize,
}

impl Default for AnomalyTuning {
    fn default() -> Self {
        AnomalyTuning {
            threshold: DEFAULT_THRESHOLD,
            min_slice: MIN_SLICE,
        }
    }
}

impl AnomalyTuning {
    /// Validates and builds a tuning; rejects non-finite or negative
    /// thresholds and a zero slice minimum with a typed error.
    pub fn new(threshold: f64, min_slice: usize) -> Result<AnomalyTuning, TuningError> {
        if !threshold.is_finite() {
            return Err(TuningError::ThresholdNotFinite);
        }
        if threshold < 0.0 {
            return Err(TuningError::ThresholdNegative);
        }
        if min_slice == 0 {
            return Err(TuningError::MinSliceZero);
        }
        Ok(AnomalyTuning {
            threshold,
            min_slice,
        })
    }

    /// Whether this is exactly the default tuning.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == AnomalyTuning::default()
    }
}

/// The median of `values`, or `None` when empty. Non-finite inputs are
/// ignored.
#[must_use]
pub fn median(values: &[f64]) -> Option<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    })
}

/// The median absolute deviation of `values` around `center`.
#[must_use]
pub fn mad(values: &[f64], center: f64) -> f64 {
    let devs: Vec<f64> = values
        .iter()
        .filter(|x| x.is_finite())
        .map(|x| (x - center).abs())
        .collect();
    median(&devs).unwrap_or(0.0)
}

/// Modified (robust) z-scores for every value, Iglewicz–Hoaglin style:
/// `0.6745 (x - median) / MAD`, falling back to the mean absolute
/// deviation when the MAD degenerates to zero, and capped at [`MAX_Z`].
/// Non-finite values score [`MAX_Z`] (they are always anomalous).
#[must_use]
pub fn robust_z_scores(values: &[f64]) -> Vec<f64> {
    let Some(med) = median(values) else {
        return values.iter().map(|_| MAX_Z).collect();
    };
    let mad_scale = mad(values, med);
    let scale = if mad_scale > 0.0 {
        mad_scale / 0.6745
    } else {
        // Degenerate MAD (more than half the slice is identical): fall
        // back to the mean absolute deviation, as Iglewicz & Hoaglin do.
        let finite: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
        let mean_ad =
            finite.iter().map(|x| (x - med).abs()).sum::<f64>() / finite.len().max(1) as f64;
        mean_ad * 1.253_314
    };
    values
        .iter()
        .map(|&x| {
            if !x.is_finite() {
                return MAX_Z;
            }
            if scale > 0.0 {
                ((x - med) / scale).clamp(-MAX_Z, MAX_Z)
            } else if x == med {
                0.0
            } else {
                // Every neighbour is identical and this point is not.
                if x > med {
                    MAX_Z
                } else {
                    -MAX_Z
                }
            }
        })
        .collect()
}

/// One flagged value from [`flag_outliers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flag {
    /// Index of the flagged value in the input slice.
    pub index: usize,
    /// The flagged value itself.
    pub value: f64,
    /// The slice median it was judged against.
    pub median: f64,
    /// Its modified z-score (signed; magnitude crossed the threshold).
    pub robust_z: f64,
}

/// Scores one neighbourhood slice and returns the outliers.
///
/// Slices shorter than [`MIN_SLICE`] return no flags — a point cannot be
/// anomalous against two neighbours.
#[must_use]
pub fn flag_outliers(values: &[f64], threshold: f64) -> Vec<Flag> {
    flag_outliers_with(values, threshold, MIN_SLICE)
}

/// [`flag_outliers`] with a caller-chosen minimum slice size.
#[must_use]
pub fn flag_outliers_with(values: &[f64], threshold: f64, min_slice: usize) -> Vec<Flag> {
    if values.len() < min_slice.max(1) {
        return Vec::new();
    }
    let med = median(values).unwrap_or(f64::NAN);
    robust_z_scores(values)
        .into_iter()
        .enumerate()
        .filter(|(_, z)| z.abs() >= threshold)
        .map(|(index, z)| Flag {
            index,
            value: values[index],
            median: med,
            robust_z: z,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 9.0, 5.0]), Some(5.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(median(&[f64::NAN, 2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn a_planted_outlier_is_flagged_and_only_it() {
        let mut values = vec![10.0, 10.5, 9.8, 10.2, 9.9, 10.1, 10.3];
        values.push(95.0); // the plant
        let flags = flag_outliers(&values, DEFAULT_THRESHOLD);
        assert_eq!(flags.len(), 1, "exactly the planted point: {flags:?}");
        assert_eq!(flags[0].index, 7);
        assert!(flags[0].robust_z > DEFAULT_THRESHOLD);
    }

    #[test]
    fn clean_slices_produce_no_flags() {
        let values = vec![10.0, 11.0, 9.0, 12.0, 8.5, 10.5];
        assert!(flag_outliers(&values, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn tiny_slices_are_never_scored() {
        let values = vec![1.0, 1.0, 100.0];
        assert!(flag_outliers(&values, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn zero_mad_slices_fall_back_instead_of_dividing_by_zero() {
        // More than half identical: MAD is 0, the mean-AD fallback kicks in
        // and still produces a finite, flaggable score.
        let values = vec![5.0, 5.0, 5.0, 5.0, 5.0, 50.0];
        let flags = flag_outliers(&values, 4.0);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].index, 5);
        assert!(flags[0].robust_z.is_finite());

        // Fully constant slices flag nothing.
        let constant = vec![5.0; 8];
        assert!(flag_outliers(&constant, 4.0).is_empty());
    }

    #[test]
    fn tuning_validates_and_defaults_match_the_constants() {
        let d = AnomalyTuning::default();
        assert_eq!(d.threshold, DEFAULT_THRESHOLD);
        assert_eq!(d.min_slice, MIN_SLICE);
        assert!(d.is_default());
        assert!(AnomalyTuning::new(8.0, 4).unwrap().is_default());
        assert!(!AnomalyTuning::new(3.5, 4).unwrap().is_default());

        assert_eq!(
            AnomalyTuning::new(f64::NAN, 4),
            Err(TuningError::ThresholdNotFinite)
        );
        assert_eq!(
            AnomalyTuning::new(f64::INFINITY, 4),
            Err(TuningError::ThresholdNotFinite)
        );
        assert_eq!(
            AnomalyTuning::new(-1.0, 4),
            Err(TuningError::ThresholdNegative)
        );
        assert_eq!(AnomalyTuning::new(8.0, 0), Err(TuningError::MinSliceZero));
        assert!(TuningError::ThresholdNegative
            .to_string()
            .contains("non-negative"));
    }

    #[test]
    fn min_slice_tuning_controls_what_gets_scored() {
        // Three points: below the default minimum, so the default path is
        // silent — but a lowered minimum scores (and flags) them.
        let values = vec![1.0, 1.0, 1.0, 100.0];
        assert!(flag_outliers_with(&values[..3], DEFAULT_THRESHOLD, 4).is_empty());
        let flags = flag_outliers_with(&values, 3.0, 3);
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].index, 3);
        // And a raised minimum silences a slice the default would score.
        assert!(flag_outliers_with(&values, 3.0, 5).is_empty());
        // flag_outliers delegates with the default minimum.
        assert_eq!(
            flag_outliers(&values, 3.0),
            flag_outliers_with(&values, 3.0, MIN_SLICE)
        );
    }

    #[test]
    fn scores_are_signed_and_capped() {
        let values = vec![10.0, 10.0, 10.0, 10.0, 10.0, -80.0];
        let flags = flag_outliers(&values, 4.0);
        assert_eq!(flags.len(), 1);
        assert!(flags[0].robust_z < 0.0);
        assert!(flags[0].robust_z >= -MAX_Z);
        let zs = robust_z_scores(&[f64::NAN, 1.0, 1.0]);
        assert_eq!(zs[0], MAX_Z, "non-finite values are always anomalous");
    }
}
