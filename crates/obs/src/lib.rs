//! Span-based observability for the Refrint simulator.
//!
//! The paper's whole argument is an accounting argument — where do refresh
//! energy and cycles actually go across the cache hierarchy — and this crate
//! supplies the attribution layer: a cheap structured span/event recorder
//! that the simulator threads through its access path, plus the analytics
//! that turn sweeps into anomaly reports.
//!
//! Three pieces, all pure `std` like the rest of the workspace:
//!
//! * [`span`] — the [`Span`](span::Span) record, the
//!   [`Subsystem`](span::Subsystem) taxonomy (cache / coherence / refresh /
//!   NoC / DRAM) and a fixed-size overwriting ring buffer;
//! * [`recorder`] — the [`Recorder`](recorder::Recorder) the simulator owns:
//!   exact simulated-cycle attribution per subsystem, sampled host wall-time
//!   attribution, and a sampled span ring, summarised into an
//!   [`ObsSummary`](recorder::ObsSummary);
//! * [`otlp`] — renders a summary as an OTLP-shaped JSON document through
//!   the shared `refrint_engine::json` emitter, including the per-request
//!   span-tree documents `refrint-serve` exposes at `GET /jobs/<id>/trace`;
//! * [`anomaly`] — robust z-scores (median/MAD) and a neighbourhood-slice
//!   outlier detector for sweep results, with validated tunables
//!   ([`anomaly::AnomalyTuning`]);
//! * [`critical_path`] — reduces a span tree to the chain that bounds it:
//!   the subsystem bounding a run's `execution_cycles`, the lifecycle
//!   stage bounding a request's wall latency, or — for a coordinator —
//!   whether a fanned-out request was bound by queueing, the network, or
//!   a straggler backend's sim time;
//! * [`timeseries`] — a fixed-capacity ring of timestamped counter
//!   snapshots (zero allocation at steady state) behind
//!   `GET /metrics/history`;
//! * [`log`] — a tiny levelled JSON/text line logger so serve-layer events
//!   carry the trace id of the request that caused them.
//!
//! The hard invariant is that instrumentation **observes without
//! perturbing**: a recorder never touches simulated state, so reports are
//! byte-identical with spans on or off (pinned by
//! `tests/hot_path_determinism.rs` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod critical_path;
pub mod log;
pub mod otlp;
pub mod recorder;
pub mod span;
pub mod timeseries;

pub use critical_path::{fleet_critical_path, CriticalPath, FleetPoint, PathStep};
pub use log::{Level, LogFormat, Logger};
pub use recorder::{ObsConfig, ObsSummary, Recorder, SubsystemTotals};
pub use span::{DispatchSpan, RequestTrace, Span, SpanRing, StageSpan, Subsystem, TraceContext};
pub use timeseries::TimeSeriesRing;
