//! The recorder the simulator owns, and the summary it produces.

use std::fmt;
use std::time::Instant;

use crate::span::{Span, SpanRing, Subsystem};

/// Observability configuration: sampling rate and ring capacity.
///
/// `sample_every = 1` is *full sampling* (every event lands in the span
/// ring and takes a host timestamp); the default of 64 keeps host overhead
/// well under the 5% budget while the exact cycle attribution — plain
/// integer adds — is always maintained for every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record every Nth event into the span ring (and host-time it).
    pub sample_every: u32,
    /// Span ring capacity.
    pub ring_capacity: usize,
}

impl ObsConfig {
    /// The default sampling rate (every 64th event).
    pub const DEFAULT_SAMPLE_EVERY: u32 = 64;
    /// The default span ring capacity.
    pub const DEFAULT_RING_CAPACITY: usize = 4096;

    /// Full sampling: every event is ring-recorded and host-timed.
    #[must_use]
    pub fn full() -> Self {
        ObsConfig {
            sample_every: 1,
            ring_capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }

    /// A specific sampling rate (clamped to at least 1).
    #[must_use]
    pub fn sampled(every: u32) -> Self {
        ObsConfig {
            sample_every: every.max(1),
            ring_capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sample_every: Self::DEFAULT_SAMPLE_EVERY,
            ring_capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }
}

/// Per-subsystem attribution totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubsystemTotals {
    /// Which subsystem.
    pub subsystem: Subsystem,
    /// Events recorded (every event, not just sampled ones).
    pub spans: u64,
    /// Simulated cycles attributed (exact, from every event).
    pub cycles: u64,
    /// Host wall-time attributed, in nanoseconds (sampled, statistical).
    pub host_nanos: u64,
}

/// The span recorder a [`CmpSystem`](../../refrint/system/struct.CmpSystem.html)
/// owns.
///
/// Disabled recorders cost one branch per hook. Enabled recorders always
/// maintain the exact per-subsystem cycle attribution (three integer adds
/// per event) and, every `sample_every`th event, push the span into the
/// ring and charge the host wall-time since the previous sample to the
/// event's subsystem.
///
/// A recorder never reads or writes simulated state, which is what makes
/// observability non-perturbing: reports are byte-identical with spans on
/// or off.
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    sample_every: u32,
    tick: u32,
    ring: SpanRing,
    spans: [u64; Subsystem::COUNT],
    cycles: [u64; Subsystem::COUNT],
    host_nanos: [u64; Subsystem::COUNT],
    last_sample: Option<Instant>,
}

impl Recorder {
    /// A disabled recorder: hooks reduce to one branch.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            sample_every: u32::MAX,
            tick: 0,
            ring: SpanRing::new(1),
            spans: [0; Subsystem::COUNT],
            cycles: [0; Subsystem::COUNT],
            host_nanos: [0; Subsystem::COUNT],
            last_sample: None,
        }
    }

    /// An enabled recorder with the given configuration.
    #[must_use]
    pub fn enabled(cfg: ObsConfig) -> Self {
        Recorder {
            enabled: true,
            sample_every: cfg.sample_every.max(1),
            tick: 0,
            ring: SpanRing::new(cfg.ring_capacity),
            spans: [0; Subsystem::COUNT],
            cycles: [0; Subsystem::COUNT],
            host_nanos: [0; Subsystem::COUNT],
            last_sample: None,
        }
    }

    /// Whether this recorder is collecting anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event. The hot-path hook: a single branch when
    /// disabled; integer adds plus (every `sample_every`th event) one
    /// `Instant::now()` and a ring write when enabled.
    #[inline]
    pub fn record(
        &mut self,
        subsystem: Subsystem,
        kind: &'static str,
        t_start: u64,
        dur: u64,
        meta: u64,
    ) {
        if !self.enabled {
            return;
        }
        let i = subsystem.index();
        self.spans[i] += 1;
        self.cycles[i] += dur;
        if self.tick == 0 {
            self.tick = self.sample_every - 1;
            self.ring.push(Span {
                subsystem,
                kind,
                t_start,
                dur,
                meta,
            });
            let now = Instant::now();
            if let Some(prev) = self.last_sample {
                let nanos = now.duration_since(prev).as_nanos();
                self.host_nanos[i] += u64::try_from(nanos).unwrap_or(u64::MAX);
            }
            self.last_sample = Some(now);
        } else {
            self.tick -= 1;
        }
    }

    /// Summarises everything recorded so far.
    #[must_use]
    pub fn summary(&self) -> ObsSummary {
        ObsSummary {
            sample_every: self.sample_every,
            per_subsystem: Subsystem::ALL
                .iter()
                .map(|&s| SubsystemTotals {
                    subsystem: s,
                    spans: self.spans[s.index()],
                    cycles: self.cycles[s.index()],
                    host_nanos: self.host_nanos[s.index()],
                })
                .collect(),
            sampled: self.ring.to_vec(),
            overwritten: self.ring.dropped(),
        }
    }
}

/// Everything a run's recorder collected, ready for export.
#[derive(Debug, Clone)]
pub struct ObsSummary {
    /// The sampling rate the recorder ran at.
    pub sample_every: u32,
    /// Attribution totals, one entry per subsystem in display order.
    pub per_subsystem: Vec<SubsystemTotals>,
    /// The sampled spans that survived in the ring, oldest first.
    pub sampled: Vec<Span>,
    /// Sampled spans overwritten by newer ones (ring overflow).
    pub overwritten: u64,
}

impl ObsSummary {
    /// Total events recorded across every subsystem.
    #[must_use]
    pub fn total_spans(&self) -> u64 {
        self.per_subsystem.iter().map(|t| t.spans).sum()
    }

    /// Total simulated cycles attributed across every subsystem.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.per_subsystem.iter().map(|t| t.cycles).sum()
    }

    /// Total host nanoseconds attributed across every subsystem.
    #[must_use]
    pub fn total_host_nanos(&self) -> u64 {
        self.per_subsystem.iter().map(|t| t.host_nanos).sum()
    }

    /// A subsystem's share of the attributed simulated cycles (0 when
    /// nothing was attributed).
    #[must_use]
    pub fn cycle_share(&self, subsystem: Subsystem) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        let own = self
            .per_subsystem
            .iter()
            .find(|t| t.subsystem == subsystem)
            .map_or(0, |t| t.cycles);
        own as f64 / total as f64
    }
}

impl fmt::Display for ObsSummary {
    /// The human-readable attribution table (`run --timing`, `obs
    /// --format text`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_cycles = self.total_cycles().max(1);
        let total_nanos = self.total_host_nanos().max(1);
        writeln!(
            f,
            "{:<10} {:>12} {:>14} {:>7} {:>12} {:>7}",
            "subsystem", "spans", "sim cycles", "share", "host us", "share"
        )?;
        for t in &self.per_subsystem {
            writeln!(
                f,
                "{:<10} {:>12} {:>14} {:>6.1}% {:>12.1} {:>6.1}%",
                t.subsystem.name(),
                t.spans,
                t.cycles,
                t.cycles as f64 * 100.0 / total_cycles as f64,
                t.host_nanos as f64 / 1e3,
                t.host_nanos as f64 * 100.0 / total_nanos as f64,
            )?;
        }
        write!(
            f,
            "sampling: every {} event(s), {} span(s) retained, {} overwritten",
            self.sample_every,
            self.sampled.len(),
            self.overwritten
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_collects_nothing() {
        let mut r = Recorder::disabled();
        r.record(Subsystem::Cache, "x", 0, 10, 0);
        let s = r.summary();
        assert_eq!(s.total_spans(), 0);
        assert_eq!(s.total_cycles(), 0);
        assert!(s.sampled.is_empty());
    }

    #[test]
    fn cycle_attribution_is_exact_regardless_of_sampling() {
        for every in [1u32, 7, 64] {
            let mut r = Recorder::enabled(ObsConfig::sampled(every));
            for t in 0..100 {
                r.record(Subsystem::Cache, "a", t, 3, 0);
                r.record(Subsystem::Dram, "b", t, 5, 0);
            }
            let s = r.summary();
            assert_eq!(s.total_spans(), 200);
            let cache = &s.per_subsystem[Subsystem::Cache.index()];
            let dram = &s.per_subsystem[Subsystem::Dram.index()];
            assert_eq!(cache.cycles, 300, "sampling must not skew cycles");
            assert_eq!(dram.cycles, 500);
            assert!((s.cycle_share(Subsystem::Dram) - 0.625).abs() < 1e-12);
        }
    }

    #[test]
    fn full_sampling_retains_every_span_up_to_capacity() {
        let mut r = Recorder::enabled(ObsConfig::full());
        for t in 0..10 {
            r.record(Subsystem::Noc, "hop", t, 1, 2);
        }
        let s = r.summary();
        assert_eq!(s.sampled.len(), 10);
        assert_eq!(s.overwritten, 0);
        assert_eq!(s.sampled[0].t_start, 0);
        assert_eq!(s.sampled[9].t_start, 9);
    }

    #[test]
    fn sampled_recorder_keeps_every_nth_span() {
        let mut r = Recorder::enabled(ObsConfig::sampled(4));
        for t in 0..16 {
            r.record(Subsystem::Cache, "a", t, 1, 0);
        }
        let s = r.summary();
        let starts: Vec<u64> = s.sampled.iter().map(|sp| sp.t_start).collect();
        assert_eq!(starts, vec![0, 4, 8, 12]);
    }

    #[test]
    fn summary_table_lists_every_subsystem() {
        let mut r = Recorder::enabled(ObsConfig::full());
        r.record(Subsystem::Refresh, "stall", 1, 4, 0);
        let text = r.summary().to_string();
        for s in Subsystem::ALL {
            assert!(text.contains(s.name()), "missing {}", s.name());
        }
        assert!(text.contains("sampling: every 1 event(s)"));
    }
}
