//! OTLP-shaped JSON export.
//!
//! Renders an [`ObsSummary`] as a document shaped like an OpenTelemetry
//! OTLP/JSON trace export (`resourceSpans` → `scopeSpans` → `spans`), so
//! standard trace tooling can ingest simulator runs. Timestamps are the
//! *simulated* cycle numbers used as nanoseconds — the document is a pure
//! function of the run, so it is byte-deterministic like every other
//! Refrint JSON artifact. Host wall-time lives in the resource attributes
//! (`refrint.host_nanos.<subsystem>`), not in span timestamps.

use refrint_engine::json::{emit, Value};

use crate::critical_path::{
    fleet_critical_path, fleet_straggler, request_critical_path, subsystem_critical_path,
    FleetPoint,
};
use crate::recorder::ObsSummary;
use crate::span::{fnv1a, DispatchSpan, RequestTrace, Span};

fn attr_str(key: &str, value: &str) -> Value {
    Value::Obj(vec![
        ("key".to_owned(), Value::Str(key.to_owned())),
        (
            "value".to_owned(),
            Value::Obj(vec![(
                "stringValue".to_owned(),
                Value::Str(value.to_owned()),
            )]),
        ),
    ])
}

fn attr_int(key: &str, value: u64) -> Value {
    Value::Obj(vec![
        ("key".to_owned(), Value::Str(key.to_owned())),
        (
            "value".to_owned(),
            // OTLP/JSON carries 64-bit ints as strings.
            Value::Obj(vec![("intValue".to_owned(), Value::Str(value.to_string()))]),
        ),
    ])
}

/// A deterministic 16-hex span id derived from the trace id and a slot.
fn span_id(trace_id: &str, slot: u64) -> String {
    format!("{:016x}", fnv1a(slot, trace_id.as_bytes()))
}

fn span_value(span: &Span, trace_id: &str, index: usize, parent: Option<&str>) -> Value {
    let mut fields = vec![
        ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
        (
            "spanId".to_owned(),
            Value::Str(span_id(trace_id, index as u64)),
        ),
    ];
    if let Some(parent) = parent {
        fields.push(("parentSpanId".to_owned(), Value::Str(parent.to_owned())));
    }
    fields.extend([
        (
            "name".to_owned(),
            Value::Str(format!("{}/{}", span.subsystem.name(), span.kind)),
        ),
        ("kind".to_owned(), Value::Num(1.0)), // SPAN_KIND_INTERNAL
        (
            "startTimeUnixNano".to_owned(),
            Value::Str(span.t_start.to_string()),
        ),
        (
            "endTimeUnixNano".to_owned(),
            Value::Str((span.t_start + span.dur).to_string()),
        ),
        (
            "attributes".to_owned(),
            Value::Arr(vec![
                attr_str("refrint.subsystem", span.subsystem.name()),
                attr_int("refrint.sim_cycles", span.dur),
                attr_int("refrint.meta", span.meta),
            ]),
        ),
    ]);
    Value::Obj(fields)
}

/// Builds the OTLP-shaped document for one run.
///
/// `config_label` and `workload` identify the run (they seed the
/// deterministic trace id and become resource attributes).
#[must_use]
pub fn document(summary: &ObsSummary, config_label: &str, workload: &str) -> Value {
    let seed = fnv1a(0, config_label.as_bytes());
    let trace_id = format!("{:016x}{:016x}", seed, fnv1a(seed, workload.as_bytes()));

    let mut resource_attrs = vec![
        attr_str("service.name", "refrint"),
        attr_str("refrint.config", config_label),
        attr_str("refrint.workload", workload),
        attr_int("refrint.sample_every", u64::from(summary.sample_every)),
        attr_int("refrint.spans_total", summary.total_spans()),
        attr_int("refrint.spans_overwritten", summary.overwritten),
    ];
    for t in &summary.per_subsystem {
        resource_attrs.push(attr_int(
            &format!("refrint.sim_cycles.{}", t.subsystem.name()),
            t.cycles,
        ));
        resource_attrs.push(attr_int(
            &format!("refrint.host_nanos.{}", t.subsystem.name()),
            t.host_nanos,
        ));
    }

    let spans: Vec<Value> = summary
        .sampled
        .iter()
        .enumerate()
        .map(|(i, s)| span_value(s, &trace_id, i, None))
        .collect();

    wrap_resource_spans(resource_attrs, spans)
}

/// Wraps resource attributes and a span list in the OTLP envelope
/// (`resourceSpans` → `scopeSpans` → `spans`).
fn wrap_resource_spans(resource_attrs: Vec<Value>, spans: Vec<Value>) -> Value {
    Value::Obj(vec![(
        "resourceSpans".to_owned(),
        Value::Arr(vec![resource_group(resource_attrs, spans)]),
    )])
}

/// One `resourceSpans` group: a resource attribute list plus its spans
/// under the shared `refrint-obs` scope.
fn resource_group(resource_attrs: Vec<Value>, spans: Vec<Value>) -> Value {
    Value::Obj(vec![
        (
            "resource".to_owned(),
            Value::Obj(vec![("attributes".to_owned(), Value::Arr(resource_attrs))]),
        ),
        (
            "scopeSpans".to_owned(),
            Value::Arr(vec![Value::Obj(vec![
                (
                    "scope".to_owned(),
                    Value::Obj(vec![
                        ("name".to_owned(), Value::Str("refrint-obs".to_owned())),
                        ("version".to_owned(), Value::Str("1".to_owned())),
                    ]),
                ),
                ("spans".to_owned(), Value::Arr(spans)),
            ])]),
        ),
    ])
}

/// Renders the OTLP document as a compact JSON string.
#[must_use]
pub fn render(summary: &ObsSummary, config_label: &str, workload: &str) -> String {
    emit(&document(summary, config_label, workload))
}

/// The slot [`span_id`] derives a request's root span id from.
pub const ROOT_SPAN_SLOT: u64 = 0x524f_4f54; // "ROOT"
const STAGE_SPAN_SLOT: u64 = 0x1000;
const DISPATCH_SPAN_SLOT: u64 = 0x2000;
const SIM_SPAN_SLOT: u64 = 0x10_0000;
/// The slot block a coordinator's per-point anchor spans are derived
/// from: point `i` of a fanned-out request gets `POINT_SPAN_SLOT + i`.
pub const POINT_SPAN_SLOT: u64 = 0x100_0000;
/// Stitched backend span ids start here; each point owns a
/// [`STITCH_POINT_STRIDE`]-wide block so remapped ids never collide
/// across points even when every backend minted identical ids (they all
/// derive span ids from the same propagated trace id).
const STITCH_SPAN_SLOT: u64 = 0x4000_0000;
const STITCH_POINT_STRIDE: u64 = 0x10_000;

/// The deterministic root span id for a trace id (exposed so servers can
/// propagate `traceparent` onwards and tests can assert linkage).
#[must_use]
pub fn root_span_id(trace_id: &str) -> String {
    span_id(trace_id, ROOT_SPAN_SLOT)
}

/// The deterministic anchor span id for point `index` of a fanned-out
/// request. The coordinator sends this as the `traceparent` parent on the
/// dispatched `POST /run`, so the backend's root span arrives already
/// parented under the coordinator's point anchor.
#[must_use]
pub fn point_span_id(trace_id: &str, index: usize) -> String {
    span_id(trace_id, POINT_SPAN_SLOT + index as u64)
}

/// Builds the OTLP-shaped document for one served request: a `request`
/// root span (parented on the caller's span when the request arrived with
/// a `traceparent` header), one child span per lifecycle stage, and — for
/// requests that actually executed a simulation — the run's sampled
/// subsystem spans attached as children of the `execute` stage.
///
/// `extra` carries request-identity resource attributes (job id, kind,
/// cache disposition); `sim` is `(summary, config_label, workload)` for
/// executed runs. Stage timestamps are host nanoseconds from request
/// start; simulator span timestamps remain simulated cycles, exactly as
/// in [`document`].
#[must_use]
pub fn request_document(
    trace: &RequestTrace,
    extra: &[(String, String)],
    sim: Option<(&ObsSummary, &str, &str)>,
) -> Value {
    request_document_with_dispatch(trace, extra, sim, &[])
}

/// [`request_document`] for requests a coordinator fanned out to backend
/// nodes: each [`DispatchSpan`] becomes a `backend/<addr>` child of the
/// `execute` stage, so the trace shows where every point ran and where
/// retries went.
#[must_use]
pub fn request_document_with_dispatch(
    trace: &RequestTrace,
    extra: &[(String, String)],
    sim: Option<(&ObsSummary, &str, &str)>,
    dispatch: &[DispatchSpan],
) -> Value {
    let trace_id = trace.context.trace_id.as_str();
    let mut resource_attrs = request_resource_attrs(trace, extra);
    let (mut spans, root_id, execute_id) = root_and_stage_spans(trace);

    for (i, d) in dispatch.iter().enumerate() {
        let parent = execute_id.as_deref().unwrap_or(root_id.as_str());
        spans.push(dispatch_span_value(trace_id, i, d, parent));
    }

    if let Some((summary, config_label, workload)) = sim {
        let sim_path = subsystem_critical_path(summary);
        resource_attrs.push(attr_str("refrint.config", config_label));
        resource_attrs.push(attr_str("refrint.workload", workload));
        resource_attrs.push(attr_int(
            "refrint.sample_every",
            u64::from(summary.sample_every),
        ));
        resource_attrs.push(attr_str(
            "refrint.run_critical_subsystem",
            sim_path.bounding_name(),
        ));
        for t in &summary.per_subsystem {
            resource_attrs.push(attr_int(
                &format!("refrint.sim_cycles.{}", t.subsystem.name()),
                t.cycles,
            ));
            resource_attrs.push(attr_int(
                &format!("refrint.host_nanos.{}", t.subsystem.name()),
                t.host_nanos,
            ));
        }
        let parent = execute_id.as_deref().unwrap_or(root_id.as_str());
        for (i, s) in summary.sampled.iter().enumerate() {
            spans.push(span_value(
                s,
                trace_id,
                SIM_SPAN_SLOT as usize + i,
                Some(parent),
            ));
        }
    }

    wrap_resource_spans(resource_attrs, spans)
}

fn request_resource_attrs(trace: &RequestTrace, extra: &[(String, String)]) -> Vec<Value> {
    let request_path = request_critical_path(&trace.stages);
    let mut resource_attrs = vec![
        attr_str("service.name", "refrint-serve"),
        attr_int("refrint.request_total_nanos", trace.total_nanos),
        attr_str(
            "refrint.request_critical_stage",
            request_path.bounding_name(),
        ),
    ];
    for (key, value) in extra {
        resource_attrs.push(attr_str(key, value));
    }
    resource_attrs
}

/// The `request` root span and its `stage/*` children; returns the span
/// list, the root span id and the `execute` stage's span id (if present).
fn root_and_stage_spans(trace: &RequestTrace) -> (Vec<Value>, String, Option<String>) {
    let trace_id = trace.context.trace_id.as_str();
    let root_id = root_span_id(trace_id);

    let mut spans = Vec::with_capacity(trace.stages.len() + 1);
    let mut root = vec![
        ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
        ("spanId".to_owned(), Value::Str(root_id.clone())),
    ];
    if let Some(parent) = &trace.context.parent_span_id {
        root.push(("parentSpanId".to_owned(), Value::Str(parent.clone())));
    }
    root.extend([
        ("name".to_owned(), Value::Str("request".to_owned())),
        ("kind".to_owned(), Value::Num(2.0)), // SPAN_KIND_SERVER
        ("startTimeUnixNano".to_owned(), Value::Str("0".to_owned())),
        (
            "endTimeUnixNano".to_owned(),
            Value::Str(trace.total_nanos.to_string()),
        ),
        ("attributes".to_owned(), Value::Arr(Vec::new())),
    ]);
    spans.push(Value::Obj(root));

    let mut execute_id = None;
    for (i, stage) in trace.stages.iter().enumerate() {
        let id = span_id(trace_id, STAGE_SPAN_SLOT + i as u64);
        if stage.name == "execute" {
            execute_id = Some(id.clone());
        }
        spans.push(Value::Obj(vec![
            ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
            ("spanId".to_owned(), Value::Str(id)),
            ("parentSpanId".to_owned(), Value::Str(root_id.clone())),
            (
                "name".to_owned(),
                Value::Str(format!("stage/{}", stage.name)),
            ),
            ("kind".to_owned(), Value::Num(1.0)),
            (
                "startTimeUnixNano".to_owned(),
                Value::Str(stage.start_nanos.to_string()),
            ),
            (
                "endTimeUnixNano".to_owned(),
                Value::Str((stage.start_nanos + stage.dur_nanos).to_string()),
            ),
            (
                "attributes".to_owned(),
                Value::Arr(vec![
                    attr_str("refrint.stage", stage.name),
                    attr_int("refrint.stage_nanos", stage.dur_nanos),
                ]),
            ),
        ]));
    }
    (spans, root_id, execute_id)
}

fn dispatch_span_value(trace_id: &str, index: usize, d: &DispatchSpan, parent: &str) -> Value {
    Value::Obj(vec![
        ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
        (
            "spanId".to_owned(),
            Value::Str(span_id(trace_id, DISPATCH_SPAN_SLOT + index as u64)),
        ),
        ("parentSpanId".to_owned(), Value::Str(parent.to_owned())),
        (
            "name".to_owned(),
            Value::Str(format!("backend/{}", d.backend)),
        ),
        ("kind".to_owned(), Value::Num(3.0)), // SPAN_KIND_CLIENT
        (
            "startTimeUnixNano".to_owned(),
            Value::Str(d.start_nanos.to_string()),
        ),
        (
            "endTimeUnixNano".to_owned(),
            Value::Str((d.start_nanos + d.dur_nanos).to_string()),
        ),
        (
            "attributes".to_owned(),
            Value::Arr(vec![
                attr_str("refrint.backend", &d.backend),
                attr_int("refrint.attempt", u64::from(d.attempt)),
                attr_str("refrint.outcome", d.outcome),
                attr_int("refrint.dispatch_nanos", d.dur_nanos),
            ]),
        ),
    ])
}

/// One point of a fanned-out request, carrying the backend's own trace
/// document for stitching.
#[derive(Debug, Clone)]
pub struct BackendSubtree {
    /// The point's index in dispatch order (keys the anchor span id).
    pub point_index: usize,
    /// Deterministic point label, e.g. `lu/50us/R.valid`.
    pub label: String,
    /// The node that served the point (`host:port`, or `result-cache`).
    pub node: String,
    /// The backend-side job id, when the dispatch response carried one.
    pub backend_job: Option<String>,
    /// Dispatch start, host nanoseconds from the coordinator request.
    pub start_nanos: u64,
    /// Dispatch round-trip duration in host nanoseconds.
    pub dur_nanos: u64,
    /// The backend's `GET /jobs/<id>/trace` document, parsed; `None` when
    /// the point was served from cache or the trace was unavailable.
    pub document: Option<Value>,
}

/// An attribute's value from an OTLP attribute list (`stringValue` or
/// stringified `intValue`).
fn find_attr<'a>(attrs: &'a [Value], key: &str) -> Option<&'a str> {
    attrs
        .iter()
        .find(|a| a.get("key").and_then(Value::as_str) == Some(key))?
        .get("value")
        .map(|v| {
            v.get("stringValue")
                .or_else(|| v.get("intValue"))
                .and_then(Value::as_str)
        })?
}

/// All spans of an OTLP document, across every resource group.
fn document_spans(doc: &Value) -> Vec<&Value> {
    let mut out = Vec::new();
    let Some(groups) = doc.get("resourceSpans").and_then(Value::as_arr) else {
        return out;
    };
    for group in groups {
        let Some(scopes) = group.get("scopeSpans").and_then(Value::as_arr) else {
            continue;
        };
        for scope in scopes {
            if let Some(spans) = scope.get("spans").and_then(Value::as_arr) {
                out.extend(spans.iter());
            }
        }
    }
    out
}

/// The backend-reported `refrint.request_total_nanos` of a trace
/// document (its first resource group's attribute).
fn document_total_nanos(doc: &Value) -> Option<u64> {
    let groups = doc.get("resourceSpans").and_then(Value::as_arr)?;
    let attrs = groups
        .first()?
        .get("resource")?
        .get("attributes")
        .and_then(Value::as_arr)?;
    find_attr(attrs, "refrint.request_total_nanos")?
        .parse()
        .ok()
}

/// Builds the stitched fleet-wide trace document for a coordinator
/// request.
///
/// The coordinator's own group carries `refrint.node = "coordinator"`,
/// the cross-node critical-path attributes and every dispatch span; each
/// stitched point contributes a deterministic `point/<label>` anchor span
/// under the `execute` stage plus its backend's whole span tree in a
/// per-node resource group. Backend span ids are remapped into a
/// per-point slot block — every backend derives ids from the same
/// propagated trace id, so the raw ids collide across points — keyed only
/// by point index and span position, which keeps the stitched tree
/// byte-deterministic modulo host timings at any backend count.
#[must_use]
pub fn fleet_request_document(
    trace: &RequestTrace,
    extra: &[(String, String)],
    dispatch: &[DispatchSpan],
    points: &[BackendSubtree],
) -> Value {
    let trace_id = trace.context.trace_id.as_str();
    let mut resource_attrs = request_resource_attrs(trace, extra);
    let (mut spans, root_id, execute_id) = root_and_stage_spans(trace);
    let anchor_parent = execute_id.as_deref().unwrap_or(root_id.as_str()).to_owned();

    for (i, d) in dispatch.iter().enumerate() {
        spans.push(dispatch_span_value(trace_id, i, d, &anchor_parent));
    }

    let fleet_points: Vec<FleetPoint> = points
        .iter()
        .map(|p| FleetPoint {
            label: p.label.clone(),
            dispatch_nanos: p.dur_nanos,
            backend_nanos: p
                .document
                .as_ref()
                .and_then(document_total_nanos)
                .unwrap_or(0),
        })
        .collect();
    let fleet_path = fleet_critical_path(&trace.stages, &fleet_points);
    resource_attrs.push(attr_str("refrint.node", "coordinator"));
    resource_attrs.push(attr_str(
        "refrint.fleet_critical_step",
        fleet_path.bounding_name(),
    ));
    resource_attrs.push(attr_str(
        "refrint.fleet_straggler",
        fleet_straggler(&fleet_points).map_or("-", |p| p.label.as_str()),
    ));
    resource_attrs.push(attr_int("refrint.points_total", points.len() as u64));
    resource_attrs.push(attr_int(
        "refrint.points_stitched",
        points.iter().filter(|p| p.document.is_some()).count() as u64,
    ));

    let mut groups = Vec::with_capacity(points.len() + 1);
    for point in points {
        // The anchor: a deterministic per-point span the dispatched
        // traceparent already named as the backend root's parent.
        let anchor_id = point_span_id(trace_id, point.point_index);
        let mut attrs = vec![
            attr_str("refrint.point", &point.label),
            attr_str("refrint.node", &point.node),
            attr_str(
                "refrint.stitched",
                if point.document.is_some() {
                    "true"
                } else {
                    "false"
                },
            ),
        ];
        if let Some(job) = &point.backend_job {
            attrs.push(attr_str("refrint.backend_job", job));
        }
        spans.push(Value::Obj(vec![
            ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
            ("spanId".to_owned(), Value::Str(anchor_id.clone())),
            ("parentSpanId".to_owned(), Value::Str(anchor_parent.clone())),
            (
                "name".to_owned(),
                Value::Str(format!("point/{}", point.label)),
            ),
            ("kind".to_owned(), Value::Num(3.0)), // SPAN_KIND_CLIENT
            (
                "startTimeUnixNano".to_owned(),
                Value::Str(point.start_nanos.to_string()),
            ),
            (
                "endTimeUnixNano".to_owned(),
                Value::Str((point.start_nanos + point.dur_nanos).to_string()),
            ),
            ("attributes".to_owned(), Value::Arr(attrs)),
        ]));

        let Some(doc) = &point.document else {
            continue;
        };
        let backend_spans = document_spans(doc);
        let base = STITCH_SPAN_SLOT + point.point_index as u64 * STITCH_POINT_STRIDE;
        let remap: std::collections::HashMap<&str, String> = backend_spans
            .iter()
            .enumerate()
            .filter_map(|(pos, s)| {
                let old = s.get("spanId").and_then(Value::as_str)?;
                Some((old, span_id(trace_id, base + pos as u64)))
            })
            .collect();
        let stitched: Vec<Value> = backend_spans
            .iter()
            .enumerate()
            .map(|(pos, s)| {
                let mut fields: Vec<(String, Value)> = Vec::new();
                let mut saw_parent = false;
                if let Value::Obj(obj) = s {
                    for (key, value) in obj {
                        match key.as_str() {
                            "traceId" => {
                                fields.push(("traceId".to_owned(), Value::Str(trace_id.to_owned())))
                            }
                            "spanId" => fields.push((
                                "spanId".to_owned(),
                                Value::Str(span_id(trace_id, base + pos as u64)),
                            )),
                            "parentSpanId" => {
                                saw_parent = true;
                                let old = value.as_str().unwrap_or("");
                                let new =
                                    remap.get(old).cloned().unwrap_or_else(|| anchor_id.clone());
                                fields.push(("parentSpanId".to_owned(), Value::Str(new)));
                            }
                            _ => fields.push((key.clone(), value.clone())),
                        }
                    }
                }
                if !saw_parent {
                    // A backend root with no inbound parent still belongs
                    // under this point's anchor.
                    fields.insert(
                        2.min(fields.len()),
                        ("parentSpanId".to_owned(), Value::Str(anchor_id.clone())),
                    );
                }
                Value::Obj(fields)
            })
            .collect();

        // The stitched group keeps the backend's own resource attributes
        // (sim-cycle and host-nanos attribution) and names the node.
        let mut group_attrs = vec![
            attr_str("refrint.node", &point.node),
            attr_str("refrint.point", &point.label),
        ];
        if let Some(attrs) = doc
            .get("resourceSpans")
            .and_then(Value::as_arr)
            .and_then(|g| g.first())
            .and_then(|g| g.get("resource"))
            .and_then(|r| r.get("attributes"))
            .and_then(Value::as_arr)
        {
            group_attrs.extend(attrs.iter().cloned());
        }
        groups.push(resource_group(group_attrs, stitched));
    }

    let mut all = vec![resource_group(resource_attrs, spans)];
    all.extend(groups);
    Value::Obj(vec![("resourceSpans".to_owned(), Value::Arr(all))])
}

/// Renders the stitched fleet-wide trace document as compact JSON.
#[must_use]
pub fn render_fleet_request(
    trace: &RequestTrace,
    extra: &[(String, String)],
    dispatch: &[DispatchSpan],
    points: &[BackendSubtree],
) -> String {
    emit(&fleet_request_document(trace, extra, dispatch, points))
}

/// Renders a request trace document as a compact JSON string.
#[must_use]
pub fn render_request(
    trace: &RequestTrace,
    extra: &[(String, String)],
    sim: Option<(&ObsSummary, &str, &str)>,
) -> String {
    emit(&request_document(trace, extra, sim))
}

/// Renders a request trace document with coordinator dispatch spans as a
/// compact JSON string.
#[must_use]
pub fn render_request_with_dispatch(
    trace: &RequestTrace,
    extra: &[(String, String)],
    sim: Option<(&ObsSummary, &str, &str)>,
    dispatch: &[DispatchSpan],
) -> String {
    emit(&request_document_with_dispatch(trace, extra, sim, dispatch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ObsConfig, Recorder};
    use crate::span::Subsystem;

    fn sample_summary() -> ObsSummary {
        let mut r = Recorder::enabled(ObsConfig::full());
        r.record(Subsystem::Cache, "dl1.access", 10, 2, 0);
        r.record(Subsystem::Dram, "dram.fetch", 12, 40, 1);
        r.summary()
    }

    #[test]
    fn document_is_otlp_shaped_and_parseable() {
        let text = render(&sample_summary(), "eDRAM 50us R.WB(32,32)", "lu");
        let doc = refrint_engine::json::parse(&text).expect("emitted JSON parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .expect("resourceSpans[0].scopeSpans[0].spans exists");
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[0].get("name").and_then(|v| v.as_str()),
            Some("cache/dl1.access")
        );
        let start = spans[1]
            .get("startTimeUnixNano")
            .and_then(|v| v.as_str())
            .unwrap();
        let end = spans[1]
            .get("endTimeUnixNano")
            .and_then(|v| v.as_str())
            .unwrap();
        assert_eq!(start, "12");
        assert_eq!(end, "52");
    }

    #[test]
    fn documents_are_deterministic_and_ids_depend_on_the_run() {
        let s = sample_summary();
        let a = render(&s, "cfg", "lu");
        let b = render(&s, "cfg", "lu");
        assert_eq!(a, b, "export must be byte-deterministic");
        let c = render(&s, "cfg", "fft");
        assert_ne!(a, c, "different runs get different trace ids");
    }

    #[test]
    fn resource_attributes_carry_the_attribution_totals() {
        let text = render(&sample_summary(), "cfg", "lu");
        assert!(text.contains("refrint.sim_cycles.dram"));
        assert!(text.contains("refrint.host_nanos.cache"));
        assert!(text.contains("\"service.name\""));
    }

    fn sample_trace() -> crate::span::RequestTrace {
        crate::span::RequestTrace {
            context: crate::span::TraceContext {
                trace_id: "4bf92f3577b34da6a3ce929d0e0e4736".to_owned(),
                parent_span_id: Some("00f067aa0ba902b7".to_owned()),
            },
            stages: vec![
                crate::span::StageSpan {
                    name: "parse",
                    start_nanos: 0,
                    dur_nanos: 500,
                },
                crate::span::StageSpan {
                    name: "execute",
                    start_nanos: 500,
                    dur_nanos: 90_000,
                },
                crate::span::StageSpan {
                    name: "write",
                    start_nanos: 90_500,
                    dur_nanos: 700,
                },
            ],
            total_nanos: 91_200,
        }
    }

    #[test]
    fn request_document_links_root_stages_and_sim_spans() {
        let summary = sample_summary();
        let extra = [("refrint.job".to_owned(), "j00000001".to_owned())];
        let text = render_request(&sample_trace(), &extra, Some((&summary, "cfg", "lu")));
        let doc = refrint_engine::json::parse(&text).expect("request doc parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .expect("spans array exists");
        // root + 3 stages + 2 sim spans
        assert_eq!(spans.len(), 6);

        let root = &spans[0];
        assert_eq!(root.get("name").and_then(|v| v.as_str()), Some("request"));
        assert_eq!(
            root.get("parentSpanId").and_then(|v| v.as_str()),
            Some("00f067aa0ba902b7"),
            "root must be parented on the inbound traceparent span"
        );
        let root_id = root.get("spanId").and_then(|v| v.as_str()).unwrap();
        assert_eq!(root_id, root_span_id("4bf92f3577b34da6a3ce929d0e0e4736"));

        let execute = spans
            .iter()
            .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("stage/execute"))
            .expect("execute stage span");
        assert_eq!(
            execute.get("parentSpanId").and_then(|v| v.as_str()),
            Some(root_id),
            "stages are children of the root"
        );
        let execute_id = execute.get("spanId").and_then(|v| v.as_str()).unwrap();

        let sim = spans
            .iter()
            .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("cache/dl1.access"))
            .expect("sim span attached");
        assert_eq!(
            sim.get("parentSpanId").and_then(|v| v.as_str()),
            Some(execute_id),
            "sim spans are children of the execute stage"
        );

        assert!(text.contains("refrint.request_critical_stage"));
        assert!(text.contains("\"stringValue\":\"execute\""));
        assert!(text.contains("refrint.run_critical_subsystem"));
        assert!(text.contains("j00000001"));
    }

    #[test]
    fn dispatch_spans_attach_under_the_execute_stage() {
        let trace = sample_trace();
        let dispatch = vec![
            DispatchSpan {
                backend: "127.0.0.1:7878".to_owned(),
                attempt: 1,
                start_nanos: 600,
                dur_nanos: 40_000,
                outcome: "error",
            },
            DispatchSpan {
                backend: "127.0.0.1:7879".to_owned(),
                attempt: 2,
                start_nanos: 41_000,
                dur_nanos: 45_000,
                outcome: "ok",
            },
        ];
        let text = render_request_with_dispatch(&trace, &[], None, &dispatch);
        let doc = refrint_engine::json::parse(&text).expect("parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .unwrap();
        assert_eq!(spans.len(), 6, "root + 3 stages + 2 dispatch spans");

        let execute = spans
            .iter()
            .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("stage/execute"))
            .expect("execute stage span");
        let execute_id = execute.get("spanId").and_then(|v| v.as_str()).unwrap();

        let backend = spans
            .iter()
            .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("backend/127.0.0.1:7879"))
            .expect("dispatch span attached");
        assert_eq!(
            backend.get("parentSpanId").and_then(|v| v.as_str()),
            Some(execute_id),
            "dispatch spans are children of the execute stage"
        );
        assert_eq!(
            backend.get("endTimeUnixNano").and_then(|v| v.as_str()),
            Some("86000")
        );
        assert!(text.contains("refrint.outcome"));
        assert!(text.contains("refrint.attempt"));

        let plain = render_request(&trace, &[], None);
        assert_ne!(plain, text);
        assert_eq!(
            render_request_with_dispatch(&trace, &[], None, &[]),
            plain,
            "empty dispatch list matches the plain request document"
        );
    }

    /// A backend-side trace document for point `index`, exactly as a
    /// backend that received the coordinator's propagated traceparent
    /// would serve it: same trace id, root parented on the point anchor.
    fn backend_document(trace_id: &str, index: usize) -> Value {
        let summary = sample_summary();
        let trace = crate::span::RequestTrace {
            context: crate::span::TraceContext {
                trace_id: trace_id.to_owned(),
                parent_span_id: Some(point_span_id(trace_id, index)),
            },
            stages: vec![
                crate::span::StageSpan {
                    name: "parse",
                    start_nanos: 0,
                    dur_nanos: 400,
                },
                crate::span::StageSpan {
                    name: "execute",
                    start_nanos: 400,
                    dur_nanos: 30_000,
                },
            ],
            total_nanos: 30_400,
        };
        request_document(&trace, &[], Some((&summary, "cfg", "lu")))
    }

    #[test]
    fn fleet_document_stitches_backend_subtrees_under_point_anchors() {
        let trace = sample_trace();
        let trace_id = trace.context.trace_id.clone();
        let points = vec![
            BackendSubtree {
                point_index: 0,
                label: "lu/sram".to_owned(),
                node: "127.0.0.1:7001".to_owned(),
                backend_job: Some("j00000001".to_owned()),
                start_nanos: 600,
                dur_nanos: 40_000,
                document: Some(backend_document(&trace_id, 0)),
            },
            BackendSubtree {
                point_index: 1,
                label: "fft/sram".to_owned(),
                node: "result-cache".to_owned(),
                backend_job: None,
                start_nanos: 700,
                dur_nanos: 100,
                document: None,
            },
        ];
        let text = render_fleet_request(&trace, &[], &[], &points);
        let doc = refrint_engine::json::parse(&text).expect("fleet doc parses");
        let groups = doc.get("resourceSpans").and_then(Value::as_arr).unwrap();
        assert_eq!(groups.len(), 2, "coordinator group + one stitched node");

        let all = document_spans(&doc);
        let by_name = |name: &str| {
            all.iter()
                .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
                .copied()
        };

        // Anchors: deterministic ids under the execute stage.
        let anchor = by_name("point/lu/sram").expect("anchor span");
        assert_eq!(
            anchor.get("spanId").and_then(Value::as_str),
            Some(point_span_id(&trace_id, 0).as_str())
        );
        let execute = by_name("stage/execute").unwrap();
        assert_eq!(
            anchor.get("parentSpanId").and_then(Value::as_str),
            execute.get("spanId").and_then(Value::as_str)
        );
        assert!(by_name("point/fft/sram").is_some(), "cached point anchored");

        // The backend root is remapped off the colliding root_span_id and
        // hangs under its point anchor.
        let backend_roots: Vec<&&Value> = all
            .iter()
            .filter(|s| s.get("name").and_then(Value::as_str) == Some("request"))
            .collect();
        assert_eq!(backend_roots.len(), 2, "coordinator root + stitched root");
        let stitched_root = backend_roots
            .iter()
            .find(|s| {
                s.get("parentSpanId").and_then(Value::as_str)
                    == Some(point_span_id(&trace_id, 0).as_str())
            })
            .expect("stitched backend root parented on its anchor");
        assert_ne!(
            stitched_root.get("spanId").and_then(Value::as_str),
            Some(root_span_id(&trace_id).as_str()),
            "backend span ids must be remapped out of the colliding slots"
        );

        // Every stitched span's parent resolves inside the document.
        let ids: Vec<&str> = all
            .iter()
            .filter_map(|s| s.get("spanId").and_then(Value::as_str))
            .collect();
        for span in &all {
            if let Some(parent) = span.get("parentSpanId").and_then(Value::as_str) {
                if parent == "00f067aa0ba902b7" {
                    continue; // the coordinator's own inbound parent
                }
                assert!(ids.contains(&parent), "dangling parent {parent}");
            }
        }

        assert!(text.contains("refrint.fleet_critical_step"));
        assert!(text.contains("refrint.fleet_straggler"));
        assert!(text.contains("\"refrint.node\""));
        assert!(text.contains("refrint.points_total"));
        assert!(text.contains("j00000001"));

        // Stitching is deterministic.
        assert_eq!(text, render_fleet_request(&trace, &[], &[], &points));
    }

    #[test]
    fn fleet_document_without_points_matches_the_dispatch_document_shape() {
        let trace = sample_trace();
        let text = render_fleet_request(&trace, &[], &[], &[]);
        let doc = refrint_engine::json::parse(&text).expect("parses");
        let groups = doc.get("resourceSpans").and_then(Value::as_arr).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(document_spans(&doc).len(), 4, "root + 3 stages");
        assert!(text.contains("\"refrint.fleet_straggler\""));
    }

    #[test]
    fn request_document_without_sim_keeps_the_stage_tree() {
        let trace = sample_trace();
        let text = render_request(&trace, &[], None);
        let doc = refrint_engine::json::parse(&text).expect("parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .unwrap();
        assert_eq!(spans.len(), 4, "root + 3 stages, no sim spans");
        let a = render_request(&trace, &[], None);
        assert_eq!(a, text, "request docs are deterministic");
    }
}
