//! OTLP-shaped JSON export.
//!
//! Renders an [`ObsSummary`] as a document shaped like an OpenTelemetry
//! OTLP/JSON trace export (`resourceSpans` → `scopeSpans` → `spans`), so
//! standard trace tooling can ingest simulator runs. Timestamps are the
//! *simulated* cycle numbers used as nanoseconds — the document is a pure
//! function of the run, so it is byte-deterministic like every other
//! Refrint JSON artifact. Host wall-time lives in the resource attributes
//! (`refrint.host_nanos.<subsystem>`), not in span timestamps.

use refrint_engine::json::{emit, Value};

use crate::recorder::ObsSummary;
use crate::span::Span;

/// FNV-1a, for deterministic trace/span ids.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn attr_str(key: &str, value: &str) -> Value {
    Value::Obj(vec![
        ("key".to_owned(), Value::Str(key.to_owned())),
        (
            "value".to_owned(),
            Value::Obj(vec![(
                "stringValue".to_owned(),
                Value::Str(value.to_owned()),
            )]),
        ),
    ])
}

fn attr_int(key: &str, value: u64) -> Value {
    Value::Obj(vec![
        ("key".to_owned(), Value::Str(key.to_owned())),
        (
            "value".to_owned(),
            // OTLP/JSON carries 64-bit ints as strings.
            Value::Obj(vec![("intValue".to_owned(), Value::Str(value.to_string()))]),
        ),
    ])
}

fn span_value(span: &Span, trace_id: &str, index: usize) -> Value {
    let span_id = format!("{:016x}", fnv1a(index as u64, trace_id.as_bytes()));
    Value::Obj(vec![
        ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
        ("spanId".to_owned(), Value::Str(span_id)),
        (
            "name".to_owned(),
            Value::Str(format!("{}/{}", span.subsystem.name(), span.kind)),
        ),
        ("kind".to_owned(), Value::Num(1.0)), // SPAN_KIND_INTERNAL
        (
            "startTimeUnixNano".to_owned(),
            Value::Str(span.t_start.to_string()),
        ),
        (
            "endTimeUnixNano".to_owned(),
            Value::Str((span.t_start + span.dur).to_string()),
        ),
        (
            "attributes".to_owned(),
            Value::Arr(vec![
                attr_str("refrint.subsystem", span.subsystem.name()),
                attr_int("refrint.sim_cycles", span.dur),
                attr_int("refrint.meta", span.meta),
            ]),
        ),
    ])
}

/// Builds the OTLP-shaped document for one run.
///
/// `config_label` and `workload` identify the run (they seed the
/// deterministic trace id and become resource attributes).
#[must_use]
pub fn document(summary: &ObsSummary, config_label: &str, workload: &str) -> Value {
    let seed = fnv1a(0, config_label.as_bytes());
    let trace_id = format!("{:016x}{:016x}", seed, fnv1a(seed, workload.as_bytes()));

    let mut resource_attrs = vec![
        attr_str("service.name", "refrint"),
        attr_str("refrint.config", config_label),
        attr_str("refrint.workload", workload),
        attr_int("refrint.sample_every", u64::from(summary.sample_every)),
        attr_int("refrint.spans_total", summary.total_spans()),
        attr_int("refrint.spans_overwritten", summary.overwritten),
    ];
    for t in &summary.per_subsystem {
        resource_attrs.push(attr_int(
            &format!("refrint.sim_cycles.{}", t.subsystem.name()),
            t.cycles,
        ));
        resource_attrs.push(attr_int(
            &format!("refrint.host_nanos.{}", t.subsystem.name()),
            t.host_nanos,
        ));
    }

    let spans: Vec<Value> = summary
        .sampled
        .iter()
        .enumerate()
        .map(|(i, s)| span_value(s, &trace_id, i))
        .collect();

    Value::Obj(vec![(
        "resourceSpans".to_owned(),
        Value::Arr(vec![Value::Obj(vec![
            (
                "resource".to_owned(),
                Value::Obj(vec![("attributes".to_owned(), Value::Arr(resource_attrs))]),
            ),
            (
                "scopeSpans".to_owned(),
                Value::Arr(vec![Value::Obj(vec![
                    (
                        "scope".to_owned(),
                        Value::Obj(vec![
                            ("name".to_owned(), Value::Str("refrint-obs".to_owned())),
                            ("version".to_owned(), Value::Str("1".to_owned())),
                        ]),
                    ),
                    ("spans".to_owned(), Value::Arr(spans)),
                ])]),
            ),
        ])]),
    )])
}

/// Renders the OTLP document as a compact JSON string.
#[must_use]
pub fn render(summary: &ObsSummary, config_label: &str, workload: &str) -> String {
    emit(&document(summary, config_label, workload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ObsConfig, Recorder};
    use crate::span::Subsystem;

    fn sample_summary() -> ObsSummary {
        let mut r = Recorder::enabled(ObsConfig::full());
        r.record(Subsystem::Cache, "dl1.access", 10, 2, 0);
        r.record(Subsystem::Dram, "dram.fetch", 12, 40, 1);
        r.summary()
    }

    #[test]
    fn document_is_otlp_shaped_and_parseable() {
        let text = render(&sample_summary(), "eDRAM 50us R.WB(32,32)", "lu");
        let doc = refrint_engine::json::parse(&text).expect("emitted JSON parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .expect("resourceSpans[0].scopeSpans[0].spans exists");
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[0].get("name").and_then(|v| v.as_str()),
            Some("cache/dl1.access")
        );
        let start = spans[1]
            .get("startTimeUnixNano")
            .and_then(|v| v.as_str())
            .unwrap();
        let end = spans[1]
            .get("endTimeUnixNano")
            .and_then(|v| v.as_str())
            .unwrap();
        assert_eq!(start, "12");
        assert_eq!(end, "52");
    }

    #[test]
    fn documents_are_deterministic_and_ids_depend_on_the_run() {
        let s = sample_summary();
        let a = render(&s, "cfg", "lu");
        let b = render(&s, "cfg", "lu");
        assert_eq!(a, b, "export must be byte-deterministic");
        let c = render(&s, "cfg", "fft");
        assert_ne!(a, c, "different runs get different trace ids");
    }

    #[test]
    fn resource_attributes_carry_the_attribution_totals() {
        let text = render(&sample_summary(), "cfg", "lu");
        assert!(text.contains("refrint.sim_cycles.dram"));
        assert!(text.contains("refrint.host_nanos.cache"));
        assert!(text.contains("\"service.name\""));
    }
}
