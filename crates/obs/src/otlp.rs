//! OTLP-shaped JSON export.
//!
//! Renders an [`ObsSummary`] as a document shaped like an OpenTelemetry
//! OTLP/JSON trace export (`resourceSpans` → `scopeSpans` → `spans`), so
//! standard trace tooling can ingest simulator runs. Timestamps are the
//! *simulated* cycle numbers used as nanoseconds — the document is a pure
//! function of the run, so it is byte-deterministic like every other
//! Refrint JSON artifact. Host wall-time lives in the resource attributes
//! (`refrint.host_nanos.<subsystem>`), not in span timestamps.

use refrint_engine::json::{emit, Value};

use crate::critical_path::{request_critical_path, subsystem_critical_path};
use crate::recorder::ObsSummary;
use crate::span::{fnv1a, DispatchSpan, RequestTrace, Span};

fn attr_str(key: &str, value: &str) -> Value {
    Value::Obj(vec![
        ("key".to_owned(), Value::Str(key.to_owned())),
        (
            "value".to_owned(),
            Value::Obj(vec![(
                "stringValue".to_owned(),
                Value::Str(value.to_owned()),
            )]),
        ),
    ])
}

fn attr_int(key: &str, value: u64) -> Value {
    Value::Obj(vec![
        ("key".to_owned(), Value::Str(key.to_owned())),
        (
            "value".to_owned(),
            // OTLP/JSON carries 64-bit ints as strings.
            Value::Obj(vec![("intValue".to_owned(), Value::Str(value.to_string()))]),
        ),
    ])
}

/// A deterministic 16-hex span id derived from the trace id and a slot.
fn span_id(trace_id: &str, slot: u64) -> String {
    format!("{:016x}", fnv1a(slot, trace_id.as_bytes()))
}

fn span_value(span: &Span, trace_id: &str, index: usize, parent: Option<&str>) -> Value {
    let mut fields = vec![
        ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
        (
            "spanId".to_owned(),
            Value::Str(span_id(trace_id, index as u64)),
        ),
    ];
    if let Some(parent) = parent {
        fields.push(("parentSpanId".to_owned(), Value::Str(parent.to_owned())));
    }
    fields.extend([
        (
            "name".to_owned(),
            Value::Str(format!("{}/{}", span.subsystem.name(), span.kind)),
        ),
        ("kind".to_owned(), Value::Num(1.0)), // SPAN_KIND_INTERNAL
        (
            "startTimeUnixNano".to_owned(),
            Value::Str(span.t_start.to_string()),
        ),
        (
            "endTimeUnixNano".to_owned(),
            Value::Str((span.t_start + span.dur).to_string()),
        ),
        (
            "attributes".to_owned(),
            Value::Arr(vec![
                attr_str("refrint.subsystem", span.subsystem.name()),
                attr_int("refrint.sim_cycles", span.dur),
                attr_int("refrint.meta", span.meta),
            ]),
        ),
    ]);
    Value::Obj(fields)
}

/// Builds the OTLP-shaped document for one run.
///
/// `config_label` and `workload` identify the run (they seed the
/// deterministic trace id and become resource attributes).
#[must_use]
pub fn document(summary: &ObsSummary, config_label: &str, workload: &str) -> Value {
    let seed = fnv1a(0, config_label.as_bytes());
    let trace_id = format!("{:016x}{:016x}", seed, fnv1a(seed, workload.as_bytes()));

    let mut resource_attrs = vec![
        attr_str("service.name", "refrint"),
        attr_str("refrint.config", config_label),
        attr_str("refrint.workload", workload),
        attr_int("refrint.sample_every", u64::from(summary.sample_every)),
        attr_int("refrint.spans_total", summary.total_spans()),
        attr_int("refrint.spans_overwritten", summary.overwritten),
    ];
    for t in &summary.per_subsystem {
        resource_attrs.push(attr_int(
            &format!("refrint.sim_cycles.{}", t.subsystem.name()),
            t.cycles,
        ));
        resource_attrs.push(attr_int(
            &format!("refrint.host_nanos.{}", t.subsystem.name()),
            t.host_nanos,
        ));
    }

    let spans: Vec<Value> = summary
        .sampled
        .iter()
        .enumerate()
        .map(|(i, s)| span_value(s, &trace_id, i, None))
        .collect();

    wrap_resource_spans(resource_attrs, spans)
}

/// Wraps resource attributes and a span list in the OTLP envelope
/// (`resourceSpans` → `scopeSpans` → `spans`).
fn wrap_resource_spans(resource_attrs: Vec<Value>, spans: Vec<Value>) -> Value {
    Value::Obj(vec![(
        "resourceSpans".to_owned(),
        Value::Arr(vec![Value::Obj(vec![
            (
                "resource".to_owned(),
                Value::Obj(vec![("attributes".to_owned(), Value::Arr(resource_attrs))]),
            ),
            (
                "scopeSpans".to_owned(),
                Value::Arr(vec![Value::Obj(vec![
                    (
                        "scope".to_owned(),
                        Value::Obj(vec![
                            ("name".to_owned(), Value::Str("refrint-obs".to_owned())),
                            ("version".to_owned(), Value::Str("1".to_owned())),
                        ]),
                    ),
                    ("spans".to_owned(), Value::Arr(spans)),
                ])]),
            ),
        ])]),
    )])
}

/// Renders the OTLP document as a compact JSON string.
#[must_use]
pub fn render(summary: &ObsSummary, config_label: &str, workload: &str) -> String {
    emit(&document(summary, config_label, workload))
}

/// The slot [`span_id`] derives a request's root span id from.
pub const ROOT_SPAN_SLOT: u64 = 0x524f_4f54; // "ROOT"
const STAGE_SPAN_SLOT: u64 = 0x1000;
const DISPATCH_SPAN_SLOT: u64 = 0x2000;
const SIM_SPAN_SLOT: u64 = 0x10_0000;

/// The deterministic root span id for a trace id (exposed so servers can
/// propagate `traceparent` onwards and tests can assert linkage).
#[must_use]
pub fn root_span_id(trace_id: &str) -> String {
    span_id(trace_id, ROOT_SPAN_SLOT)
}

/// Builds the OTLP-shaped document for one served request: a `request`
/// root span (parented on the caller's span when the request arrived with
/// a `traceparent` header), one child span per lifecycle stage, and — for
/// requests that actually executed a simulation — the run's sampled
/// subsystem spans attached as children of the `execute` stage.
///
/// `extra` carries request-identity resource attributes (job id, kind,
/// cache disposition); `sim` is `(summary, config_label, workload)` for
/// executed runs. Stage timestamps are host nanoseconds from request
/// start; simulator span timestamps remain simulated cycles, exactly as
/// in [`document`].
#[must_use]
pub fn request_document(
    trace: &RequestTrace,
    extra: &[(String, String)],
    sim: Option<(&ObsSummary, &str, &str)>,
) -> Value {
    request_document_with_dispatch(trace, extra, sim, &[])
}

/// [`request_document`] for requests a coordinator fanned out to backend
/// nodes: each [`DispatchSpan`] becomes a `backend/<addr>` child of the
/// `execute` stage, so the trace shows where every point ran and where
/// retries went.
#[must_use]
pub fn request_document_with_dispatch(
    trace: &RequestTrace,
    extra: &[(String, String)],
    sim: Option<(&ObsSummary, &str, &str)>,
    dispatch: &[DispatchSpan],
) -> Value {
    let trace_id = trace.context.trace_id.as_str();
    let root_id = root_span_id(trace_id);

    let request_path = request_critical_path(&trace.stages);
    let mut resource_attrs = vec![
        attr_str("service.name", "refrint-serve"),
        attr_int("refrint.request_total_nanos", trace.total_nanos),
        attr_str(
            "refrint.request_critical_stage",
            request_path.bounding_name(),
        ),
    ];
    for (key, value) in extra {
        resource_attrs.push(attr_str(key, value));
    }

    let mut spans = Vec::with_capacity(trace.stages.len() + 1);
    let mut root = vec![
        ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
        ("spanId".to_owned(), Value::Str(root_id.clone())),
    ];
    if let Some(parent) = &trace.context.parent_span_id {
        root.push(("parentSpanId".to_owned(), Value::Str(parent.clone())));
    }
    root.extend([
        ("name".to_owned(), Value::Str("request".to_owned())),
        ("kind".to_owned(), Value::Num(2.0)), // SPAN_KIND_SERVER
        ("startTimeUnixNano".to_owned(), Value::Str("0".to_owned())),
        (
            "endTimeUnixNano".to_owned(),
            Value::Str(trace.total_nanos.to_string()),
        ),
        ("attributes".to_owned(), Value::Arr(Vec::new())),
    ]);
    spans.push(Value::Obj(root));

    let mut execute_id = None;
    for (i, stage) in trace.stages.iter().enumerate() {
        let id = span_id(trace_id, STAGE_SPAN_SLOT + i as u64);
        if stage.name == "execute" {
            execute_id = Some(id.clone());
        }
        spans.push(Value::Obj(vec![
            ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
            ("spanId".to_owned(), Value::Str(id)),
            ("parentSpanId".to_owned(), Value::Str(root_id.clone())),
            (
                "name".to_owned(),
                Value::Str(format!("stage/{}", stage.name)),
            ),
            ("kind".to_owned(), Value::Num(1.0)),
            (
                "startTimeUnixNano".to_owned(),
                Value::Str(stage.start_nanos.to_string()),
            ),
            (
                "endTimeUnixNano".to_owned(),
                Value::Str((stage.start_nanos + stage.dur_nanos).to_string()),
            ),
            (
                "attributes".to_owned(),
                Value::Arr(vec![
                    attr_str("refrint.stage", stage.name),
                    attr_int("refrint.stage_nanos", stage.dur_nanos),
                ]),
            ),
        ]));
    }

    for (i, d) in dispatch.iter().enumerate() {
        let parent = execute_id.as_deref().unwrap_or(root_id.as_str());
        spans.push(Value::Obj(vec![
            ("traceId".to_owned(), Value::Str(trace_id.to_owned())),
            (
                "spanId".to_owned(),
                Value::Str(span_id(trace_id, DISPATCH_SPAN_SLOT + i as u64)),
            ),
            ("parentSpanId".to_owned(), Value::Str(parent.to_owned())),
            (
                "name".to_owned(),
                Value::Str(format!("backend/{}", d.backend)),
            ),
            ("kind".to_owned(), Value::Num(3.0)), // SPAN_KIND_CLIENT
            (
                "startTimeUnixNano".to_owned(),
                Value::Str(d.start_nanos.to_string()),
            ),
            (
                "endTimeUnixNano".to_owned(),
                Value::Str((d.start_nanos + d.dur_nanos).to_string()),
            ),
            (
                "attributes".to_owned(),
                Value::Arr(vec![
                    attr_str("refrint.backend", &d.backend),
                    attr_int("refrint.attempt", u64::from(d.attempt)),
                    attr_str("refrint.outcome", d.outcome),
                    attr_int("refrint.dispatch_nanos", d.dur_nanos),
                ]),
            ),
        ]));
    }

    if let Some((summary, config_label, workload)) = sim {
        let sim_path = subsystem_critical_path(summary);
        resource_attrs.push(attr_str("refrint.config", config_label));
        resource_attrs.push(attr_str("refrint.workload", workload));
        resource_attrs.push(attr_int(
            "refrint.sample_every",
            u64::from(summary.sample_every),
        ));
        resource_attrs.push(attr_str(
            "refrint.run_critical_subsystem",
            sim_path.bounding_name(),
        ));
        for t in &summary.per_subsystem {
            resource_attrs.push(attr_int(
                &format!("refrint.sim_cycles.{}", t.subsystem.name()),
                t.cycles,
            ));
            resource_attrs.push(attr_int(
                &format!("refrint.host_nanos.{}", t.subsystem.name()),
                t.host_nanos,
            ));
        }
        let parent = execute_id.as_deref().unwrap_or(root_id.as_str());
        for (i, s) in summary.sampled.iter().enumerate() {
            spans.push(span_value(
                s,
                trace_id,
                SIM_SPAN_SLOT as usize + i,
                Some(parent),
            ));
        }
    }

    wrap_resource_spans(resource_attrs, spans)
}

/// Renders a request trace document as a compact JSON string.
#[must_use]
pub fn render_request(
    trace: &RequestTrace,
    extra: &[(String, String)],
    sim: Option<(&ObsSummary, &str, &str)>,
) -> String {
    emit(&request_document(trace, extra, sim))
}

/// Renders a request trace document with coordinator dispatch spans as a
/// compact JSON string.
#[must_use]
pub fn render_request_with_dispatch(
    trace: &RequestTrace,
    extra: &[(String, String)],
    sim: Option<(&ObsSummary, &str, &str)>,
    dispatch: &[DispatchSpan],
) -> String {
    emit(&request_document_with_dispatch(trace, extra, sim, dispatch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ObsConfig, Recorder};
    use crate::span::Subsystem;

    fn sample_summary() -> ObsSummary {
        let mut r = Recorder::enabled(ObsConfig::full());
        r.record(Subsystem::Cache, "dl1.access", 10, 2, 0);
        r.record(Subsystem::Dram, "dram.fetch", 12, 40, 1);
        r.summary()
    }

    #[test]
    fn document_is_otlp_shaped_and_parseable() {
        let text = render(&sample_summary(), "eDRAM 50us R.WB(32,32)", "lu");
        let doc = refrint_engine::json::parse(&text).expect("emitted JSON parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .expect("resourceSpans[0].scopeSpans[0].spans exists");
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[0].get("name").and_then(|v| v.as_str()),
            Some("cache/dl1.access")
        );
        let start = spans[1]
            .get("startTimeUnixNano")
            .and_then(|v| v.as_str())
            .unwrap();
        let end = spans[1]
            .get("endTimeUnixNano")
            .and_then(|v| v.as_str())
            .unwrap();
        assert_eq!(start, "12");
        assert_eq!(end, "52");
    }

    #[test]
    fn documents_are_deterministic_and_ids_depend_on_the_run() {
        let s = sample_summary();
        let a = render(&s, "cfg", "lu");
        let b = render(&s, "cfg", "lu");
        assert_eq!(a, b, "export must be byte-deterministic");
        let c = render(&s, "cfg", "fft");
        assert_ne!(a, c, "different runs get different trace ids");
    }

    #[test]
    fn resource_attributes_carry_the_attribution_totals() {
        let text = render(&sample_summary(), "cfg", "lu");
        assert!(text.contains("refrint.sim_cycles.dram"));
        assert!(text.contains("refrint.host_nanos.cache"));
        assert!(text.contains("\"service.name\""));
    }

    fn sample_trace() -> crate::span::RequestTrace {
        crate::span::RequestTrace {
            context: crate::span::TraceContext {
                trace_id: "4bf92f3577b34da6a3ce929d0e0e4736".to_owned(),
                parent_span_id: Some("00f067aa0ba902b7".to_owned()),
            },
            stages: vec![
                crate::span::StageSpan {
                    name: "parse",
                    start_nanos: 0,
                    dur_nanos: 500,
                },
                crate::span::StageSpan {
                    name: "execute",
                    start_nanos: 500,
                    dur_nanos: 90_000,
                },
                crate::span::StageSpan {
                    name: "write",
                    start_nanos: 90_500,
                    dur_nanos: 700,
                },
            ],
            total_nanos: 91_200,
        }
    }

    #[test]
    fn request_document_links_root_stages_and_sim_spans() {
        let summary = sample_summary();
        let extra = [("refrint.job".to_owned(), "j00000001".to_owned())];
        let text = render_request(&sample_trace(), &extra, Some((&summary, "cfg", "lu")));
        let doc = refrint_engine::json::parse(&text).expect("request doc parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .expect("spans array exists");
        // root + 3 stages + 2 sim spans
        assert_eq!(spans.len(), 6);

        let root = &spans[0];
        assert_eq!(root.get("name").and_then(|v| v.as_str()), Some("request"));
        assert_eq!(
            root.get("parentSpanId").and_then(|v| v.as_str()),
            Some("00f067aa0ba902b7"),
            "root must be parented on the inbound traceparent span"
        );
        let root_id = root.get("spanId").and_then(|v| v.as_str()).unwrap();
        assert_eq!(root_id, root_span_id("4bf92f3577b34da6a3ce929d0e0e4736"));

        let execute = spans
            .iter()
            .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("stage/execute"))
            .expect("execute stage span");
        assert_eq!(
            execute.get("parentSpanId").and_then(|v| v.as_str()),
            Some(root_id),
            "stages are children of the root"
        );
        let execute_id = execute.get("spanId").and_then(|v| v.as_str()).unwrap();

        let sim = spans
            .iter()
            .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("cache/dl1.access"))
            .expect("sim span attached");
        assert_eq!(
            sim.get("parentSpanId").and_then(|v| v.as_str()),
            Some(execute_id),
            "sim spans are children of the execute stage"
        );

        assert!(text.contains("refrint.request_critical_stage"));
        assert!(text.contains("\"stringValue\":\"execute\""));
        assert!(text.contains("refrint.run_critical_subsystem"));
        assert!(text.contains("j00000001"));
    }

    #[test]
    fn dispatch_spans_attach_under_the_execute_stage() {
        let trace = sample_trace();
        let dispatch = vec![
            DispatchSpan {
                backend: "127.0.0.1:7878".to_owned(),
                attempt: 1,
                start_nanos: 600,
                dur_nanos: 40_000,
                outcome: "error",
            },
            DispatchSpan {
                backend: "127.0.0.1:7879".to_owned(),
                attempt: 2,
                start_nanos: 41_000,
                dur_nanos: 45_000,
                outcome: "ok",
            },
        ];
        let text = render_request_with_dispatch(&trace, &[], None, &dispatch);
        let doc = refrint_engine::json::parse(&text).expect("parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .unwrap();
        assert_eq!(spans.len(), 6, "root + 3 stages + 2 dispatch spans");

        let execute = spans
            .iter()
            .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("stage/execute"))
            .expect("execute stage span");
        let execute_id = execute.get("spanId").and_then(|v| v.as_str()).unwrap();

        let backend = spans
            .iter()
            .find(|s| s.get("name").and_then(|v| v.as_str()) == Some("backend/127.0.0.1:7879"))
            .expect("dispatch span attached");
        assert_eq!(
            backend.get("parentSpanId").and_then(|v| v.as_str()),
            Some(execute_id),
            "dispatch spans are children of the execute stage"
        );
        assert_eq!(
            backend.get("endTimeUnixNano").and_then(|v| v.as_str()),
            Some("86000")
        );
        assert!(text.contains("refrint.outcome"));
        assert!(text.contains("refrint.attempt"));

        let plain = render_request(&trace, &[], None);
        assert_ne!(plain, text);
        assert_eq!(
            render_request_with_dispatch(&trace, &[], None, &[]),
            plain,
            "empty dispatch list matches the plain request document"
        );
    }

    #[test]
    fn request_document_without_sim_keeps_the_stage_tree() {
        let trace = sample_trace();
        let text = render_request(&trace, &[], None);
        let doc = refrint_engine::json::parse(&text).expect("parses");
        let spans = doc
            .get("resourceSpans")
            .and_then(|v| v.as_arr())
            .and_then(|rs| rs[0].get("scopeSpans"))
            .and_then(|v| v.as_arr())
            .and_then(|ss| ss[0].get("spans"))
            .and_then(|v| v.as_arr())
            .unwrap();
        assert_eq!(spans.len(), 4, "root + 3 stages, no sim spans");
        let a = render_request(&trace, &[], None);
        assert_eq!(a, text, "request docs are deterministic");
    }
}
