//! A fixed-capacity ring of timestamped counter snapshots.
//!
//! `/metrics` is a point-in-time snapshot; answering "why was minute 3
//! slow" needs history. [`TimeSeriesRing`] retains the last N windows of a
//! fixed counter vector (one `u64` per registered name), pushed on a
//! background tick. The ring pre-sizes every window at construction, so a
//! steady-state push copies into an existing slot — **zero allocation on
//! the hot path** — and the oldest window is overwritten once capacity is
//! reached.
//!
//! Counters are assumed monotonic (Prometheus-counter semantics), so a
//! rate over a horizon is simply the delta between the newest window and
//! the oldest window inside that horizon. Histogram families are stored
//! as their per-bucket cumulative counts; merging two snapshots of the
//! same family is the per-bucket delta, which [`delta`](TimeSeriesRing::delta)
//! already computes — a histogram is just more columns.
//!
//! Timestamps must be non-decreasing: a push older than the newest window
//! is rejected (and counted), a push at the same timestamp replaces the
//! newest window in place. Both rules keep the ring strictly ordered so
//! window lookups can binary-search-free scan from the tail.

/// One retained window: a timestamp and a snapshot of every counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Milliseconds since the ring's owner-defined epoch.
    pub t_millis: u64,
    /// Counter values, index-aligned with [`TimeSeriesRing::names`].
    pub values: Vec<u64>,
}

/// A fixed-capacity ring of timestamped counter snapshots.
#[derive(Debug)]
pub struct TimeSeriesRing {
    names: Vec<String>,
    windows: Vec<Window>,
    capacity: usize,
    /// Index of the oldest window once the ring is full.
    head: usize,
    dropped: u64,
    rejected: u64,
}

impl TimeSeriesRing {
    /// Creates a ring retaining up to `capacity` windows of the named
    /// counters. Capacity is clamped to at least 2 (a single window has
    /// no deltas).
    #[must_use]
    pub fn new(names: Vec<String>, capacity: usize) -> Self {
        Self {
            names,
            windows: Vec::new(),
            capacity: capacity.max(2),
            head: 0,
            dropped: 0,
            rejected: 0,
        }
    }

    /// The registered counter names, index-aligned with window values.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of retained windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The ring's capacity in windows.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Windows overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pushes rejected for running backwards in time.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Records a snapshot. `values` must be index-aligned with `names`
    /// (extra values are truncated, missing values zero-filled). Returns
    /// `false` — counting the rejection — when `t_millis` is older than
    /// the newest window; a push at the newest window's exact timestamp
    /// replaces it in place.
    pub fn push(&mut self, t_millis: u64, values: &[u64]) -> bool {
        let width = self.names.len();
        if let Some(newest) = self.newest() {
            if t_millis < newest.t_millis {
                self.rejected += 1;
                return false;
            }
            if t_millis == newest.t_millis {
                let slot = self.newest_index();
                copy_values(&mut self.windows[slot].values, values, width);
                return true;
            }
        }
        if self.windows.len() < self.capacity {
            // Warm-up: allocate this window once; it is reused forever.
            let mut stored = vec![0; width];
            copy_values(&mut stored, values, width);
            self.windows.push(Window {
                t_millis,
                values: stored,
            });
        } else {
            // Steady state: overwrite the oldest slot in place.
            let slot = self.head;
            self.windows[slot].t_millis = t_millis;
            copy_values(&mut self.windows[slot].values, values, width);
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
        true
    }

    fn newest_index(&self) -> usize {
        if self.windows.len() < self.capacity || self.head == 0 {
            self.windows.len() - 1
        } else {
            self.head - 1
        }
    }

    /// The newest retained window, if any.
    #[must_use]
    pub fn newest(&self) -> Option<&Window> {
        if self.windows.is_empty() {
            None
        } else {
            Some(&self.windows[self.newest_index()])
        }
    }

    /// The oldest retained window, if any.
    #[must_use]
    pub fn oldest(&self) -> Option<&Window> {
        if self.windows.is_empty() {
            None
        } else if self.windows.len() < self.capacity {
            Some(&self.windows[0])
        } else {
            Some(&self.windows[self.head])
        }
    }

    /// Iterates the retained windows oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Window> {
        let (older, newer) = if self.windows.len() < self.capacity {
            (&self.windows[..], &self.windows[..0])
        } else {
            let (tail, head) = self.windows.split_at(self.head);
            (head, tail)
        };
        older.iter().chain(newer.iter())
    }

    /// The column index of a counter name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The baseline window for a horizon: the oldest window within
    /// `window_millis` of the newest (or the overall oldest when the
    /// horizon exceeds retention). `None` until two windows exist.
    #[must_use]
    pub fn baseline(&self, window_millis: u64) -> Option<&Window> {
        let newest = self.newest()?;
        if self.len() < 2 {
            return None;
        }
        let cutoff = newest.t_millis.saturating_sub(window_millis);
        self.iter().find(|w| w.t_millis >= cutoff)
    }

    /// The counter's increase over the horizon (newest minus the baseline
    /// window inside it), saturating at zero so a counter reset cannot go
    /// negative. `None` for unknown names or fewer than two windows.
    #[must_use]
    pub fn delta(&self, name: &str, window_millis: u64) -> Option<u64> {
        let col = self.column(name)?;
        let newest = self.newest()?;
        let base = self.baseline(window_millis)?;
        Some(newest.values[col].saturating_sub(base.values[col]))
    }

    /// The counter's per-second rate over the horizon. `None` when the
    /// delta is unavailable or the horizon spans no elapsed time.
    #[must_use]
    pub fn rate_per_sec(&self, name: &str, window_millis: u64) -> Option<f64> {
        let col = self.column(name)?;
        let newest = self.newest()?;
        let base = self.baseline(window_millis)?;
        let elapsed = newest.t_millis.saturating_sub(base.t_millis);
        if elapsed == 0 {
            return None;
        }
        let delta = newest.values[col].saturating_sub(base.values[col]);
        Some(delta as f64 * 1000.0 / elapsed as f64)
    }

    /// Merges a histogram family over the horizon: per-column deltas for
    /// every name with the given prefix, in registration order. Cumulative
    /// `le`-bucket snapshots stay cumulative under subtraction, so the
    /// result is the histogram of the horizon alone.
    #[must_use]
    pub fn merge_histogram(&self, prefix: &str, window_millis: u64) -> Vec<(String, u64)> {
        let Some(newest) = self.newest() else {
            return Vec::new();
        };
        let Some(base) = self.baseline(window_millis) else {
            return Vec::new();
        };
        self.names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with(prefix))
            .map(|(col, n)| {
                (
                    n.clone(),
                    newest.values[col].saturating_sub(base.values[col]),
                )
            })
            .collect()
    }
}

fn copy_values(stored: &mut [u64], values: &[u64], width: usize) {
    for (i, slot) in stored.iter_mut().enumerate().take(width) {
        *slot = values.get(i).copied().unwrap_or(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(capacity: usize) -> TimeSeriesRing {
        TimeSeriesRing::new(vec!["a".to_owned(), "b".to_owned()], capacity)
    }

    #[test]
    fn warm_up_then_wraparound_keeps_the_newest_windows() {
        let mut r = ring(4);
        assert!(r.is_empty());
        for t in 0..10u64 {
            assert!(r.push(t * 100, &[t, t * 2]));
            // Order is oldest -> newest at EVERY fill level, including
            // mid-wrap.
            let ts: Vec<u64> = r.iter().map(|w| w.t_millis).collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            assert_eq!(ts, sorted, "iteration must be chronological at t={t}");
            assert_eq!(r.newest().unwrap().t_millis, t * 100);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let ts: Vec<u64> = r.iter().map(|w| w.t_millis).collect();
        assert_eq!(ts, vec![600, 700, 800, 900]);
        assert_eq!(r.oldest().unwrap().values, vec![6, 12]);
        assert_eq!(r.newest().unwrap().values, vec![9, 18]);
    }

    #[test]
    fn monotonic_timestamp_edges() {
        let mut r = ring(4);
        assert!(r.push(100, &[1, 1]));
        // Same timestamp replaces in place, no new window.
        assert!(r.push(100, &[5, 5]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.newest().unwrap().values, vec![5, 5]);
        // Going backwards is rejected and counted.
        assert!(!r.push(99, &[9, 9]));
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.newest().unwrap().values, vec![5, 5]);
        // Forward progress resumes normally.
        assert!(r.push(200, &[6, 6]));
        assert_eq!(r.len(), 2);
        // Replace-in-place also works on a full, wrapped ring.
        for t in [300u64, 400, 500] {
            assert!(r.push(t, &[7, 7]));
        }
        assert_eq!(r.len(), 4);
        assert!(r.push(500, &[8, 8]));
        assert_eq!(r.len(), 4);
        assert_eq!(r.newest().unwrap().values, vec![8, 8]);
        assert!(!r.push(450, &[0, 0]));
        assert_eq!(r.rejected(), 2);
    }

    #[test]
    fn delta_and_rate_cross_the_wraparound() {
        let mut r = ring(3);
        for (t, v) in [(0u64, 0u64), (1000, 10), (2000, 30), (3000, 60)] {
            assert!(r.push(t, &[v, 0]));
        }
        // Retained windows: 1000->10, 2000->30, 3000->60.
        assert_eq!(r.delta("a", 10_000), Some(50));
        assert_eq!(r.delta("a", 1_000), Some(30));
        assert_eq!(r.rate_per_sec("a", 10_000), Some(25.0));
        assert_eq!(r.rate_per_sec("a", 1_000), Some(30.0));
        assert_eq!(r.delta("missing", 1_000), None);
    }

    #[test]
    fn delta_needs_two_windows_and_saturates_on_reset() {
        let mut r = ring(4);
        assert_eq!(r.delta("a", 1_000), None, "empty ring");
        r.push(0, &[100, 0]);
        assert_eq!(r.delta("a", 1_000), None, "single window has no delta");
        r.push(1000, &[40, 0]); // counter reset (restart)
        assert_eq!(r.delta("a", 10_000), Some(0), "resets saturate to zero");
    }

    #[test]
    fn histogram_merge_is_the_per_bucket_delta() {
        let names = vec![
            "lat_bucket_100".to_owned(),
            "lat_bucket_1000".to_owned(),
            "lat_count".to_owned(),
            "other".to_owned(),
        ];
        let mut r = TimeSeriesRing::new(names, 8);
        r.push(0, &[2, 5, 5, 1]);
        r.push(1000, &[3, 9, 9, 2]);
        let merged = r.merge_histogram("lat_", 10_000);
        assert_eq!(
            merged,
            vec![
                ("lat_bucket_100".to_owned(), 1),
                ("lat_bucket_1000".to_owned(), 4),
                ("lat_count".to_owned(), 4),
            ]
        );
    }

    #[test]
    fn steady_state_push_does_not_grow_storage() {
        let mut r = ring(3);
        for t in 0..3u64 {
            r.push(t, &[t, t]);
        }
        let addr_before: Vec<*const u64> = r.windows.iter().map(|w| w.values.as_ptr()).collect();
        for t in 3..20u64 {
            r.push(t, &[t, t]);
        }
        let addr_after: Vec<*const u64> = r.windows.iter().map(|w| w.values.as_ptr()).collect();
        assert_eq!(
            addr_before, addr_after,
            "wraparound must reuse the warm-up allocations"
        );
    }
}
