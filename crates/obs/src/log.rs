//! Minimal structured logging: levelled JSON or logfmt-style text lines.
//!
//! Pure `std`, allocation-light, and deliberately tiny: `refrint-serve`
//! needs log lines that carry a trace id so a request can be followed
//! from access log to span tree, not a logging framework. Lines go to a
//! caller-chosen writer (stderr in production — stdout and response
//! bodies stay byte-identical with logging on or off).

use std::fmt;
use std::io::Write;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use refrint_engine::json::escape;

/// Log severity, ordered so `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the operator must look at.
    Error,
    /// Degraded but recoverable conditions.
    Warn,
    /// Request and job lifecycle events (the access log lives here).
    Info,
    /// Per-stage chatter for debugging.
    Debug,
}

impl Level {
    /// Parses `error|warn|info|debug` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// Reads a level from the environment variable `var`, falling back to
    /// `default` when unset or unparseable.
    #[must_use]
    pub fn from_env(var: &str, default: Level) -> Level {
        std::env::var(var)
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(default)
    }

    /// The lowercase level name used in log lines.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Output encoding for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `key=value` pairs, one line per event.
    #[default]
    Text,
    /// One JSON object per line.
    Json,
}

impl LogFormat {
    /// Parses `json|text`.
    #[must_use]
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s.trim().to_ascii_lowercase().as_str() {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

enum Sink {
    Stderr,
    Writer(Mutex<Box<dyn Write + Send>>),
    Disabled,
}

/// A levelled line logger. Cheap to share behind the server state; a
/// disabled logger reduces every call to one branch.
pub struct Logger {
    level: Level,
    format: LogFormat,
    sink: Sink,
}

impl fmt::Debug for Logger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level)
            .field("format", &self.format)
            .field(
                "sink",
                &match self.sink {
                    Sink::Stderr => "stderr",
                    Sink::Writer(_) => "writer",
                    Sink::Disabled => "disabled",
                },
            )
            .finish()
    }
}

impl Logger {
    /// A logger that drops every line.
    #[must_use]
    pub fn disabled() -> Logger {
        Logger {
            level: Level::Error,
            format: LogFormat::Text,
            sink: Sink::Disabled,
        }
    }

    /// A logger writing to stderr.
    #[must_use]
    pub fn to_stderr(level: Level, format: LogFormat) -> Logger {
        Logger {
            level,
            format,
            sink: Sink::Stderr,
        }
    }

    /// A logger writing to an arbitrary writer (tests, capture buffers).
    #[must_use]
    pub fn to_writer(level: Level, format: LogFormat, writer: Box<dyn Write + Send>) -> Logger {
        Logger {
            level,
            format,
            sink: Sink::Writer(Mutex::new(writer)),
        }
    }

    /// Whether lines at `level` would be emitted.
    #[must_use]
    pub fn enabled(&self, level: Level) -> bool {
        !matches!(self.sink, Sink::Disabled) && level <= self.level
    }

    /// Emits one line. `fields` are `(key, value)` pairs appended after
    /// the timestamp, level and event name; values are escaped as needed.
    pub fn log(&self, level: Level, event: &str, fields: &[(&str, String)]) {
        if !self.enabled(level) {
            return;
        }
        let line = render_line(self.format, level, event, fields);
        match &self.sink {
            Sink::Stderr => {
                let stderr = std::io::stderr();
                let mut out = stderr.lock();
                let _ = out.write_all(line.as_bytes());
            }
            Sink::Writer(w) => {
                if let Ok(mut out) = w.lock() {
                    let _ = out.write_all(line.as_bytes());
                    let _ = out.flush();
                }
            }
            Sink::Disabled => {}
        }
    }

    /// `log` at [`Level::Error`].
    pub fn error(&self, event: &str, fields: &[(&str, String)]) {
        self.log(Level::Error, event, fields);
    }

    /// `log` at [`Level::Warn`].
    pub fn warn(&self, event: &str, fields: &[(&str, String)]) {
        self.log(Level::Warn, event, fields);
    }

    /// `log` at [`Level::Info`].
    pub fn info(&self, event: &str, fields: &[(&str, String)]) {
        self.log(Level::Info, event, fields);
    }

    /// `log` at [`Level::Debug`].
    pub fn debug(&self, event: &str, fields: &[(&str, String)]) {
        self.log(Level::Debug, event, fields);
    }
}

fn unix_seconds() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

fn render_line(format: LogFormat, level: Level, event: &str, fields: &[(&str, String)]) -> String {
    let ts = unix_seconds();
    match format {
        LogFormat::Json => {
            let mut line = format!(
                "{{\"ts\":{ts:.6},\"level\":\"{}\",\"event\":\"{}\"",
                level.name(),
                escape(event)
            );
            for (key, value) in fields {
                line.push_str(&format!(",\"{}\":\"{}\"", escape(key), escape(value)));
            }
            line.push_str("}\n");
            line
        }
        LogFormat::Text => {
            let mut line = format!("ts={ts:.6} level={} event={event}", level.name());
            for (key, value) in fields {
                if value.contains(|c: char| c.is_whitespace() || c == '"') {
                    line.push_str(&format!(" {key}={value:?}"));
                } else {
                    line.push_str(&format!(" {key}={value}"));
                }
            }
            line.push('\n');
            line
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A writer that appends into a shared buffer, for asserting output.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn captured(level: Level, format: LogFormat) -> (Logger, Capture) {
        let cap = Capture::default();
        let logger = Logger::to_writer(level, format, Box::new(cap.clone()));
        (logger, cap)
    }

    #[test]
    fn level_ordering_and_parsing() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn lines_below_the_level_are_dropped() {
        let (logger, cap) = captured(Level::Warn, LogFormat::Text);
        logger.info("http.request", &[]);
        logger.debug("noise", &[]);
        assert!(cap.0.lock().unwrap().is_empty());
        logger.warn("queue.full", &[("depth", "64".to_owned())]);
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("level=warn event=queue.full depth=64"));
    }

    #[test]
    fn json_lines_parse_and_carry_fields() {
        let (logger, cap) = captured(Level::Info, LogFormat::Json);
        logger.info(
            "http.request",
            &[
                ("trace_id", "4bf92f3577b34da6a3ce929d0e0e4736".to_owned()),
                ("path", "/run".to_owned()),
                ("quoted", "a \"b\" c".to_owned()),
            ],
        );
        let text = String::from_utf8(cap.0.lock().unwrap().clone()).unwrap();
        let line = text.lines().next().expect("one line");
        let doc = refrint_engine::json::parse(line).expect("log line is valid JSON");
        assert_eq!(doc.get("level").and_then(|v| v.as_str()), Some("info"));
        assert_eq!(
            doc.get("trace_id").and_then(|v| v.as_str()),
            Some("4bf92f3577b34da6a3ce929d0e0e4736")
        );
        assert_eq!(
            doc.get("quoted").and_then(|v| v.as_str()),
            Some("a \"b\" c")
        );
    }

    #[test]
    fn disabled_logger_emits_nothing() {
        let logger = Logger::disabled();
        assert!(!logger.enabled(Level::Error));
        logger.error("boom", &[]); // must not panic or print
    }
}
