//! Critical-path reduction over span trees.
//!
//! Two reductions share one report shape: for a single simulator run,
//! which subsystem chain bounds `execution_cycles` (contributions in
//! simulated cycles); for a served request, which lifecycle stage bounds
//! wall latency (contributions in host nanoseconds). In both cases the
//! spans at one tree level are mutually exclusive time, so the "path" is
//! the contribution ranking and the bounding step is its head.

use std::fmt;

use crate::recorder::ObsSummary;
use crate::span::StageSpan;

/// One step on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Step name (a subsystem or a request stage).
    pub name: String,
    /// Contribution in the report's unit (cycles or nanoseconds).
    pub contribution: u64,
    /// Fraction of the total attributed to this step (0..=1).
    pub share: f64,
}

/// A critical-path report: steps ranked by contribution, largest first.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The unit `contribution` and `total` are measured in.
    pub unit: &'static str,
    /// Sum of every contribution (the denominator for shares).
    pub total: u64,
    /// Non-zero steps, descending by contribution (ties break by name).
    pub steps: Vec<PathStep>,
}

impl CriticalPath {
    /// Builds a report from raw `(name, contribution)` pairs; zero
    /// contributions are dropped.
    #[must_use]
    pub fn from_contributions(unit: &'static str, items: &[(String, u64)]) -> CriticalPath {
        let total: u64 = items.iter().map(|(_, c)| c).sum();
        let mut steps: Vec<PathStep> = items
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(name, c)| PathStep {
                name: name.clone(),
                contribution: *c,
                share: if total == 0 {
                    0.0
                } else {
                    *c as f64 / total as f64
                },
            })
            .collect();
        steps.sort_by(|a, b| {
            b.contribution
                .cmp(&a.contribution)
                .then_with(|| a.name.cmp(&b.name))
        });
        CriticalPath { unit, total, steps }
    }

    /// The step that bounds the total — the head of the ranking.
    #[must_use]
    pub fn bounding(&self) -> Option<&PathStep> {
        self.steps.first()
    }

    /// The bounding step's name, or `"-"` when nothing contributed.
    #[must_use]
    pub fn bounding_name(&self) -> &str {
        self.bounding().map_or("-", |s| s.name.as_str())
    }
}

impl fmt::Display for CriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>14} {:>7} {:>7}",
            "step", self.unit, "share", "cumul"
        )?;
        let mut cumulative = 0.0;
        for step in &self.steps {
            cumulative += step.share;
            writeln!(
                f,
                "{:<14} {:>14} {:>6.1}% {:>6.1}%",
                step.name,
                step.contribution,
                step.share * 100.0,
                cumulative * 100.0,
            )?;
        }
        write!(
            f,
            "bounding step: {} ({} of {} {})",
            self.bounding_name(),
            self.bounding().map_or(0, |s| s.contribution),
            self.total,
            self.unit,
        )
    }
}

/// The subsystem chain bounding a run's `execution_cycles`: per-subsystem
/// exact cycle attribution, ranked. Exact regardless of `sample_every`
/// because cycle totals are maintained for every event.
#[must_use]
pub fn subsystem_critical_path(summary: &ObsSummary) -> CriticalPath {
    let items: Vec<(String, u64)> = summary
        .per_subsystem
        .iter()
        .map(|t| (t.subsystem.name().to_owned(), t.cycles))
        .collect();
    CriticalPath::from_contributions("cycles", &items)
}

/// The lifecycle stage bounding a request's wall latency.
#[must_use]
pub fn request_critical_path(stages: &[StageSpan]) -> CriticalPath {
    let items: Vec<(String, u64)> = stages
        .iter()
        .map(|s| (s.name.to_owned(), s.dur_nanos))
        .collect();
    CriticalPath::from_contributions("nanos", &items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ObsConfig, Recorder};
    use crate::span::Subsystem;

    #[test]
    fn run_path_ranks_subsystems_by_exact_cycles() {
        let mut r = Recorder::enabled(ObsConfig::sampled(16));
        for t in 0..50 {
            r.record(Subsystem::Cache, "dl1.access", t, 2, 0);
            r.record(Subsystem::Dram, "dram.fetch", t, 40, 0);
            r.record(Subsystem::Noc, "l3.request", t, 7, 0);
        }
        let path = subsystem_critical_path(&r.summary());
        assert_eq!(path.unit, "cycles");
        assert_eq!(path.bounding_name(), "dram");
        assert_eq!(path.bounding().unwrap().contribution, 2000);
        assert_eq!(path.total, 50 * (2 + 40 + 7));
        let names: Vec<&str> = path.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["dram", "noc", "cache"]);
        let shares: f64 = path.steps.iter().map(|s| s.share).sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn request_path_names_the_bounding_stage() {
        let stages = [
            StageSpan {
                name: "parse",
                start_nanos: 0,
                dur_nanos: 900,
            },
            StageSpan {
                name: "execute",
                start_nanos: 900,
                dur_nanos: 80_000,
            },
            StageSpan {
                name: "write",
                start_nanos: 80_900,
                dur_nanos: 1_500,
            },
        ];
        let path = request_critical_path(&stages);
        assert_eq!(path.bounding_name(), "execute");
        assert!(path.bounding().unwrap().share > 0.9);
        let text = path.to_string();
        assert!(text.contains("bounding step: execute"));
        assert!(text.contains("nanos"));
    }

    #[test]
    fn empty_input_has_no_bounding_step() {
        let path = request_critical_path(&[]);
        assert!(path.bounding().is_none());
        assert_eq!(path.bounding_name(), "-");
        assert_eq!(path.total, 0);
    }

    #[test]
    fn ties_rank_deterministically_by_name() {
        let path = CriticalPath::from_contributions(
            "nanos",
            &[
                ("b".to_owned(), 10),
                ("a".to_owned(), 10),
                ("c".to_owned(), 0),
            ],
        );
        let names: Vec<&str> = path.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"], "zero steps dropped, ties by name");
    }
}
