//! Critical-path reduction over span trees.
//!
//! Two reductions share one report shape: for a single simulator run,
//! which subsystem chain bounds `execution_cycles` (contributions in
//! simulated cycles); for a served request, which lifecycle stage bounds
//! wall latency (contributions in host nanoseconds). In both cases the
//! spans at one tree level are mutually exclusive time, so the "path" is
//! the contribution ranking and the bounding step is its head.

use std::fmt;

use crate::recorder::ObsSummary;
use crate::span::StageSpan;

/// One step on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Step name (a subsystem or a request stage).
    pub name: String,
    /// Contribution in the report's unit (cycles or nanoseconds).
    pub contribution: u64,
    /// Fraction of the total attributed to this step (0..=1).
    pub share: f64,
}

/// A critical-path report: steps ranked by contribution, largest first.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The unit `contribution` and `total` are measured in.
    pub unit: &'static str,
    /// Sum of every contribution (the denominator for shares).
    pub total: u64,
    /// Non-zero steps, descending by contribution (ties break by name).
    pub steps: Vec<PathStep>,
}

impl CriticalPath {
    /// Builds a report from raw `(name, contribution)` pairs; zero
    /// contributions are dropped.
    #[must_use]
    pub fn from_contributions(unit: &'static str, items: &[(String, u64)]) -> CriticalPath {
        let total: u64 = items.iter().map(|(_, c)| c).sum();
        let mut steps: Vec<PathStep> = items
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(name, c)| PathStep {
                name: name.clone(),
                contribution: *c,
                share: if total == 0 {
                    0.0
                } else {
                    *c as f64 / total as f64
                },
            })
            .collect();
        steps.sort_by(|a, b| {
            b.contribution
                .cmp(&a.contribution)
                .then_with(|| a.name.cmp(&b.name))
        });
        CriticalPath { unit, total, steps }
    }

    /// The step that bounds the total — the head of the ranking.
    #[must_use]
    pub fn bounding(&self) -> Option<&PathStep> {
        self.steps.first()
    }

    /// The bounding step's name, or `"-"` when nothing contributed.
    #[must_use]
    pub fn bounding_name(&self) -> &str {
        self.bounding().map_or("-", |s| s.name.as_str())
    }
}

impl fmt::Display for CriticalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>14} {:>7} {:>7}",
            "step", self.unit, "share", "cumul"
        )?;
        let mut cumulative = 0.0;
        for step in &self.steps {
            cumulative += step.share;
            writeln!(
                f,
                "{:<14} {:>14} {:>6.1}% {:>6.1}%",
                step.name,
                step.contribution,
                step.share * 100.0,
                cumulative * 100.0,
            )?;
        }
        write!(
            f,
            "bounding step: {} ({} of {} {})",
            self.bounding_name(),
            self.bounding().map_or(0, |s| s.contribution),
            self.total,
            self.unit,
        )
    }
}

/// The subsystem chain bounding a run's `execution_cycles`: per-subsystem
/// exact cycle attribution, ranked. Exact regardless of `sample_every`
/// because cycle totals are maintained for every event.
#[must_use]
pub fn subsystem_critical_path(summary: &ObsSummary) -> CriticalPath {
    let items: Vec<(String, u64)> = summary
        .per_subsystem
        .iter()
        .map(|t| (t.subsystem.name().to_owned(), t.cycles))
        .collect();
    CriticalPath::from_contributions("cycles", &items)
}

/// The lifecycle stage bounding a request's wall latency.
#[must_use]
pub fn request_critical_path(stages: &[StageSpan]) -> CriticalPath {
    let items: Vec<(String, u64)> = stages
        .iter()
        .map(|s| (s.name.to_owned(), s.dur_nanos))
        .collect();
    CriticalPath::from_contributions("nanos", &items)
}

/// One stitched point of a fanned-out request, as seen from the
/// coordinator: how long the dispatch round-trip took on the wire and how
/// much of it the backend itself reports having spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetPoint {
    /// The point's label (e.g. `lu/sram`).
    pub label: String,
    /// Coordinator-observed round-trip nanoseconds for the dispatch.
    pub dispatch_nanos: u64,
    /// Backend-reported total request nanoseconds for the same point.
    pub backend_nanos: u64,
}

/// The cross-node critical path of a fanned-out request.
///
/// Non-`execute` stages contribute as in [`request_critical_path`]; the
/// `execute` stage is decomposed against the straggler point (the longest
/// dispatch round-trip): its backend-reported time is `backend_sim`, the
/// round-trip remainder is `network`, and whatever the coordinator spent
/// beyond the straggler (cache feeding, merging, waiting out local queue
/// contention) is `merge`. With no stitched points this degrades to the
/// plain request path.
#[must_use]
pub fn fleet_critical_path(stages: &[StageSpan], points: &[FleetPoint]) -> CriticalPath {
    let Some(straggler) = fleet_straggler(points) else {
        return request_critical_path(stages);
    };
    let mut items: Vec<(String, u64)> = Vec::with_capacity(stages.len() + 2);
    let mut execute_nanos = 0;
    for stage in stages {
        if stage.name == "execute" {
            execute_nanos = stage.dur_nanos;
        } else {
            items.push((stage.name.to_owned(), stage.dur_nanos));
        }
    }
    let backend_sim = straggler.backend_nanos.min(straggler.dispatch_nanos);
    let network = straggler.dispatch_nanos - backend_sim;
    let merge = execute_nanos.saturating_sub(straggler.dispatch_nanos);
    items.push(("backend_sim".to_owned(), backend_sim));
    items.push(("network".to_owned(), network));
    items.push(("merge".to_owned(), merge));
    CriticalPath::from_contributions("nanos", &items)
}

/// The straggler point of a fanned-out request: the longest dispatch
/// round-trip, ties broken by label for determinism.
#[must_use]
pub fn fleet_straggler(points: &[FleetPoint]) -> Option<&FleetPoint> {
    points.iter().max_by(|a, b| {
        a.dispatch_nanos
            .cmp(&b.dispatch_nanos)
            .then_with(|| b.label.cmp(&a.label))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ObsConfig, Recorder};
    use crate::span::Subsystem;

    #[test]
    fn run_path_ranks_subsystems_by_exact_cycles() {
        let mut r = Recorder::enabled(ObsConfig::sampled(16));
        for t in 0..50 {
            r.record(Subsystem::Cache, "dl1.access", t, 2, 0);
            r.record(Subsystem::Dram, "dram.fetch", t, 40, 0);
            r.record(Subsystem::Noc, "l3.request", t, 7, 0);
        }
        let path = subsystem_critical_path(&r.summary());
        assert_eq!(path.unit, "cycles");
        assert_eq!(path.bounding_name(), "dram");
        assert_eq!(path.bounding().unwrap().contribution, 2000);
        assert_eq!(path.total, 50 * (2 + 40 + 7));
        let names: Vec<&str> = path.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["dram", "noc", "cache"]);
        let shares: f64 = path.steps.iter().map(|s| s.share).sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn request_path_names_the_bounding_stage() {
        let stages = [
            StageSpan {
                name: "parse",
                start_nanos: 0,
                dur_nanos: 900,
            },
            StageSpan {
                name: "execute",
                start_nanos: 900,
                dur_nanos: 80_000,
            },
            StageSpan {
                name: "write",
                start_nanos: 80_900,
                dur_nanos: 1_500,
            },
        ];
        let path = request_critical_path(&stages);
        assert_eq!(path.bounding_name(), "execute");
        assert!(path.bounding().unwrap().share > 0.9);
        let text = path.to_string();
        assert!(text.contains("bounding step: execute"));
        assert!(text.contains("nanos"));
    }

    #[test]
    fn empty_input_has_no_bounding_step() {
        let path = request_critical_path(&[]);
        assert!(path.bounding().is_none());
        assert_eq!(path.bounding_name(), "-");
        assert_eq!(path.total, 0);
    }

    #[test]
    fn fleet_path_decomposes_execute_against_the_straggler() {
        let stages = [
            StageSpan {
                name: "parse",
                start_nanos: 0,
                dur_nanos: 1_000,
            },
            StageSpan {
                name: "execute",
                start_nanos: 1_000,
                dur_nanos: 100_000,
            },
            StageSpan {
                name: "write",
                start_nanos: 101_000,
                dur_nanos: 2_000,
            },
        ];
        let points = [
            FleetPoint {
                label: "lu/sram".to_owned(),
                dispatch_nanos: 40_000,
                backend_nanos: 35_000,
            },
            FleetPoint {
                label: "fft/sram".to_owned(),
                dispatch_nanos: 90_000,
                backend_nanos: 70_000,
            },
        ];
        let path = fleet_critical_path(&stages, &points);
        assert_eq!(path.unit, "nanos");
        assert_eq!(path.bounding_name(), "backend_sim");
        let find = |name: &str| {
            path.steps
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.contribution)
        };
        assert_eq!(find("backend_sim"), Some(70_000), "straggler's own time");
        assert_eq!(find("network"), Some(20_000), "round-trip minus backend");
        assert_eq!(find("merge"), Some(10_000), "execute beyond the straggler");
        assert_eq!(find("parse"), Some(1_000));
        assert_eq!(find("write"), Some(2_000));
        assert!(find("execute").is_none(), "execute is decomposed away");
        assert_eq!(
            fleet_straggler(&points).map(|p| p.label.as_str()),
            Some("fft/sram")
        );
    }

    #[test]
    fn fleet_path_without_points_is_the_request_path() {
        let stages = [StageSpan {
            name: "execute",
            start_nanos: 0,
            dur_nanos: 500,
        }];
        assert_eq!(
            fleet_critical_path(&stages, &[]),
            request_critical_path(&stages)
        );
    }

    #[test]
    fn fleet_straggler_breaks_ties_by_label() {
        let points = [
            FleetPoint {
                label: "b".to_owned(),
                dispatch_nanos: 10,
                backend_nanos: 5,
            },
            FleetPoint {
                label: "a".to_owned(),
                dispatch_nanos: 10,
                backend_nanos: 5,
            },
        ];
        assert_eq!(
            fleet_straggler(&points).map(|p| p.label.as_str()),
            Some("a"),
            "equal round-trips pick the lexicographically first label"
        );
    }

    #[test]
    fn ties_rank_deterministically_by_name() {
        let path = CriticalPath::from_contributions(
            "nanos",
            &[
                ("b".to_owned(), 10),
                ("a".to_owned(), 10),
                ("c".to_owned(), 0),
            ],
        );
        let names: Vec<&str> = path.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"], "zero steps dropped, ties by name");
    }
}
