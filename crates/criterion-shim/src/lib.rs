//! Offline stand-in for the Criterion benchmark harness.
//!
//! This workspace builds in environments without network access to
//! crates.io, so the real `criterion` crate cannot be fetched. The bench
//! targets only use a small, stable subset of its API
//! (`criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `finish`), which this crate reimplements
//! with plain `std::time::Instant` timing: each benchmark runs a short
//! calibration pass, then a fixed number of timed samples, and the median
//! per-iteration time is printed. Swap this path dependency for the real
//! `criterion` to get statistics, plots and regression detection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            samples: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.samples, f);
        self
    }

    /// Ends the group (printing nothing extra; provided for API parity).
    pub fn finish(&mut self) {}
}

fn run_benchmark<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration: grow the iteration count until one sample takes ~5 ms, so
    // per-iteration timings are not dominated by clock resolution.
    loop {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(5) || bencher.iters >= 1 << 20 {
            break;
        }
        bencher.iters *= 4;
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "  {name}: {} per iter ({samples} samples)",
        format_seconds(median)
    );
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-benchmark timing handle: call [`Bencher::iter`] with the body to time.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `body`, running it a calibrated number of iterations.
    pub fn iter<R, F>(&mut self, mut body: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group: `criterion_group!(benches, target_a, target_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn formatting_covers_magnitudes() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with("ms"));
        assert!(format_seconds(2e-6).ends_with("us"));
        assert!(format_seconds(2e-9).ends_with("ns"));
    }
}
