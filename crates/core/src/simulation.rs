//! The unified simulation entry point: [`Simulation::builder()`].
//!
//! Historically, every front end (CLI, examples, tests, benches) poked
//! [`SystemConfig`] fields directly and drove [`CmpSystem`] by hand. The
//! builder replaces that with one fluent, order-independent surface:
//!
//! * **Presets** — [`SimulationBuilder::sram_baseline`],
//!   [`SimulationBuilder::edram_baseline`] and
//!   [`SimulationBuilder::edram_recommended`] select the paper's three
//!   anchor configurations; every other setting is an override on top.
//! * **Typed errors** — [`SimulationBuilder::build`] validates the composed
//!   configuration and reports what is wrong as a [`BuildError`] variant
//!   (zero cores, bank/core mismatch, refresh settings on SRAM, unknown
//!   policy label, …) instead of a stringly-typed reason.
//! * **Pluggable policies** — [`SimulationBuilder::policy_model`] installs a
//!   custom [`PolicyFactory`] for the L3, and
//!   [`SimulationBuilder::register_policy`] +
//!   [`SimulationBuilder::policy_label`] resolve user-supplied labels
//!   through a [`PolicyRegistry`].
//! * **Structured results** — [`Simulation::run`] returns a [`RunOutcome`]
//!   joining the [`SimReport`] with its [`EnergyBreakdown`] and the relative
//!   metrics the paper's figures are built from.
//!
//! # Example
//!
//! ```
//! use refrint::simulation::Simulation;
//! use refrint_workloads::apps::AppPreset;
//!
//! let mut sim = Simulation::builder()
//!     .edram_recommended()
//!     .cores(2)
//!     .refs_per_thread(2_000)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let outcome = sim.run(AppPreset::Blackscholes);
//! assert!(outcome.execution_cycles() > 0);
//! assert!(outcome.breakdown().memory_total() > 0.0);
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use refrint_coherence::protocol::CoherenceProtocol;
use refrint_edram::model::{PolicyFactory, PolicyRegistry};
use refrint_edram::policy::RefreshPolicy;
use refrint_edram::retention::RetentionConfig;
use refrint_edram::variation::RetentionProfile;
use refrint_energy::breakdown::EnergyBreakdown;
use refrint_energy::tech::CellTech;
use refrint_trace::{TraceFile, TraceFormat, TraceMeta};
use refrint_workloads::apps::AppPreset;
use refrint_workloads::model::WorkloadModel;

pub use refrint_obs::{ObsConfig, ObsSummary};

use crate::config::SystemConfig;
use crate::error::{ConfigError, RefrintError};
use crate::replay;
use crate::report::SimReport;
use crate::system::CmpSystem;

/// Everything that can be wrong with a composed configuration, reported at
/// [`SimulationBuilder::build`] time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The chip needs at least one core.
    ZeroCores,
    /// More cores were requested than the torus has nodes.
    TooManyCores {
        /// Requested core count.
        cores: usize,
        /// Nodes on the configured torus.
        torus_nodes: usize,
    },
    /// The model assumes one shared-L3 bank per tile.
    BankCoreMismatch {
        /// Configured L3 bank count.
        l3_banks: usize,
        /// Configured core count.
        cores: usize,
    },
    /// The retention period leaves no room for the sentry safety margin.
    RetentionTooShort {
        /// Retention period, in cycles.
        retention_cycles: u64,
        /// Required sentry margin, in cycles.
        sentry_margin: u64,
    },
    /// Refresh settings (policy, retention or a custom model) were combined
    /// with SRAM cells, which never refresh.
    SramWithRefreshSettings {
        /// Which setting conflicted (`"policy"`, `"retention"`, ...).
        setting: &'static str,
    },
    /// A policy label resolved neither to a registered custom policy nor to
    /// the built-in descriptor grammar.
    UnknownPolicy {
        /// The offending label.
        label: String,
        /// The labels that would have been accepted.
        valid: Vec<String>,
    },
    /// More than one of `policy` / `policy_label` / `policy_model` was set.
    ConflictingPolicySpecs,
    /// The trace file supplied to [`SimulationBuilder::trace`] could not be
    /// opened, or disagrees with the configured core count.
    Trace {
        /// Description of the failure (includes the trace path and, for
        /// format errors, the offending byte offset).
        reason: String,
    },
    /// A constraint not covered by the variants above (forwarded from
    /// [`SystemConfig::validate`]).
    Invalid {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // The config-rule variants render through ConfigError so the
            // two error types cannot drift apart in wording.
            BuildError::ZeroCores => ConfigError::ZeroCores.fmt(f),
            BuildError::TooManyCores { cores, torus_nodes } => ConfigError::TooManyCores {
                cores: *cores,
                torus_nodes: *torus_nodes,
            }
            .fmt(f),
            BuildError::BankCoreMismatch { l3_banks, cores } => ConfigError::BankCoreMismatch {
                l3_banks: *l3_banks,
                cores: *cores,
            }
            .fmt(f),
            BuildError::RetentionTooShort {
                retention_cycles,
                sentry_margin,
            } => ConfigError::RetentionTooShort {
                retention_cycles: *retention_cycles,
                sentry_margin: *sentry_margin,
            }
            .fmt(f),
            BuildError::SramWithRefreshSettings { setting } => write!(
                f,
                "a refresh {setting} was configured for SRAM cells, which never refresh \
                 (drop the {setting} or select eDRAM)"
            ),
            BuildError::UnknownPolicy { label, valid } => write!(
                f,
                "unknown refresh policy `{label}`; valid labels are \
                 `P|R.all|valid|dirty|WB(n,m)` — e.g. {}",
                valid.join(", ")
            ),
            BuildError::ConflictingPolicySpecs => write!(
                f,
                "set at most one of policy(), policy_label() and policy_model()"
            ),
            BuildError::Trace { reason } => write!(f, "trace error: {reason}"),
            BuildError::Invalid { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<BuildError> for RefrintError {
    fn from(err: BuildError) -> Self {
        RefrintError::InvalidConfig {
            reason: err.to_string(),
        }
    }
}

/// Fluent, order-independent builder for a [`Simulation`].
///
/// Start from a preset, layer overrides, then [`SimulationBuilder::build`].
/// Created by [`Simulation::builder`].
#[derive(Debug, Clone, Default)]
pub struct SimulationBuilder {
    base: Option<BasePreset>,
    cells: Option<CellTech>,
    policy: Option<RefreshPolicy>,
    policy_label: Option<String>,
    policy_model: Option<Arc<dyn PolicyFactory>>,
    retention: Option<RetentionConfig>,
    retention_us: Option<u64>,
    retention_profile: Option<RetentionProfile>,
    protocol: Option<CoherenceProtocol>,
    cores: Option<usize>,
    l3_banks: Option<usize>,
    seed: Option<u64>,
    refs_per_thread: Option<u64>,
    trace: Option<PathBuf>,
    registry: PolicyRegistry,
    registry_error: Option<String>,
    obs: Option<ObsConfig>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BasePreset {
    SramBaseline,
    EdramBaseline,
    EdramRecommended,
}

impl SimulationBuilder {
    /// Starts from the paper's full-SRAM baseline (no refresh, full
    /// leakage).
    #[must_use]
    pub fn sram_baseline(mut self) -> Self {
        self.base = Some(BasePreset::SramBaseline);
        self
    }

    /// Starts from the naive full-eDRAM baseline: `Periodic All` at 50 µs.
    #[must_use]
    pub fn edram_baseline(mut self) -> Self {
        self.base = Some(BasePreset::EdramBaseline);
        self
    }

    /// Starts from the paper's recommended configuration:
    /// `Refrint WB(32,32)` at 50 µs. This is the default preset.
    #[must_use]
    pub fn edram_recommended(mut self) -> Self {
        self.base = Some(BasePreset::EdramRecommended);
        self
    }

    /// Overrides the cell technology.
    #[must_use]
    pub fn cells(mut self, cells: CellTech) -> Self {
        self.cells = Some(cells);
        self
    }

    /// Sets the L3 refresh policy from a descriptor.
    #[must_use]
    pub fn policy(mut self, policy: RefreshPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the L3 refresh policy from a label (e.g. `R.WB(32,32)`),
    /// resolved at build time against the built-in grammar and any
    /// registered custom policies.
    #[must_use]
    pub fn policy_label(mut self, label: impl Into<String>) -> Self {
        self.policy_label = Some(label.into());
        self
    }

    /// Installs a custom refresh-policy model for the L3.
    #[must_use]
    pub fn policy_model(mut self, factory: Arc<dyn PolicyFactory>) -> Self {
        self.policy_model = Some(factory);
        self
    }

    /// Sets the coherence protocol (invalidation-based MESI — the default —
    /// or update-based Dragon).
    #[must_use]
    pub fn protocol(mut self, protocol: CoherenceProtocol) -> Self {
        self.protocol = Some(protocol);
        self
    }

    /// Sets the per-bank retention-variation profile (eDRAM only; the
    /// default `Uniform` profile leaves every bank at the nominal
    /// retention).
    #[must_use]
    pub fn retention_profile(mut self, profile: RetentionProfile) -> Self {
        self.retention_profile = Some(profile);
        self
    }

    /// Registers a custom policy so [`SimulationBuilder::policy_label`] can
    /// resolve its label. Registration failures (duplicate label) surface at
    /// build time as [`BuildError::Invalid`].
    #[must_use]
    pub fn register_policy(mut self, factory: Arc<dyn PolicyFactory>) -> Self {
        // Defer duplicate-label errors to build() so the fluent chain stays
        // infallible.
        if let Err(e) = self.registry.register(factory) {
            self.registry_error.get_or_insert(e.to_string());
        }
        self
    }

    /// Sets the eDRAM retention configuration.
    #[must_use]
    pub fn retention(mut self, retention: RetentionConfig) -> Self {
        self.retention = Some(retention);
        self
    }

    /// Sets the eDRAM retention time in microseconds at the paper's 1 GHz
    /// clock (50, 100 and 200 are the paper's sweep points; other values are
    /// accepted if they leave room for the sentry margin).
    #[must_use]
    pub fn retention_us(mut self, us: u64) -> Self {
        self.retention_us = Some(us);
        self
    }

    /// Shrinks or grows the chip; the L3 bank count follows the core count
    /// (one bank per tile) unless [`SimulationBuilder::l3_banks`] overrides
    /// it.
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = Some(cores);
        self
    }

    /// Overrides the L3 bank count (expert use; the model requires one bank
    /// per tile, so any value other than the core count fails at build).
    #[must_use]
    pub fn l3_banks(mut self, banks: usize) -> Self {
        self.l3_banks = Some(banks);
        self
    }

    /// Sets the workload seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the number of references each workload thread issues
    /// (scales simulated time; smaller is faster).
    #[must_use]
    pub fn refs_per_thread(mut self, refs: u64) -> Self {
        self.refs_per_thread = Some(refs);
        self
    }

    /// Replays a recorded trace instead of generating synthetic streams:
    /// [`Simulation::replay`] feeds the file's per-thread reference streams
    /// through the system. Unless [`SimulationBuilder::cores`] is set, the
    /// chip is sized to the trace's thread count; an explicit core count
    /// must match it (checked at build time, like the file's integrity).
    #[must_use]
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Turns on span-based observability (see the `refrint-obs` crate) for
    /// the built simulation. Recording observes without perturbing: every
    /// report field is byte-identical with observability on or off; only
    /// [`Simulation::obs_summary`] gains content.
    #[must_use]
    pub fn observability(mut self, cfg: ObsConfig) -> Self {
        self.obs = Some(cfg);
        self
    }

    /// Opens and checks the configured trace, if any.
    fn open_trace(&self) -> Result<Option<TraceFile>, BuildError> {
        let Some(path) = &self.trace else {
            return Ok(None);
        };
        let trace = TraceFile::open(path).map_err(|e| BuildError::Trace {
            reason: format!("{}: {e}", path.display()),
        })?;
        if let Some(cores) = self.cores {
            if trace.meta().threads != cores {
                return Err(BuildError::Trace {
                    reason: format!(
                        "{}: trace has {} threads but {cores} cores were configured",
                        path.display(),
                        trace.meta().threads
                    ),
                });
            }
        }
        Ok(Some(trace))
    }

    /// Composes and validates the configuration without instantiating the
    /// system.
    ///
    /// # Errors
    ///
    /// See [`BuildError`].
    pub fn build_config(&self) -> Result<SystemConfig, BuildError> {
        self.build_config_with(self.open_trace()?.as_ref())
    }

    fn build_config_with(&self, trace: Option<&TraceFile>) -> Result<SystemConfig, BuildError> {
        if let Some(reason) = &self.registry_error {
            return Err(BuildError::Invalid {
                reason: reason.clone(),
            });
        }
        let mut config = match self.base.unwrap_or(BasePreset::EdramRecommended) {
            BasePreset::SramBaseline => SystemConfig::sram_baseline(),
            BasePreset::EdramBaseline => SystemConfig::edram_baseline(),
            BasePreset::EdramRecommended => SystemConfig::edram_recommended(),
        };

        if let Some(cells) = self.cells {
            config.cells = cells;
        }

        // Resolve the policy specification (at most one of the three forms).
        let specs = usize::from(self.policy.is_some())
            + usize::from(self.policy_label.is_some())
            + usize::from(self.policy_model.is_some());
        if specs > 1 {
            return Err(BuildError::ConflictingPolicySpecs);
        }
        if !config.cells.needs_refresh() {
            if specs > 0 {
                return Err(BuildError::SramWithRefreshSettings { setting: "policy" });
            }
            if self.retention.is_some() || self.retention_us.is_some() {
                return Err(BuildError::SramWithRefreshSettings {
                    setting: "retention",
                });
            }
            if self.retention_profile.is_some_and(|p| !p.is_default()) {
                return Err(BuildError::SramWithRefreshSettings {
                    setting: "retention profile",
                });
            }
        }
        if let Some(policy) = self.policy {
            config = config.with_policy(policy);
        } else if let Some(label) = &self.policy_label {
            let factory = self
                .registry
                .resolve(label)
                .map_err(|_| BuildError::UnknownPolicy {
                    label: label.clone(),
                    valid: self.registry.valid_labels(),
                })?;
            // A label that parses as a descriptor keeps the descriptor path
            // (so private caches inherit its time policy); custom labels
            // install the factory.
            match label.parse::<RefreshPolicy>() {
                Ok(policy) => config = config.with_policy(policy),
                Err(_) => config = config.with_policy_model(factory),
            }
        } else if let Some(factory) = &self.policy_model {
            config = config.with_policy_model(Arc::clone(factory));
        }

        if let Some(retention) = self.retention {
            config = config.with_retention(retention);
        } else if let Some(us) = self.retention_us {
            let retention =
                RetentionConfig::from_microseconds(us).map_err(|e| BuildError::Invalid {
                    reason: e.to_string(),
                })?;
            config = config.with_retention(retention);
        }

        if let Some(profile) = self.retention_profile {
            config = config.with_retention_profile(profile);
        }
        if let Some(protocol) = self.protocol {
            config = config.with_protocol(protocol);
        }

        if let Some(cores) = self.cores {
            config.cores = cores;
            config.l3_banks = cores;
        } else if let Some(trace) = trace {
            // A replayed trace sizes the chip to its thread count.
            config.cores = trace.meta().threads;
            config.l3_banks = trace.meta().threads;
        }
        if let Some(banks) = self.l3_banks {
            config.l3_banks = banks;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(refs) = self.refs_per_thread {
            config.refs_per_thread = Some(refs);
        }

        // The configuration rules live in SystemConfig::validate_typed;
        // this match only translates them into builder-level errors (new
        // rules surface via the Invalid fallback until given a variant).
        config.validate_typed().map_err(|e| match e {
            ConfigError::ZeroCores => BuildError::ZeroCores,
            ConfigError::TooManyCores { cores, torus_nodes } => {
                BuildError::TooManyCores { cores, torus_nodes }
            }
            ConfigError::BankCoreMismatch { l3_banks, cores } => {
                BuildError::BankCoreMismatch { l3_banks, cores }
            }
            ConfigError::RetentionTooShort {
                retention_cycles,
                sentry_margin,
            } => BuildError::RetentionTooShort {
                retention_cycles,
                sentry_margin,
            },
            ConfigError::SramWithPolicyModel => {
                BuildError::SramWithRefreshSettings { setting: "policy" }
            }
            ConfigError::SramWithRetentionProfile => BuildError::SramWithRefreshSettings {
                setting: "retention profile",
            },
            other => BuildError::Invalid {
                reason: other.to_string(),
            },
        })?;
        Ok(config)
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// See [`BuildError`].
    pub fn build(&self) -> Result<Simulation, BuildError> {
        let trace = self.open_trace()?;
        let config = self.build_config_with(trace.as_ref())?;
        let mut system = CmpSystem::new(config).map_err(|e| BuildError::Invalid {
            reason: e.to_string(),
        })?;
        if let Some(obs) = self.obs {
            system.enable_observability(obs);
        }
        Ok(Simulation { system, trace })
    }
}

/// A ready-to-run simulated system, produced by [`Simulation::builder`].
#[derive(Debug)]
pub struct Simulation {
    system: CmpSystem,
    /// The opened trace when built with [`SimulationBuilder::trace`].
    trace: Option<TraceFile>,
}

impl Simulation {
    /// Starts building a simulation (default preset:
    /// [`SimulationBuilder::edram_recommended`]).
    #[must_use]
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// The configuration this simulation was built from.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        self.system.config()
    }

    /// Runs one of the named application presets.
    pub fn run(&mut self, app: AppPreset) -> RunOutcome {
        RunOutcome::new(self.system.run_app(app))
    }

    /// Runs an arbitrary workload model.
    pub fn run_model(&mut self, model: &WorkloadModel) -> RunOutcome {
        RunOutcome::new(self.system.run_model(model))
    }

    /// Replays the trace this simulation was built with
    /// ([`SimulationBuilder::trace`]). For a trace captured from the same
    /// configuration, the outcome's report is bit-identical to the live
    /// run's.
    ///
    /// # Errors
    ///
    /// [`RefrintError::Trace`] if no trace was configured or a record fails
    /// to decode.
    pub fn replay(&mut self) -> Result<RunOutcome, RefrintError> {
        let Some(trace) = &self.trace else {
            return Err(RefrintError::Trace {
                reason: "no trace configured: build with Simulation::builder().trace(path)".into(),
            });
        };
        let trace = trace.clone();
        Ok(RunOutcome::new(replay::replay(&mut self.system, &trace)?))
    }

    /// The trace this simulation will replay, if one was configured.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceFile> {
        self.trace.as_ref()
    }

    /// Records the reference streams this simulation would run for `app`
    /// (same seed, core count and scale) to a binary trace at `path`, so
    /// [`SimulationBuilder::trace`] can replay the run elsewhere.
    ///
    /// # Errors
    ///
    /// [`RefrintError::Trace`] on I/O failures.
    pub fn capture(
        &self,
        app: AppPreset,
        path: impl AsRef<Path>,
    ) -> Result<TraceMeta, RefrintError> {
        self.capture_model_as(&app.model(), path, TraceFormat::Binary)
    }

    /// Records an arbitrary workload model to a binary trace at `path`.
    ///
    /// # Errors
    ///
    /// See [`Simulation::capture`].
    pub fn capture_model(
        &self,
        model: &WorkloadModel,
        path: impl AsRef<Path>,
    ) -> Result<TraceMeta, RefrintError> {
        self.capture_model_as(model, path, TraceFormat::Binary)
    }

    /// Records an arbitrary workload model to a trace at `path` in the
    /// chosen on-disk format.
    ///
    /// # Errors
    ///
    /// See [`Simulation::capture`].
    pub fn capture_model_as(
        &self,
        model: &WorkloadModel,
        path: impl AsRef<Path>,
        format: TraceFormat,
    ) -> Result<TraceMeta, RefrintError> {
        replay::capture_to_path(self.system.config(), model, path, format)
    }

    /// The underlying system simulator, for advanced use.
    #[must_use]
    pub fn system_mut(&mut self) -> &mut CmpSystem {
        &mut self.system
    }

    /// The observability summary collected so far (subsystem attribution
    /// and sampled spans). Empty totals unless the simulation was built
    /// with [`SimulationBuilder::observability`].
    #[must_use]
    pub fn obs_summary(&self) -> ObsSummary {
        self.system.obs_summary()
    }
}

/// The structured result of one simulation run: the raw [`SimReport`] plus
/// convenience accessors for the energy breakdown and the relative metrics
/// the paper's figures plot.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The full report (execution time, event counts, energy, statistics).
    pub report: SimReport,
}

impl RunOutcome {
    fn new(report: SimReport) -> Self {
        RunOutcome { report }
    }

    /// Label of the configuration that produced this outcome.
    #[must_use]
    pub fn config_label(&self) -> &str {
        &self.report.config_label
    }

    /// Name of the workload that was run.
    #[must_use]
    pub fn workload(&self) -> &str {
        &self.report.workload
    }

    /// Execution time in cycles.
    #[must_use]
    pub fn execution_cycles(&self) -> u64 {
        self.report.execution_cycles
    }

    /// The energy breakdown of the run.
    #[must_use]
    pub fn breakdown(&self) -> &EnergyBreakdown {
        &self.report.breakdown
    }

    /// Total refreshes across the hierarchy.
    #[must_use]
    pub fn total_refreshes(&self) -> u64 {
        self.report.counts.total_refreshes()
    }

    /// Total DRAM accesses (reads + writes).
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.report.counts.dram_accesses()
    }

    /// Memory-hierarchy energy in joules.
    #[must_use]
    pub fn memory_energy(&self) -> f64 {
        self.report.breakdown.memory_total()
    }

    /// Total system energy in joules.
    #[must_use]
    pub fn system_energy(&self) -> f64 {
        self.report.breakdown.total_system()
    }

    /// This outcome's headline metrics relative to a baseline run (1.0 =
    /// same as baseline; lower is better).
    #[must_use]
    pub fn vs(&self, baseline: &RunOutcome) -> RelativeMetrics {
        RelativeMetrics {
            slowdown: self.report.slowdown_vs(&baseline.report),
            memory_energy: self.report.memory_energy_vs(&baseline.report),
            system_energy: self.report.system_energy_vs(&baseline.report),
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.report.fmt(f)
    }
}

/// Headline metrics of one run normalised to a baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeMetrics {
    /// Execution time ratio.
    pub slowdown: f64,
    /// Memory-hierarchy energy ratio.
    pub memory_energy: f64,
    /// Total system energy ratio.
    pub system_energy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_edram::model::{PolicyBinding, RefreshPolicyModel};
    use refrint_edram::policy::{DataPolicy, TimePolicy};

    #[test]
    fn presets_build_and_label_correctly() {
        let sram = Simulation::builder().sram_baseline().build().unwrap();
        assert_eq!(sram.config().label(), "SRAM");
        let naive = Simulation::builder().edram_baseline().build().unwrap();
        assert_eq!(naive.config().label(), "eDRAM 50us P.all");
        let recommended = Simulation::builder().edram_recommended().build().unwrap();
        assert_eq!(recommended.config().label(), "eDRAM 50us R.WB(32,32)");
        // The default preset is the recommended configuration.
        let default = Simulation::builder().build().unwrap();
        assert_eq!(default.config().label(), recommended.config().label());
    }

    #[test]
    fn overrides_compose_in_any_order() {
        let a = Simulation::builder()
            .cores(4)
            .seed(9)
            .policy(RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Dirty))
            .retention_us(100)
            .refs_per_thread(500)
            .build_config()
            .unwrap();
        let b = Simulation::builder()
            .retention_us(100)
            .refs_per_thread(500)
            .policy(RefreshPolicy::new(TimePolicy::Periodic, DataPolicy::Dirty))
            .seed(9)
            .cores(4)
            .build_config()
            .unwrap();
        assert_eq!(a.label(), b.label());
        assert_eq!(a.cores, b.cores);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.refs_per_thread, b.refs_per_thread);
    }

    #[test]
    fn zero_cores_is_a_typed_error() {
        let err = Simulation::builder().cores(0).build().unwrap_err();
        assert_eq!(err, BuildError::ZeroCores);
        assert!(err.to_string().contains("at least one core"));
    }

    #[test]
    fn bank_mismatch_is_a_typed_error() {
        let err = Simulation::builder()
            .cores(4)
            .l3_banks(8)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::BankCoreMismatch {
                l3_banks: 8,
                cores: 4
            }
        );
    }

    #[test]
    fn too_many_cores_is_a_typed_error() {
        let err = Simulation::builder().cores(17).build().unwrap_err();
        assert_eq!(
            err,
            BuildError::TooManyCores {
                cores: 17,
                torus_nodes: 16
            }
        );
    }

    #[test]
    fn sram_with_refresh_settings_is_a_typed_error() {
        let err = Simulation::builder()
            .sram_baseline()
            .policy(RefreshPolicy::recommended())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::SramWithRefreshSettings { setting: "policy" }
        );
        let err = Simulation::builder()
            .sram_baseline()
            .retention_us(100)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::SramWithRefreshSettings {
                setting: "retention"
            }
        );
        // Explicitly selecting eDRAM cells over the SRAM preset is fine.
        assert!(Simulation::builder()
            .sram_baseline()
            .cells(CellTech::Edram)
            .retention_us(100)
            .build()
            .is_ok());
    }

    #[test]
    fn short_retention_is_a_typed_error() {
        let err = Simulation::builder().retention_us(10).build().unwrap_err();
        match err {
            BuildError::RetentionTooShort {
                retention_cycles,
                sentry_margin,
            } => {
                assert_eq!(retention_cycles, 10_000);
                assert!(sentry_margin >= retention_cycles);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn unknown_labels_list_valid_ones() {
        let err = Simulation::builder()
            .policy_label("R.sometimes")
            .build()
            .unwrap_err();
        match &err {
            BuildError::UnknownPolicy { label, valid } => {
                assert_eq!(label, "R.sometimes");
                assert!(valid.iter().any(|l| l == "R.WB(32,32)"));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("R.WB(32,32)"));
    }

    #[test]
    fn conflicting_policy_specs_are_rejected() {
        let err = Simulation::builder()
            .policy(RefreshPolicy::recommended())
            .policy_label("P.all")
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::ConflictingPolicySpecs);
    }

    #[test]
    fn every_builtin_label_round_trips_through_the_builder() {
        for policy in RefreshPolicy::paper_sweep() {
            let config = Simulation::builder()
                .policy_label(policy.label())
                .build_config()
                .unwrap();
            assert_eq!(config.policy, policy, "{}", policy.label());
        }
    }

    /// A custom model: refresh valid lines every opportunity, forever.
    #[derive(Debug)]
    struct AlwaysValid {
        period: refrint_engine::time::Cycle,
    }
    impl RefreshPolicyModel for AlwaysValid {
        fn label(&self) -> String {
            "custom-valid".into()
        }
        fn opportunity(
            &self,
            touch: refrint_engine::time::Cycle,
            k: u64,
        ) -> refrint_engine::time::Cycle {
            touch + self.period * k
        }
        fn opportunity_period(&self) -> refrint_engine::time::Cycle {
            self.period
        }
        fn action(
            &self,
            kind: refrint_edram::schedule::LineKind,
            _so_far: u64,
        ) -> refrint_edram::model::RefreshAction {
            match kind {
                refrint_edram::schedule::LineKind::Invalid => {
                    refrint_edram::model::RefreshAction::Skip
                }
                _ => refrint_edram::model::RefreshAction::Refresh,
            }
        }
    }

    #[derive(Debug)]
    struct AlwaysValidFactory;
    impl PolicyFactory for AlwaysValidFactory {
        fn label(&self) -> String {
            "custom-valid".into()
        }
        fn build(&self, binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel> {
            Arc::new(AlwaysValid {
                period: binding.sentry_period(),
            })
        }
    }

    #[test]
    fn custom_policy_models_run_end_to_end() {
        let mut sim = Simulation::builder()
            .policy_model(Arc::new(AlwaysValidFactory))
            .cores(2)
            .refs_per_thread(1_500)
            .build()
            .unwrap();
        assert_eq!(sim.config().label(), "eDRAM 50us custom-valid");
        let outcome = sim.run(AppPreset::Lu);
        assert!(outcome.total_refreshes() > 0);
        assert_eq!(outcome.config_label(), "eDRAM 50us custom-valid");
    }

    #[test]
    fn registered_custom_labels_resolve() {
        let mut sim = Simulation::builder()
            .register_policy(Arc::new(AlwaysValidFactory))
            .policy_label("custom-valid")
            .cores(2)
            .refs_per_thread(1_000)
            .build()
            .unwrap();
        let outcome = sim.run(AppPreset::Fft);
        assert_eq!(outcome.config_label(), "eDRAM 50us custom-valid");
    }

    #[test]
    fn custom_model_on_sram_is_rejected() {
        let err = Simulation::builder()
            .sram_baseline()
            .policy_model(Arc::new(AlwaysValidFactory))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::SramWithRefreshSettings { setting: "policy" }
        );
    }

    /// A model declaring an impossible global burst period: too short to
    /// refresh every line of the cache within one period.
    #[derive(Debug)]
    struct ImpossibleBurst;
    impl RefreshPolicyModel for ImpossibleBurst {
        fn label(&self) -> String {
            "impossible-burst".into()
        }
        fn opportunity(
            &self,
            _touch: refrint_engine::time::Cycle,
            k: u64,
        ) -> refrint_engine::time::Cycle {
            refrint_engine::time::Cycle::new(10) * k
        }
        fn opportunity_period(&self) -> refrint_engine::time::Cycle {
            refrint_engine::time::Cycle::new(10)
        }
        fn periodic_burst_period(&self) -> Option<refrint_engine::time::Cycle> {
            Some(refrint_engine::time::Cycle::new(10))
        }
        fn action(
            &self,
            _kind: refrint_edram::schedule::LineKind,
            _so_far: u64,
        ) -> refrint_edram::model::RefreshAction {
            refrint_edram::model::RefreshAction::Refresh
        }
    }

    #[derive(Debug)]
    struct ImpossibleBurstFactory;
    impl PolicyFactory for ImpossibleBurstFactory {
        fn label(&self) -> String {
            "impossible-burst".into()
        }
        fn build(&self, _binding: &PolicyBinding) -> Arc<dyn RefreshPolicyModel> {
            Arc::new(ImpossibleBurst)
        }
    }

    #[test]
    fn impossible_burst_periods_error_instead_of_panicking() {
        let err = Simulation::builder()
            .policy_model(Arc::new(ImpossibleBurstFactory))
            .cores(2)
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("burst period"),
            "expected a burst-period error, got: {err}"
        );
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("refrint-sim-{}-{name}", std::process::id()))
    }

    #[test]
    fn missing_trace_files_are_typed_build_errors() {
        let err = Simulation::builder()
            .trace("/nonexistent/refrint.rft")
            .build()
            .unwrap_err();
        match &err {
            BuildError::Trace { reason } => assert!(reason.contains("refrint.rft"), "{reason}"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn corrupt_trace_files_are_typed_build_errors() {
        let path = tmp("corrupt.rft");
        std::fs::write(&path, b"not a trace at all").unwrap();
        let err = Simulation::builder().trace(&path).build().unwrap_err();
        match &err {
            BuildError::Trace { reason } => assert!(reason.contains("magic"), "{reason}"),
            other => panic!("unexpected error {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_without_a_trace_is_a_typed_error() {
        let mut sim = Simulation::builder().cores(2).build().unwrap();
        let err = sim.replay().unwrap_err();
        assert!(matches!(err, RefrintError::Trace { .. }), "{err}");
    }

    #[test]
    fn traces_size_the_chip_and_replay_identically() {
        let path = tmp("builder-roundtrip.rft");
        let builder = || {
            Simulation::builder()
                .edram_recommended()
                .cores(2)
                .refs_per_thread(900)
                .seed(21)
        };
        let meta = builder()
            .build()
            .unwrap()
            .capture(AppPreset::Barnes, &path)
            .unwrap();
        assert_eq!(meta.threads, 2);

        // Without .cores(), the chip adopts the trace's thread count.
        let mut replayer = Simulation::builder()
            .edram_recommended()
            .refs_per_thread(900)
            .seed(21)
            .trace(&path)
            .build()
            .unwrap();
        assert_eq!(replayer.config().cores, 2);
        assert_eq!(replayer.trace().unwrap().meta().workload, "barnes");
        let live = builder().build().unwrap().run(AppPreset::Barnes);
        let replayed = replayer.replay().unwrap();
        assert_eq!(
            format!("{:?}", live.report),
            format!("{:?}", replayed.report)
        );

        // An explicit core count that disagrees is rejected at build time.
        let err = Simulation::builder()
            .cores(4)
            .trace(&path)
            .build()
            .unwrap_err();
        match &err {
            BuildError::Trace { reason } => assert!(reason.contains("2 threads"), "{reason}"),
            other => panic!("unexpected error {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builder_plumbs_protocol_and_retention_profile() {
        let cfg = Simulation::builder()
            .edram_recommended()
            .protocol(CoherenceProtocol::Dragon)
            .retention_profile(RetentionProfile::Normal { sigma_pct: 10 })
            .cores(2)
            .build_config()
            .unwrap();
        assert_eq!(cfg.protocol, CoherenceProtocol::Dragon);
        assert_eq!(
            cfg.retention_profile,
            RetentionProfile::Normal { sigma_pct: 10 }
        );
        assert!(cfg.label().contains("dragon"), "{}", cfg.label());
        assert!(cfg.label().contains("normal(10)"), "{}", cfg.label());
    }

    #[test]
    fn sram_rejects_retention_profiles_with_a_typed_error() {
        let err = Simulation::builder()
            .sram_baseline()
            .retention_profile(RetentionProfile::Bimodal {
                weak_pct: 25,
                weak_retention_pct: 60,
            })
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::SramWithRefreshSettings {
                setting: "retention profile"
            }
        );
        // A spelled-out Uniform profile is the default: SRAM accepts it.
        let cfg = Simulation::builder()
            .sram_baseline()
            .retention_profile(RetentionProfile::Uniform)
            .build_config()
            .unwrap();
        assert_eq!(
            format!("{cfg:?}"),
            format!("{:?}", SystemConfig::sram_baseline())
        );
    }

    #[test]
    fn dragon_on_sram_is_accepted() {
        // Coherence is orthogonal to the cell technology.
        let cfg = Simulation::builder()
            .sram_baseline()
            .protocol(CoherenceProtocol::Dragon)
            .cores(2)
            .build_config()
            .unwrap();
        assert_eq!(cfg.protocol, CoherenceProtocol::Dragon);
    }

    #[test]
    fn outcomes_compare_against_baselines() {
        let mut sram = Simulation::builder()
            .sram_baseline()
            .cores(4)
            .refs_per_thread(2_000)
            .build()
            .unwrap();
        let mut edram = Simulation::builder()
            .edram_recommended()
            .cores(4)
            .refs_per_thread(2_000)
            .build()
            .unwrap();
        let base = sram.run(AppPreset::Lu);
        let out = edram.run(AppPreset::Lu);
        let rel = out.vs(&base);
        assert!(rel.slowdown > 0.0);
        assert!(rel.memory_energy > 0.0 && rel.memory_energy < 2.0);
        assert!(rel.system_energy > 0.0);
        assert!(out.to_string().contains("memory energy"));
    }
}
