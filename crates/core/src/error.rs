//! Error types for the system simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the `refrint` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RefrintError {
    /// The system configuration was inconsistent.
    InvalidConfig {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A requested experiment artefact (figure/table) is unknown.
    UnknownArtefact {
        /// The requested artefact name.
        name: String,
    },
    /// A trace could not be captured, opened or replayed. Carries the
    /// rendered [`refrint_trace::TraceError`] (or a replay-level mismatch
    /// such as a thread/core count disagreement).
    Trace {
        /// Description of the failure.
        reason: String,
    },
}

impl fmt::Display for RefrintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefrintError::InvalidConfig { reason } => {
                write!(f, "invalid system configuration: {reason}")
            }
            RefrintError::UnknownArtefact { name } => {
                write!(f, "unknown experiment artefact `{name}`")
            }
            RefrintError::Trace { reason } => write!(f, "trace error: {reason}"),
        }
    }
}

impl Error for RefrintError {}

impl From<refrint_trace::TraceError> for RefrintError {
    fn from(err: refrint_trace::TraceError) -> Self {
        RefrintError::Trace {
            reason: err.to_string(),
        }
    }
}

/// The typed constraint violations [`crate::config::SystemConfig::validate_typed`]
/// can report — the single source of truth for configuration rules. The
/// builder maps these onto [`crate::simulation::BuildError`] variants, and
/// [`crate::config::SystemConfig::validate`] flattens them into
/// [`RefrintError::InvalidConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The chip needs at least one core.
    ZeroCores,
    /// More cores were requested than the torus has nodes.
    TooManyCores {
        /// Requested core count.
        cores: usize,
        /// Nodes on the configured torus.
        torus_nodes: usize,
    },
    /// The model assumes one shared-L3 bank per tile.
    BankCoreMismatch {
        /// Configured L3 bank count.
        l3_banks: usize,
        /// Configured core count.
        cores: usize,
    },
    /// All cache levels must share one line size.
    LineSizeMismatch,
    /// The retention period leaves no room for the sentry safety margin.
    RetentionTooShort {
        /// Retention period, in cycles.
        retention_cycles: u64,
        /// Required sentry margin, in cycles.
        sentry_margin: u64,
    },
    /// A custom refresh-policy model was installed on SRAM cells.
    SramWithPolicyModel,
    /// A retention-variation profile was configured on SRAM cells.
    SramWithRetentionProfile,
    /// A policy model declared a global burst period too short to refresh
    /// the whole cache within it.
    InvalidBurstPeriod {
        /// The declared burst period, in cycles.
        period_cycles: u64,
        /// The refresh work per period (one cycle per line), in cycles.
        work_cycles: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "at least one core is required"),
            ConfigError::TooManyCores { cores, torus_nodes } => {
                write!(f, "{cores} cores do not fit on a {torus_nodes} node torus")
            }
            ConfigError::BankCoreMismatch { l3_banks, cores } => write!(
                f,
                "the model assumes one L3 bank per tile ({l3_banks} banks for {cores} cores)"
            ),
            ConfigError::LineSizeMismatch => {
                write!(f, "all cache levels must share a line size")
            }
            ConfigError::RetentionTooShort {
                retention_cycles,
                sentry_margin,
            } => write!(
                f,
                "retention of {retention_cycles} cycles leaves no room for the \
                 {sentry_margin}-cycle sentry margin"
            ),
            ConfigError::SramWithPolicyModel => write!(
                f,
                "a custom refresh-policy model requires eDRAM cells (SRAM never refreshes)"
            ),
            ConfigError::SramWithRetentionProfile => write!(
                f,
                "a retention-variation profile requires eDRAM cells (SRAM never decays)"
            ),
            ConfigError::InvalidBurstPeriod {
                period_cycles,
                work_cycles,
            } => write!(
                f,
                "the policy's {period_cycles}-cycle burst period cannot cover the \
                 {work_cycles} cycles of refresh work per period"
            ),
        }
    }
}

impl Error for ConfigError {}

impl From<ConfigError> for RefrintError {
    fn from(err: ConfigError) -> Self {
        RefrintError::InvalidConfig {
            reason: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RefrintError::InvalidConfig { reason: "x".into() }
            .to_string()
            .contains("configuration"));
        assert!(RefrintError::UnknownArtefact {
            name: "fig9".into()
        }
        .to_string()
        .contains("fig9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<RefrintError>();
    }
}
