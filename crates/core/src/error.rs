//! Error types for the system simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the `refrint` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RefrintError {
    /// The system configuration was inconsistent.
    InvalidConfig {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A requested experiment artefact (figure/table) is unknown.
    UnknownArtefact {
        /// The requested artefact name.
        name: String,
    },
}

impl fmt::Display for RefrintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefrintError::InvalidConfig { reason } => {
                write!(f, "invalid system configuration: {reason}")
            }
            RefrintError::UnknownArtefact { name } => {
                write!(f, "unknown experiment artefact `{name}`")
            }
        }
    }
}

impl Error for RefrintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RefrintError::InvalidConfig { reason: "x".into() }
            .to_string()
            .contains("configuration"));
        assert!(RefrintError::UnknownArtefact { name: "fig9".into() }
            .to_string()
            .contains("fig9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<RefrintError>();
    }
}
