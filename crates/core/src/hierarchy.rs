//! Hierarchy building blocks: tiles, L3 banks, and the per-cache refresh
//! machinery that ties the eDRAM policies to the cache arrays.

use std::sync::Arc;

use refrint_edram::controller::{PeriodicBurstModel, RefrintContention};
use refrint_edram::model::{PolicyBinding, PolicyFactory, RefreshPolicyModel};
use refrint_edram::policy::RefreshPolicy;
use refrint_edram::retention::RetentionConfig;
use refrint_edram::schedule::{LineKind, Settlement};
use refrint_energy::tech::CellTech;
use refrint_engine::time::Cycle;
use refrint_mem::cache::Cache;
use refrint_mem::config::CacheLevelConfig;
use refrint_mem::line::CacheLine;

use crate::error::ConfigError;

/// The refresh machinery attached to one physical cache (one L1, one L2, or
/// one L3 bank): the policy model that decides what happens to idle lines,
/// plus the timing model of the refresh engine itself.
#[derive(Debug, Clone)]
pub struct RefreshDomain {
    model: Option<Arc<dyn RefreshPolicyModel>>,
    /// The model's built-in decay algebra, cached by value so the
    /// per-access settle path runs without a virtual call (built-in
    /// descriptor policies only; custom models dispatch through the trait).
    fast_schedule: Option<refrint_edram::schedule::DecaySchedule>,
    burst: Option<PeriodicBurstModel>,
    contention: RefrintContention,
    /// Total lines in the cache (used for contention and bulk accounting).
    lines: u64,
    /// Whether the policy refreshes every physical line (`All`-style), in
    /// which case refresh energy is accounted in bulk rather than per line.
    bulk_all: bool,
    /// Memoized idle-until-invalidation intervals per line kind, for models
    /// whose opportunities are touch-relative. `invalidation_time` is on the
    /// simulator's per-L3-fill path, and a custom model relying on the
    /// trait's replay-based default would otherwise re-scan thousands of
    /// opportunities on every fill.
    invalidation_deltas: Option<InvalidationDeltas>,
}

/// Touch-to-invalidation intervals for an idle line, by kind (`None` inside
/// a field = the policy never invalidates that kind).
#[derive(Debug, Clone, Copy)]
struct InvalidationDeltas {
    dirty: Option<Cycle>,
    clean: Option<Cycle>,
}

impl RefreshDomain {
    /// Builds the refresh domain for a cache level from a built-in policy
    /// descriptor. Equivalent to [`RefreshDomain::from_factory`] with the
    /// descriptor as the factory.
    #[must_use]
    pub fn new(
        cfg: &CacheLevelConfig,
        policy: RefreshPolicy,
        retention: RetentionConfig,
        cells: CellTech,
        phase_offset: Cycle,
    ) -> Self {
        Self::from_factory(cfg, &policy, retention, cells, phase_offset)
            .expect("descriptor policies on a validated configuration always bind")
    }

    /// Builds the refresh domain for a cache level from any policy factory
    /// (built-in descriptor or custom [`RefreshPolicyModel`]).
    ///
    /// For SRAM there is no refresh machinery at all. For eDRAM, the policy
    /// is bound with the paper's conservative sentry margin (one cycle per
    /// line in the cache), and globally-bursting policies additionally get
    /// the group-burst blocking model (one group per CACTI sub-array).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidBurstPeriod`] if the model declares a
    /// global burst period too short to refresh the whole cache (one cycle
    /// per line) within it.
    pub fn from_factory(
        cfg: &CacheLevelConfig,
        factory: &dyn PolicyFactory,
        retention: RetentionConfig,
        cells: CellTech,
        phase_offset: Cycle,
    ) -> Result<Self, ConfigError> {
        let lines = cfg.geometry.num_lines();
        if !cells.needs_refresh() {
            return Ok(RefreshDomain {
                model: None,
                fast_schedule: None,
                burst: None,
                contention: RefrintContention::new(),
                lines,
                bulk_all: false,
                invalidation_deltas: None,
            });
        }
        let retention_cycles = retention.line_retention_cycles();
        // Conservative sentry margin: every sentry bit in the cache could
        // fire in the same cycle (Section 4.1).
        let margin = Cycle::new(lines.min(retention_cycles.raw().saturating_sub(1)));
        let binding = PolicyBinding::new(retention_cycles, margin, phase_offset, lines);
        let model = factory.build(&binding);
        let burst = match model.periodic_burst_period() {
            Some(period) => {
                // A burst period shorter than the refresh work (one cycle
                // per line, per sub-array group) can never keep the array
                // refreshed; reject it instead of letting the burst model's
                // internal asserts panic.
                let work = u64::from(cfg.subarrays) * cfg.lines_per_refresh_group();
                if period.raw() < work.max(1) {
                    return Err(ConfigError::InvalidBurstPeriod {
                        period_cycles: period.raw(),
                        work_cycles: work,
                    });
                }
                Some(PeriodicBurstModel::new(
                    period,
                    u64::from(cfg.subarrays),
                    cfg.lines_per_refresh_group(),
                ))
            }
            None => None,
        };
        let bulk_all = model.bulk_accounting();
        // For touch-relative models the invalidation time is touch + a
        // constant per kind; paying the model's (possibly replay-based)
        // scan once per kind here makes the per-fill query O(1).
        let invalidation_deltas =
            model
                .opportunities_are_touch_relative()
                .then(|| InvalidationDeltas {
                    dirty: model.invalidation_time(LineKind::Dirty, Cycle::ZERO),
                    clean: model.invalidation_time(LineKind::Clean, Cycle::ZERO),
                });
        let fast_schedule = model.as_decay_schedule();
        Ok(RefreshDomain {
            model: Some(model),
            fast_schedule,
            burst,
            contention: RefrintContention::new(),
            lines,
            bulk_all,
            invalidation_deltas,
        })
    }

    /// Whether this domain's refresh engine runs globally scheduled group
    /// bursts (as opposed to per-line sentry interrupts, or nothing at all
    /// for SRAM).
    #[must_use]
    pub fn is_globally_bursting(&self) -> bool {
        self.burst.is_some()
    }

    /// Whether this domain performs any refresh at all (i.e. eDRAM).
    #[must_use]
    pub fn is_edram(&self) -> bool {
        self.model.is_some()
    }

    /// Whether refresh energy for this cache is accounted in bulk
    /// (the `All` data policy refreshes every physical line).
    #[must_use]
    pub fn is_bulk_all(&self) -> bool {
        self.bulk_all
    }

    /// Total lines in the cache.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The refresh-policy model, if the cache is eDRAM.
    #[must_use]
    pub fn model(&self) -> Option<&dyn RefreshPolicyModel> {
        self.model.as_deref()
    }

    /// Extra access latency caused by the refresh engine for an access to
    /// `line_index` (the raw line address, used to pick the sub-array) at
    /// cycle `now`: the remaining burst time for Periodic when the line's
    /// own sub-array is being refreshed, or the (tiny) probability-weighted
    /// interrupt contention for Refrint.
    pub fn access_penalty(&mut self, now: Cycle, line_index: u64) -> Cycle {
        if let Some(burst) = &self.burst {
            // The refresh engine yields to demand accesses after at most
            // `PREEMPTION_WINDOW` line refreshes (it then resumes the burst),
            // so a collision costs far less than a full group burst.
            const PREEMPTION_WINDOW: Cycle = Cycle::new(256);
            return burst.access_delay_preemptible(now, line_index, PREEMPTION_WINDOW);
        }
        if let Some(model) = &self.model {
            // At most one sentry interrupt per line per sentry period can be
            // pending; the expected number overlapping this access is
            // lines / period, which the accumulator converts into whole
            // stall cycles at the correct long-run rate.
            let period = model.opportunity_period();
            return self.contention.charge(self.lines, period * 64);
        }
        Cycle::ZERO
    }

    /// Settles an idle line between `touch` and `now`.
    ///
    /// For SRAM (or bulk-accounted `All` policies) this reports that nothing
    /// happened; refreshes under `All` are charged in bulk by the system at
    /// the end of the run.
    #[must_use]
    pub fn settle(&self, kind: LineKind, touch: Cycle, now: Cycle) -> Settlement {
        if self.bulk_all {
            return Settlement::nothing(kind);
        }
        // Built-in policies settle through the cached algebra (no virtual
        // call); custom models go through the trait object.
        if let Some(schedule) = &self.fast_schedule {
            return schedule.settle(kind, touch, now);
        }
        match &self.model {
            Some(model) => model.settle(kind, touch, now),
            None => Settlement::nothing(kind),
        }
    }

    /// The cycle at which an idle line of `kind` last touched at `touch`
    /// will be invalidated by the policy, if ever.
    #[must_use]
    pub fn invalidation_time(&self, kind: LineKind, touch: Cycle) -> Option<Cycle> {
        if let Some(deltas) = &self.invalidation_deltas {
            return match kind {
                LineKind::Dirty => deltas.dirty,
                LineKind::Clean => deltas.clean,
                LineKind::Invalid => None,
            }
            .map(|delta| touch + delta);
        }
        self.model
            .as_ref()
            .and_then(|m| m.invalidation_time(kind, touch))
    }

    /// Bulk refresh count for the whole cache over `(0, end]` — used for the
    /// `All` data policy and for the un-simulated IL1 under Periodic timing.
    #[must_use]
    pub fn bulk_refreshes(&self, end: Cycle) -> u64 {
        match &self.model {
            Some(model) => self.lines * model.opportunities_between(Cycle::ZERO, end),
            None => 0,
        }
    }
}

/// The residency kind of a cache line, from the refresh policy's viewpoint.
#[must_use]
pub fn line_kind(line: &CacheLine) -> LineKind {
    if !line.is_valid() {
        LineKind::Invalid
    } else if line.is_dirty() {
        LineKind::Dirty
    } else {
        LineKind::Clean
    }
}

/// One tile: a core's private data L1 and L2 plus their refresh domains.
/// (The instruction L1 is modelled statistically and has no per-line state.)
#[derive(Debug, Clone)]
pub struct Tile {
    /// Private write-through data L1.
    pub dl1: Cache,
    /// Private write-back L2.
    pub l2: Cache,
    /// Refresh machinery of the DL1.
    pub dl1_refresh: RefreshDomain,
    /// Refresh machinery of the L2.
    pub l2_refresh: RefreshDomain,
}

/// One bank of the shared L3 plus its refresh machinery.
#[derive(Debug, Clone)]
pub struct L3Bank {
    /// The bank's cache array.
    pub cache: Cache,
    /// Refresh machinery of the bank.
    pub refresh: RefreshDomain,
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_mem::addr::LineAddr;
    use refrint_mem::line::MesiState;

    fn l3_cfg() -> CacheLevelConfig {
        CacheLevelConfig::paper_l3_bank()
    }

    #[test]
    fn sram_domain_is_inert() {
        let mut d = RefreshDomain::new(
            &l3_cfg(),
            RefreshPolicy::recommended(),
            RetentionConfig::microseconds_50(),
            CellTech::Sram,
            Cycle::ZERO,
        );
        assert!(!d.is_edram());
        assert_eq!(d.access_penalty(Cycle::new(123), 0), Cycle::ZERO);
        assert_eq!(
            d.settle(LineKind::Dirty, Cycle::ZERO, Cycle::new(1_000_000)),
            Settlement::nothing(LineKind::Dirty)
        );
        assert_eq!(d.invalidation_time(LineKind::Clean, Cycle::ZERO), None);
        assert_eq!(d.bulk_refreshes(Cycle::new(1_000_000)), 0);
    }

    #[test]
    fn edram_refrint_domain_settles_lines() {
        let d = RefreshDomain::new(
            &l3_cfg(),
            RefreshPolicy::recommended(),
            RetentionConfig::microseconds_50(),
            CellTech::Edram,
            Cycle::ZERO,
        );
        assert!(d.is_edram());
        assert!(!d.is_bulk_all());
        let s = d.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(10_000_000));
        // WB(32,32): 32 refreshes then invalidation for a clean line.
        assert_eq!(s.refreshes, 32);
        assert!(s.invalidated_at.is_some());
        assert!(d.invalidation_time(LineKind::Clean, Cycle::ZERO).is_some());
    }

    #[test]
    fn memoized_invalidation_times_match_the_model_at_any_touch() {
        // Refrint timing is touch-relative, so the domain memoizes the
        // idle-until-invalidation deltas; the fast path must agree with the
        // model's own answer at every touch, and Periodic (global timing)
        // must fall through to the model.
        let refrint = RefreshDomain::new(
            &l3_cfg(),
            RefreshPolicy::recommended(),
            RetentionConfig::microseconds_50(),
            CellTech::Edram,
            Cycle::ZERO,
        );
        let periodic = RefreshDomain::new(
            &l3_cfg(),
            RefreshPolicy::new(
                refrint_edram::policy::TimePolicy::Periodic,
                refrint_edram::policy::DataPolicy::Dirty,
            ),
            RetentionConfig::microseconds_50(),
            CellTech::Edram,
            Cycle::new(777),
        );
        for domain in [&refrint, &periodic] {
            let model = domain.model().expect("eDRAM domain has a model");
            for kind in [LineKind::Dirty, LineKind::Clean, LineKind::Invalid] {
                for touch in [0u64, 1, 999, 123_456, 7_654_321] {
                    let touch = Cycle::new(touch);
                    assert_eq!(
                        domain.invalidation_time(kind, touch),
                        model.invalidation_time(kind, touch),
                        "{kind:?} touched at {touch}"
                    );
                }
            }
        }
    }

    #[test]
    fn periodic_domain_blocks_and_refrint_domain_barely_stalls() {
        let mut periodic = RefreshDomain::new(
            &l3_cfg(),
            RefreshPolicy::edram_baseline(),
            RetentionConfig::microseconds_50(),
            CellTech::Edram,
            Cycle::ZERO,
        );
        // At cycle zero a periodic burst of sub-array 0 is in progress: an
        // access to a line in that sub-array stalls, one in another does not.
        assert!(periodic.access_penalty(Cycle::ZERO, 0) > Cycle::ZERO);
        assert_eq!(periodic.access_penalty(Cycle::ZERO, 1), Cycle::ZERO);

        let mut refrint = RefreshDomain::new(
            &l3_cfg(),
            RefreshPolicy::recommended(),
            RetentionConfig::microseconds_50(),
            CellTech::Edram,
            Cycle::ZERO,
        );
        let total: u64 = (0..1000)
            .map(|i| refrint.access_penalty(Cycle::new(i), i).raw())
            .sum();
        // Refrint contention is well under one cycle per access on average.
        assert!(
            total < 20,
            "refrint stall cycles over 1000 accesses: {total}"
        );
    }

    #[test]
    fn all_policy_uses_bulk_accounting() {
        let d = RefreshDomain::new(
            &l3_cfg(),
            RefreshPolicy::edram_baseline(),
            RetentionConfig::microseconds_50(),
            CellTech::Edram,
            Cycle::ZERO,
        );
        assert!(d.is_bulk_all());
        assert_eq!(
            d.settle(LineKind::Clean, Cycle::ZERO, Cycle::new(1_000_000)),
            Settlement::nothing(LineKind::Clean)
        );
        // 16K lines x 10 periods over 500k cycles at 50 us.
        assert_eq!(d.bulk_refreshes(Cycle::new(500_000)), 16 * 1024 * 10);
    }

    #[test]
    fn line_kind_mapping() {
        let now = Cycle::new(5);
        let dirty = CacheLine::new(LineAddr::new(1), MesiState::Modified, now);
        let clean = CacheLine::new(LineAddr::new(1), MesiState::Shared, now);
        let mut invalid = clean;
        invalid.invalidate();
        assert_eq!(line_kind(&dirty), LineKind::Dirty);
        assert_eq!(line_kind(&clean), LineKind::Clean);
        assert_eq!(line_kind(&invalid), LineKind::Invalid);
    }
}
