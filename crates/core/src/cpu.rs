//! Core timing model.
//!
//! The paper's cores are simple dual-issue out-of-order MIPS32 processors.
//! At the memory-reference level we approximate them with two parameters:
//! how many instructions retire per compute cycle, and what fraction of a
//! memory access's latency beyond the L1 can be hidden by out-of-order
//! execution and memory-level parallelism.

use refrint_engine::time::Cycle;

/// Timing parameters of one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreTimingModel {
    /// Instructions retired per compute-gap cycle (dual issue ≈ 1.5 when
    /// accounting for dependencies).
    pub instructions_per_gap_cycle: f64,
    /// Fraction of miss latency (beyond the L1 hit latency) hidden by
    /// out-of-order execution and overlapping misses.
    pub miss_overlap: f64,
    /// Instruction fetches per instruction (1.0: every instruction reads the
    /// IL1; smaller values model fetch buffering).
    pub fetches_per_instruction: f64,
}

impl CoreTimingModel {
    /// Representative parameters for the paper's dual-issue OOO core.
    #[must_use]
    pub fn paper_default() -> Self {
        CoreTimingModel {
            instructions_per_gap_cycle: 1.5,
            miss_overlap: 0.3,
            fetches_per_instruction: 1.0,
        }
    }

    /// The latency the core observes for a memory access whose L1 latency is
    /// `l1` and whose additional (beyond-L1) latency is `beyond`: the L1
    /// portion is always exposed, the rest is partially hidden.
    #[must_use]
    pub fn observed_latency(&self, l1: Cycle, beyond: Cycle) -> Cycle {
        let hidden = (beyond.raw() as f64 * self.miss_overlap).floor() as u64;
        l1 + Cycle::new(beyond.raw() - hidden)
    }

    /// Number of instructions attributed to a compute gap of `gap` cycles
    /// plus the memory instruction itself.
    #[must_use]
    pub fn instructions_for_gap(&self, gap: u64) -> u64 {
        1 + (gap as f64 * self.instructions_per_gap_cycle).round() as u64
    }

    /// Number of IL1 fetch accesses for `instructions` instructions.
    #[must_use]
    pub fn fetches_for(&self, instructions: u64) -> u64 {
        (instructions as f64 * self.fetches_per_instruction).round() as u64
    }
}

impl Default for CoreTimingModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_latency_hides_part_of_misses() {
        let m = CoreTimingModel::paper_default();
        // Pure L1 hit: nothing to hide.
        assert_eq!(
            m.observed_latency(Cycle::new(1), Cycle::ZERO),
            Cycle::new(1)
        );
        // 40-cycle DRAM portion: 30% hidden.
        assert_eq!(
            m.observed_latency(Cycle::new(1), Cycle::new(40)),
            Cycle::new(1 + 40 - 12)
        );
    }

    #[test]
    fn full_overlap_and_no_overlap_extremes() {
        let mut m = CoreTimingModel::paper_default();
        m.miss_overlap = 0.0;
        assert_eq!(
            m.observed_latency(Cycle::new(2), Cycle::new(10)),
            Cycle::new(12)
        );
        m.miss_overlap = 1.0;
        assert_eq!(
            m.observed_latency(Cycle::new(2), Cycle::new(10)),
            Cycle::new(2)
        );
    }

    #[test]
    fn instruction_accounting() {
        let m = CoreTimingModel::paper_default();
        assert_eq!(m.instructions_for_gap(0), 1);
        assert_eq!(m.instructions_for_gap(4), 1 + 6);
        assert_eq!(m.fetches_for(100), 100);
        let mut buffered = m;
        buffered.fetches_per_instruction = 0.25;
        assert_eq!(buffered.fetches_for(100), 25);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(CoreTimingModel::default(), CoreTimingModel::paper_default());
    }
}
