//! The parallel sweep runner.
//!
//! [`crate::experiment::run_sweep`]'s nested loops ran the paper's 473
//! simulations strictly sequentially. [`SweepRunner`] shards the same
//! `(application × retention × policy)` points across `std::thread` workers:
//! every point is an independent simulation with its own seed-derived
//! streams, so the runner executes them in any order, streams completions
//! through a [`ProgressObserver`], and merges the reports into
//! [`SweepResults`] in the deterministic job order — the merged results are
//! identical to a sequential run, whatever the worker count.
//!
//! Custom [`PolicyFactory`] policies ride along with the built-in descriptor
//! sweep via [`ExperimentConfig::models`]; their reports are keyed by their
//! labels next to the descriptor labels.
//!
//! # Example
//!
//! ```
//! use refrint::experiment::ExperimentConfig;
//! use refrint::sweep::SweepRunner;
//! use refrint_edram::policy::RefreshPolicy;
//! use refrint_workloads::apps::AppPreset;
//!
//! let config = ExperimentConfig {
//!     apps: vec![AppPreset::Lu],
//!     retentions_us: vec![50],
//!     policies: vec![RefreshPolicy::recommended()],
//!     refs_per_thread: 1_000,
//!     cores: 2,
//!     ..ExperimentConfig::default()
//! };
//! let results = SweepRunner::new(config).workers(2).run().unwrap();
//! assert_eq!(results.sram.len(), 1);
//! assert_eq!(results.edram.len(), 1);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use refrint_coherence::protocol::CoherenceProtocol;
use refrint_edram::model::PolicyFactory;
use refrint_edram::policy::RefreshPolicy;
use refrint_edram::variation::RetentionProfile;
use refrint_energy::tech::CellTech;
use refrint_workloads::apps::AppPreset;

use refrint_trace::TraceFile;

use crate::config::SystemConfig;
use crate::error::RefrintError;
use crate::experiment::{ExperimentConfig, SweepResults, TraceSpec};
use crate::replay;
use crate::report::SimReport;
use crate::system::CmpSystem;

/// A completed-run notification streamed by the [`SweepRunner`].
#[derive(Debug, Clone)]
pub struct SweepProgress {
    /// Runs completed so far (including this one).
    pub completed: usize,
    /// Total runs in the sweep.
    pub total: usize,
    /// The application that was simulated.
    pub app: String,
    /// The configuration label (e.g. `SRAM`, `eDRAM 50us R.WB(32,32)`).
    pub config_label: String,
    /// Retention time of the point, or `None` for the SRAM baseline.
    pub retention_us: Option<u64>,
}

/// Receives completion events while a sweep is running. Implemented for any
/// `Fn(&SweepProgress) + Send + Sync` closure.
///
/// Events arrive from worker threads in completion order (not job order).
/// Callbacks are serialized — at most one runs at a time, with strictly
/// increasing `completed` counts — so observers need no locking of their
/// own, but a slow observer backpressures the workers.
pub trait ProgressObserver: Send + Sync {
    /// Called once per finished simulation.
    fn on_run_complete(&self, progress: &SweepProgress);
}

impl<F> ProgressObserver for F
where
    F: Fn(&SweepProgress) + Send + Sync,
{
    fn on_run_complete(&self, progress: &SweepProgress) {
        self(progress)
    }
}

/// The policy of one eDRAM sweep point: a built-in descriptor (the private
/// caches inherit its time policy, per Section 6.2) or a custom model (the
/// private caches then run the recommended `Refrint Valid` setup).
#[derive(Debug, Clone)]
enum PolicyChoice {
    Builtin(RefreshPolicy),
    Custom(Arc<dyn PolicyFactory>),
}

impl PolicyChoice {
    fn label(&self) -> String {
        match self {
            PolicyChoice::Builtin(policy) => policy.label(),
            PolicyChoice::Custom(factory) => factory.label(),
        }
    }
}

/// What a job simulates: a synthetic application preset or a recorded
/// trace. Both run through the same system; reports are keyed by
/// [`Workload::key`].
#[derive(Debug, Clone)]
enum Workload {
    App(AppPreset),
    Trace(TraceSpec),
}

impl Workload {
    fn key(&self) -> String {
        match self {
            Workload::App(app) => app.name().to_owned(),
            Workload::Trace(spec) => spec.name.clone(),
        }
    }
}

/// One schedulable simulation of the sweep.
#[derive(Debug, Clone)]
enum Job {
    Sram {
        workload: Workload,
        protocol: CoherenceProtocol,
    },
    Edram {
        workload: Workload,
        retention_us: u64,
        policy: PolicyChoice,
        protocol: CoherenceProtocol,
        profile: RetentionProfile,
    },
}

impl Job {
    fn workload(&self) -> &Workload {
        match self {
            Job::Sram { workload, .. } | Job::Edram { workload, .. } => workload,
        }
    }
}

/// The report-key suffix carrying a point's non-default axes — empty for
/// the default MESI + uniform combination, so default sweeps keep their
/// historical keys (and JSON documents) byte for byte. Public because the
/// serve coordinator composes the same keys when it merges fanned-out
/// point reports; one implementation keeps the two byte-identical.
#[must_use]
pub fn axis_suffix(protocol: CoherenceProtocol, profile: RetentionProfile) -> String {
    let mut suffix = String::new();
    if !protocol.is_default() {
        suffix.push(' ');
        suffix.push_str(protocol.label());
    }
    if !profile.is_default() {
        suffix.push(' ');
        suffix.push_str(&profile.label());
    }
    suffix
}

/// Runs an experiment sweep across a configurable number of worker threads.
///
/// Results are merged in deterministic job order, so for a fixed
/// [`ExperimentConfig`] the output is identical for every worker count
/// (including the sequential `workers(1)` path).
pub struct SweepRunner {
    config: ExperimentConfig,
    workers: usize,
    observer: Option<Arc<dyn ProgressObserver>>,
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("config", &self.config)
            .field("workers", &self.workers)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl SweepRunner {
    /// Creates a runner for `config`, defaulting to one worker per available
    /// CPU.
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        SweepRunner {
            config,
            workers,
            observer: None,
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Forces the sequential (single-worker) path.
    #[must_use]
    pub fn sequential(self) -> Self {
        self.workers(1)
    }

    /// Streams completion events to `observer` while the sweep runs.
    #[must_use]
    pub fn observer(mut self, observer: impl ProgressObserver + 'static) -> Self {
        self.observer = Some(Arc::new(observer));
        self
    }

    /// The experiment configuration this runner will execute.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Builds the deterministic job list: for each workload (applications
    /// first, then traces), the SRAM baseline followed by every
    /// (retention × policy) eDRAM point — descriptor policies first, then
    /// custom models, mirroring the sequential sweep's nesting order.
    fn jobs(&self) -> Vec<Job> {
        let workloads = self
            .config
            .apps
            .iter()
            .map(|&app| Workload::App(app))
            .chain(self.config.traces.iter().cloned().map(Workload::Trace));
        let protocols: &[CoherenceProtocol] = if self.config.protocols.is_empty() {
            &[CoherenceProtocol::Mesi]
        } else {
            &self.config.protocols
        };
        let profiles: &[RetentionProfile] = if self.config.retention_profiles.is_empty() {
            &[RetentionProfile::Uniform]
        } else {
            &self.config.retention_profiles
        };
        let mut jobs = Vec::with_capacity(self.config.total_runs());
        for workload in workloads {
            for &protocol in protocols {
                jobs.push(Job::Sram {
                    workload: workload.clone(),
                    protocol,
                });
                for &retention_us in &self.config.retentions_us {
                    for &policy in &self.config.policies {
                        for &profile in profiles {
                            jobs.push(Job::Edram {
                                workload: workload.clone(),
                                retention_us,
                                policy: PolicyChoice::Builtin(policy),
                                protocol,
                                profile,
                            });
                        }
                    }
                    for factory in &self.config.models {
                        for &profile in profiles {
                            jobs.push(Job::Edram {
                                workload: workload.clone(),
                                retention_us,
                                policy: PolicyChoice::Custom(Arc::clone(factory)),
                                protocol,
                                profile,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }

    fn system_config(&self, job: &Job) -> Result<SystemConfig, RefrintError> {
        let base = SystemConfig::sram_baseline()
            .with_cores(self.config.cores)
            .with_seed(self.config.seed)
            .with_scale(self.config.refs_per_thread);
        Ok(match job {
            Job::Sram { protocol, .. } => base.with_protocol(*protocol),
            Job::Edram {
                retention_us,
                policy,
                protocol,
                profile,
                ..
            } => {
                let base = base
                    .with_cells(CellTech::Edram)
                    .with_retention(ExperimentConfig::retention(*retention_us)?)
                    .with_protocol(*protocol)
                    .with_retention_profile(*profile);
                match policy {
                    PolicyChoice::Builtin(policy) => base.with_policy(*policy),
                    PolicyChoice::Custom(factory) => base
                        .with_policy(RefreshPolicy::recommended())
                        .with_policy_model(Arc::clone(factory)),
                }
            }
        })
    }

    fn run_job(
        &self,
        job: &Job,
        traces: &BTreeMap<String, TraceFile>,
    ) -> Result<SimReport, RefrintError> {
        let config = self.system_config(job)?;
        let mut system = CmpSystem::new(config)?;
        match job.workload() {
            Workload::App(app) => Ok(system.run_app(*app)),
            Workload::Trace(spec) => {
                let trace = traces
                    .get(&spec.name)
                    .expect("every trace was opened by the pre-check");
                replay::replay(&mut system, trace)
            }
        }
    }

    /// Runs the sweep and merges the reports.
    ///
    /// # Errors
    ///
    /// Returns the earliest-in-job-order [`RefrintError`] among the jobs
    /// that ran. Workers stop claiming new jobs as soon as any job fails,
    /// so a bad configuration does not burn through the rest of an
    /// expensive sweep first.
    pub fn run(&self) -> Result<SweepResults, RefrintError> {
        // Reports are keyed by policy label, so colliding labels (between
        // descriptor policies and custom models, or among the models) would
        // silently overwrite each other in the merge. Reject them up front.
        let mut labels = std::collections::BTreeSet::new();
        for label in self
            .config
            .policies
            .iter()
            .map(RefreshPolicy::label)
            .chain(self.config.models.iter().map(|m| m.label()))
        {
            if !labels.insert(label.clone()) {
                return Err(RefrintError::InvalidConfig {
                    reason: format!(
                        "duplicate refresh-policy label `{label}` in the sweep \
                         (reports are keyed by label)"
                    ),
                });
            }
        }

        // Workload keys (application names and trace names) share one
        // report namespace; a collision would silently overwrite reports.
        let mut keys = std::collections::BTreeSet::new();
        for key in self
            .config
            .apps
            .iter()
            .map(|a| a.name().to_owned())
            .chain(self.config.traces.iter().map(|t| t.name.clone()))
        {
            if !keys.insert(key.clone()) {
                return Err(RefrintError::InvalidConfig {
                    reason: format!(
                        "duplicate workload `{key}` in the sweep \
                         (reports are keyed by workload name)"
                    ),
                });
            }
        }

        // Open and check every trace before burning through any
        // simulations: an unreadable file or a thread/core mismatch fails
        // the sweep immediately instead of after the earlier jobs have run.
        // The opened (indexed) files are shared with the jobs, so a trace
        // swept over many configuration points is indexed exactly once.
        let mut traces: BTreeMap<String, TraceFile> = BTreeMap::new();
        for spec in &self.config.traces {
            let trace = TraceFile::open(&spec.path).map_err(|e| RefrintError::Trace {
                reason: format!("{}: {e}", spec.path.display()),
            })?;
            let threads = trace.meta().threads;
            if threads != self.config.cores {
                return Err(RefrintError::Trace {
                    reason: format!(
                        "trace `{}` ({}) has {threads} threads but the sweep is configured \
                         for {} cores",
                        spec.name,
                        spec.path.display(),
                        self.config.cores
                    ),
                });
            }
            traces.insert(spec.name.clone(), trace);
        }
        let traces = &traces;

        let jobs = self.jobs();
        let total = jobs.len();
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        // The observer lock makes increment + callback one atomic step, so
        // callbacks are serialized with strictly increasing counts.
        let progress = Mutex::new(0usize);
        let slots: Mutex<Vec<Option<Result<SimReport, RefrintError>>>> =
            Mutex::new((0..total).map(|_| None).collect());

        let worker = || loop {
            if failed.load(Ordering::Relaxed) {
                break;
            }
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= total {
                break;
            }
            let job = &jobs[index];
            let result = self.run_job(job, traces);
            match &result {
                Ok(report) => {
                    if let Some(observer) = &self.observer {
                        let retention_us = match job {
                            Job::Sram { .. } => None,
                            Job::Edram { retention_us, .. } => Some(*retention_us),
                        };
                        let mut done = progress.lock().expect("observer lock never poisoned");
                        *done += 1;
                        observer.on_run_complete(&SweepProgress {
                            completed: *done,
                            total,
                            app: job.workload().key(),
                            config_label: report.config_label.clone(),
                            retention_us,
                        });
                    }
                }
                Err(_) => failed.store(true, Ordering::Relaxed),
            }
            slots.lock().expect("no worker panicked holding the lock")[index] = Some(result);
        };

        let workers = self.workers.min(total.max(1));
        if workers <= 1 {
            worker();
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        let slots = slots.into_inner().expect("all workers joined");
        // On failure, report the first error in job order (deterministic
        // whatever the interleaving was).
        for slot in &slots {
            if let Some(Err(e)) = slot {
                return Err(e.clone());
            }
        }

        // Deterministic merge in job order.
        let mut results = SweepResults {
            apps: self.config.apps.clone(),
            retentions_us: self.config.retentions_us.clone(),
            policies: self.config.policies.clone(),
            custom_labels: self.config.models.iter().map(|m| m.label()).collect(),
            traces: self.config.traces.clone(),
            ..SweepResults::default()
        };
        for (job, slot) in jobs.iter().zip(slots) {
            let report = slot
                .expect("with no failed job, every index was claimed and filled")
                .expect("errors were returned above");
            match job {
                Job::Sram { workload, protocol } => {
                    let key = format!(
                        "{}{}",
                        workload.key(),
                        axis_suffix(*protocol, RetentionProfile::Uniform)
                    );
                    results.sram.insert(key, report);
                }
                Job::Edram {
                    workload,
                    retention_us,
                    policy,
                    protocol,
                    profile,
                } => {
                    let label = format!("{}{}", policy.label(), axis_suffix(*protocol, *profile));
                    results
                        .edram
                        .insert((workload.key(), *retention_us, label), report);
                }
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use refrint_edram::policy::{DataPolicy, RefreshPolicy, TimePolicy};
    use std::sync::atomic::AtomicUsize;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            apps: vec![AppPreset::Blackscholes, AppPreset::Fft],
            retentions_us: vec![50],
            policies: vec![
                RefreshPolicy::edram_baseline(),
                RefreshPolicy::new(TimePolicy::Refrint, DataPolicy::Valid),
            ],
            refs_per_thread: 1_200,
            seed: 3,
            cores: 4,
            models: Vec::new(),
            traces: Vec::new(),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn parallel_results_match_sequential_results_exactly() {
        let sequential = SweepRunner::new(tiny_config()).sequential().run().unwrap();
        let parallel = SweepRunner::new(tiny_config()).workers(4).run().unwrap();
        assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
    }

    #[test]
    fn observer_sees_every_run() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen_in_observer = Arc::clone(&seen);
        let config = tiny_config();
        let total = config.total_runs();
        let results = SweepRunner::new(config)
            .workers(2)
            .observer(move |p: &SweepProgress| {
                seen_in_observer.fetch_add(1, Ordering::Relaxed);
                assert!(p.completed <= p.total);
                assert!(!p.config_label.is_empty());
            })
            .run()
            .unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), total);
        assert_eq!(results.sram.len() + results.edram.len(), total);
    }

    #[test]
    fn invalid_points_surface_the_first_error() {
        let mut config = tiny_config();
        config.retentions_us = vec![50, 1]; // 1 us < sentry margin: invalid.
        let err = SweepRunner::new(config).workers(2).run().unwrap_err();
        assert!(err.to_string().contains("retention"), "{err}");
    }

    #[test]
    fn worker_count_is_clamped() {
        let runner = SweepRunner::new(tiny_config()).workers(0);
        assert_eq!(runner.workers, 1);
    }

    #[test]
    fn traces_sweep_alongside_apps_with_identical_reports() {
        let path =
            std::env::temp_dir().join(format!("refrint-sweep-{}-trace.rft", std::process::id()));
        // Capture with exactly the chip parameters the sweep derives.
        let capture_config = SystemConfig::sram_baseline()
            .with_cores(4)
            .with_seed(3)
            .with_scale(1_200);
        crate::replay::capture_to_path(
            &capture_config,
            &AppPreset::Lu.model(),
            &path,
            refrint_trace::TraceFormat::Binary,
        )
        .unwrap();

        let mut config = tiny_config();
        config.apps = vec![AppPreset::Lu];
        config.traces = vec![TraceSpec::named("lu-trace", &path)];
        assert_eq!(config.total_runs(), 2 * (1 + 2));
        let results = SweepRunner::new(config).workers(2).run().unwrap();

        // The replayed runs mirror the synthetic runs bit for bit.
        let live = results.sram_report(AppPreset::Lu).unwrap();
        let replayed = results.sram_report_named("lu-trace").unwrap();
        assert_eq!(format!("{live:?}"), format!("{replayed:?}"));
        let label = RefreshPolicy::edram_baseline().label();
        let live = results.edram_report_named("lu", 50, &label).unwrap();
        let replayed = results.edram_report_named("lu-trace", 50, &label).unwrap();
        assert_eq!(format!("{live:?}"), format!("{replayed:?}"));
        assert_eq!(results.traces.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_workload_keys_are_rejected() {
        let mut config = tiny_config();
        config.traces = vec![TraceSpec::named("fft", "unused.rft")];
        let err = SweepRunner::new(config).run().unwrap_err();
        assert!(err.to_string().contains("duplicate workload"), "{err}");
    }

    #[test]
    fn missing_trace_files_fail_the_sweep_with_a_typed_error() {
        let mut config = tiny_config();
        config.traces = vec![TraceSpec::named("ghost", "/nonexistent/ghost.rft")];
        let err = SweepRunner::new(config).workers(2).run().unwrap_err();
        assert!(matches!(err, RefrintError::Trace { .. }), "{err}");
    }

    #[test]
    fn protocol_and_profile_axes_expand_and_compose_keys() {
        let mut config = tiny_config();
        config.apps = vec![AppPreset::Lu];
        config.policies = vec![RefreshPolicy::recommended()];
        config.protocols = vec![CoherenceProtocol::Mesi, CoherenceProtocol::Dragon];
        config.retention_profiles = vec![
            RetentionProfile::Uniform,
            RetentionProfile::Bimodal {
                weak_pct: 25,
                weak_retention_pct: 60,
            },
        ];
        // 1 app x 2 protocols x (1 SRAM + 1 retention x 1 policy x 2 profiles).
        assert_eq!(config.total_runs(), 6);
        let results = SweepRunner::new(config).workers(3).run().unwrap();
        assert_eq!(results.sram.len(), 2);
        assert_eq!(results.edram.len(), 4);
        assert!(results.sram.contains_key("lu"));
        assert!(results.sram.contains_key("lu dragon"));
        for label in [
            "R.WB(32,32)",
            "R.WB(32,32) bimodal(25,60)",
            "R.WB(32,32) dragon",
            "R.WB(32,32) dragon bimodal(25,60)",
        ] {
            assert!(
                results.edram_report_named("lu", 50, label).is_some(),
                "missing point `{label}`"
            );
        }
        // The default-axes point is byte-identical to a sweep without the
        // new axes at all.
        let mut plain = tiny_config();
        plain.apps = vec![AppPreset::Lu];
        plain.policies = vec![RefreshPolicy::recommended()];
        let plain = SweepRunner::new(plain).sequential().run().unwrap();
        assert_eq!(
            format!("{:?}", results.edram_report_named("lu", 50, "R.WB(32,32)")),
            format!("{:?}", plain.edram_report_named("lu", 50, "R.WB(32,32)")),
        );
        // The sweep JSON carries the composed labels.
        let doc = crate::json::sweep(&results);
        assert!(doc.contains("R.WB(32,32) dragon bimodal(25,60)"), "{doc}");
    }

    #[test]
    fn duplicate_policy_labels_are_rejected() {
        let mut config = tiny_config();
        config.policies.push(config.policies[0]);
        let err = SweepRunner::new(config).run().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }
}
